"""The compute service facade and its stdlib HTTP front end.

:class:`ComputeService` wires the serving layer together::

    submit(program, function, args)
        │  parse/check once per program (ProgramRegistry)
        │  bind args, admission control (JobQueue)
        ▼
    Batcher ── coalesces same-function jobs (window / max-batch) ──▶
    WorkerPool ── N engines, shared kernel cache ──▶ map_run batches

The HTTP layer is deliberately small (``http.server`` +
``http.client``, JSON bodies, no dependencies):

* ``POST /submit``  ``{"program": "...", "function": "f",
  "args": {...}, "timeout": 5.0}`` → ``{"ok": true, "value": ...,
  "job_id": "...", "latency_seconds": ...}``;
* ``GET /stats`` → the :class:`~repro.service.stats.ServiceStats`
  snapshot as JSON;
* ``GET /healthz`` → ``{"ok": true}`` (liveness: the process serves);
* ``GET /readyz`` → ``{"ok": true}`` while accepting work, 503 with
  ``Retry-After`` once draining — load balancers stop routing here
  first.

Fault-tolerance plumbing: request deadlines propagate from the JSON
body or the ``X-Repro-Timeout`` header through queue wait into
execution (expired jobs are shed, never launched → 504); a full
queue sheds load with 503 + ``Retry-After``; SIGTERM (see
:func:`install_signal_handlers`) drains gracefully — stop accepting,
finish in-flight jobs, flush stats.
"""

from __future__ import annotations

import json
import os
import queue as _queue
import signal
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Mapping, Optional

from ..gpu.spec import DeviceSpec
from ..lang.errors import DslError
from ..lang.source import SourceText
from ..resilience import (
    ExecutionSupervisor,
    FaultPlan,
    SupervisionPolicy,
)
from ..runtime.engine import Engine
from .batcher import Batch, Batcher
from .cache import LRUKernelCache, PersistentKernelCache
from .programs import ProgramRegistry
from .queue import (
    AdmissionError,
    DeadlineError,
    Job,
    JobHandle,
    JobQueue,
    JobTimeoutError,
)
from .stats import ServiceStats, StatsRegistry
from .workers import WorkerPool


def chaos_plan_from_env(environ=None) -> Optional[FaultPlan]:
    """Build a :class:`FaultPlan` from ``REPRO_CHAOS_*`` variables.

    ``REPRO_CHAOS_RATE`` (launch failure + transfer truncation rate),
    ``REPRO_CHAOS_CORRUPT`` (per-cell corruption rate),
    ``REPRO_CHAOS_KILL`` / ``REPRO_CHAOS_HANG`` (sandbox worker
    SIGKILL / hang rates — only live when the native sandbox is on)
    and ``REPRO_CHAOS_SEED`` let CI run the whole service suite under
    fault injection without touching any test. Returns ``None`` when
    chaos is not requested.
    """
    environ = os.environ if environ is None else environ
    rate = float(environ.get("REPRO_CHAOS_RATE", "0") or 0.0)
    corrupt = float(environ.get("REPRO_CHAOS_CORRUPT", "0") or 0.0)
    kill = float(environ.get("REPRO_CHAOS_KILL", "0") or 0.0)
    hang = float(environ.get("REPRO_CHAOS_HANG", "0") or 0.0)
    if rate <= 0.0 and corrupt <= 0.0 and kill <= 0.0 and hang <= 0.0:
        return None
    return FaultPlan(
        seed=int(environ.get("REPRO_CHAOS_SEED", "0") or 0),
        launch_fail_rate=rate,
        truncate_rate=rate,
        corrupt_rate=corrupt,
        corrupt_mode="bitflip",
        worker_kill_rate=kill,
        sandbox_hang_rate=hang,
    )


class ComputeService:
    """A long-running batch compile-and-execute service."""

    def __init__(
        self,
        workers: int = 4,
        queue_capacity: int = 1024,
        batch_window: float = 0.01,
        max_batch: int = 64,
        cache_dir: Optional[str] = None,
        cache_capacity: int = 256,
        prob_mode: str = "direct",
        backend: str = "auto",
        schedule: str = "min-partition",
        device: Optional[DeviceSpec] = None,
        default_timeout: Optional[float] = None,
        max_retries: int = 2,
        backoff_seconds: float = 0.05,
        fault_plan: Optional[FaultPlan] = None,
        supervision: Optional[SupervisionPolicy] = None,
        demote_after: int = 3,
        sandbox_native: Optional[bool] = None,
    ) -> None:
        if fault_plan is None:
            fault_plan = chaos_plan_from_env()
        if sandbox_native is not None:
            # Crash-isolate native launches in worker subprocesses
            # (process-wide: the engines share the native runtime).
            from ..runtime import sandbox as native_sandbox

            native_sandbox.configure(sandbox_native)
        self.kernel_cache = (
            PersistentKernelCache(cache_dir, capacity=cache_capacity)
            if cache_dir is not None
            else LRUKernelCache(cache_capacity)
        )
        self.registry = ProgramRegistry()
        self.stats_registry = StatsRegistry()
        self.jobs = JobQueue(queue_capacity)
        self.batch_queue: "_queue.Queue[Optional[Batch]]" = _queue.Queue()
        self.batcher = Batcher(
            self.jobs, self.batch_queue,
            window=batch_window, max_batch=max_batch,
            stats=self.stats_registry,
        )
        self.default_timeout = default_timeout
        self.max_retries = max_retries

        self.fault_plan = fault_plan
        self.supervision = supervision

        def engine_factory() -> Engine:
            # ``schedule="autotune"``: every worker engine shares
            # ``self.kernel_cache``, so one worker's portfolio search
            # seeds the (kernel digest, size bucket) record the whole
            # pool — and, with ``cache_dir``, every replica — reuses.
            engine = Engine(
                device=device,
                prob_mode=prob_mode,
                backend=backend,
                schedule=schedule,
                kernel_cache=self.kernel_cache,
            )
            if fault_plan is None and supervision is None:
                return engine
            # Each worker gets its own supervisor (injection logs and
            # stats are per-engine); determinism is preserved because
            # fault decisions are pure functions of (seed, site).
            return ExecutionSupervisor(
                engine, plan=fault_plan, policy=supervision
            )

        self.pool = WorkerPool(
            self.batch_queue,
            engine_factory,
            self.registry,
            self.stats_registry,
            workers=workers,
            backoff_seconds=backoff_seconds,
            demote_after=demote_after,
        )
        self._closed = False
        self._draining = False
        self.batcher.start()
        self.pool.start()

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        program: str,
        function: str,
        args: Optional[Mapping[str, object]] = None,
        timeout: Optional[float] = None,
        reduce: Optional[str] = None,
    ) -> JobHandle:
        """Admit one problem; returns its :class:`JobHandle`.

        Raises :class:`~repro.lang.errors.DslError` on a bad program
        or arguments (checked synchronously, so malformed work never
        occupies the queue) and
        :class:`~repro.service.queue.AdmissionError` under overload.
        """
        service_program = self.registry.register(program)
        bindings, at, initial = service_program.bind(
            function, args or {}
        )
        job = Job(
            program_sha=service_program.sha,
            function=function,
            bindings=bindings,
            at=at,
            initial=initial,
            reduce=reduce,
            timeout=(
                timeout if timeout is not None else self.default_timeout
            ),
            retries_left=self.max_retries,
        )
        try:
            self.jobs.submit(job)
        except AdmissionError:
            self.stats_registry.job_rejected()
            raise
        self.stats_registry.job_submitted()
        return job.handle

    # -- observability -------------------------------------------------------

    def stats(self) -> ServiceStats:
        """Current service snapshot (queue, batches, cache, latency).

        Sandbox crash/hang counts come from the process-wide sandbox
        module and ``demotions_native`` from the worker engines —
        snapshot inputs, owned elsewhere, never double-ticked here.
        """
        from ..runtime import sandbox as native_sandbox

        counters = native_sandbox.counters()
        return self.stats_registry.snapshot(
            queue_depth=self.jobs.depth(),
            cache_info=self.kernel_cache.cache_info(),
            worker_crashes=counters["crashes"] + counters["hangs"],
            demotions_native=self.pool.native_demotions(),
        )

    # -- lifecycle -----------------------------------------------------------

    def ready(self) -> bool:
        """Is the service accepting new work (readiness probe)?"""
        return not (self._draining or self._closed or self.jobs.closed)

    def begin_drain(self) -> None:
        """Stop accepting; in-flight and queued jobs keep executing.

        First phase of graceful SIGTERM shutdown: ``/readyz`` flips
        to 503 (load balancers stop routing), new submissions get
        :class:`AdmissionError`, and :meth:`shutdown` then finishes
        whatever was already admitted.
        """
        self._draining = True
        self.jobs.close()

    def shutdown(self, drain: bool = True, timeout: float = 10.0) -> None:
        """Stop the service; ``drain`` finishes every admitted job."""
        if self._closed:
            return
        self._closed = True
        self._draining = True
        self.jobs.close()
        if drain:
            self.batcher.stop(drain_timeout=timeout)
            self.batch_queue.join()  # all emitted batches executed
        else:
            self.batcher.stop(drain_timeout=0.0)
        self.pool.shutdown(timeout=timeout)

    def __enter__(self) -> "ComputeService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


# -- HTTP front end -----------------------------------------------------------


class _ServiceHandler(BaseHTTPRequestHandler):
    """JSON-over-HTTP adapter for one :class:`ComputeService`."""

    server: "ServiceHTTPServer"
    #: Cap a single request body at 16 MiB — admission control for
    #: memory, not just queue slots.
    MAX_BODY = 16 * 1024 * 1024
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/stats":
            self._reply(200, self.server.service.stats().to_dict())
        elif self.path == "/healthz":
            # Liveness: the process is up and serving HTTP — true
            # even while draining (kill -9 would lose in-flight work).
            self._reply(200, {"ok": True})
        elif self.path == "/readyz":
            if self.server.service.ready():
                self._reply(200, {"ok": True})
            else:
                self._reply(
                    503,
                    {"ok": False, "error": "draining"},
                    headers={"Retry-After": "1"},
                )
        else:
            self._reply(404, {"ok": False, "error": "unknown path"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path != "/submit":
            self._reply(404, {"ok": False, "error": "unknown path"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = 0
        if length <= 0 or length > self.MAX_BODY:
            self._reply(
                413 if length > self.MAX_BODY else 400,
                {"ok": False, "error": "missing or oversized body"},
            )
            return
        try:
            request = json.loads(self.rfile.read(length))
            program = request["program"]
            function = request["function"]
        except (json.JSONDecodeError, KeyError, TypeError) as err:
            self._reply(
                400,
                {"ok": False,
                 "error": f"bad request: {err!r} (need JSON with "
                          f"'program' and 'function')"},
            )
            return
        timeout = request.get("timeout")
        if timeout is None:
            # Deadline propagation from the transport layer: proxies
            # and load balancers can stamp the header without parsing
            # the body.
            header = self.headers.get("X-Repro-Timeout")
            if header:
                try:
                    timeout = float(header)
                except ValueError:
                    self._reply(
                        400,
                        {"ok": False,
                         "error": f"bad X-Repro-Timeout header "
                                  f"{header!r}: not a number"},
                    )
                    return
        try:
            handle = self.server.service.submit(
                program,
                function,
                args=request.get("args") or {},
                timeout=timeout,
                reduce=request.get("reduce"),
            )
            # Wait slightly *past* the job's own deadline: the queue
            # and batcher enforce it authoritatively (classifying the
            # outcome as shed vs timed-out mid-run), and that verdict
            # should win the race against this thread's stopwatch.
            value = handle.result(
                timeout=timeout + self.server.DEADLINE_GRACE
                if timeout is not None
                else self.server.result_timeout
            )
        except AdmissionError as err:
            # Queue-full / draining load shedding: tell the caller
            # when to come back instead of just slamming the door.
            self._reply(
                503, {"ok": False, "error": err.reason,
                      "rejected": True},
                headers={"Retry-After": "1"},
            )
            return
        except JobTimeoutError as err:
            # The job missed its deadline — shed before launch
            # (DeadlineError) or timed out mid-retry. Gateway-timeout
            # semantics either way.
            self._reply(
                504,
                {"ok": False, "error": str(err),
                 "timed_out": True,
                 "shed": isinstance(err, DeadlineError)},
            )
            return
        except DslError as err:
            # Full caret diagnostic, same rendering the CLI prints —
            # the client sees *where* in their program the error is.
            rendered = err.render(
                SourceText(program, name="<submit>")
                if isinstance(program, str)
                else None
            )
            self._reply(
                400,
                {"ok": False, "error": rendered,
                 "message": err.message},
            )
            return
        except Exception as err:
            self._reply(500, {"ok": False, "error": str(err)})
            return
        self._reply(
            200,
            {"ok": True,
             "value": value,
             "job_id": handle.job_id,
             "latency_seconds": handle.latency_seconds},
        )

    def _reply(
        self,
        status: int,
        payload: Dict[str, object],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # requests are accounted in ServiceStats, not stderr


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one compute service."""

    daemon_threads = True
    # The stdlib default accept backlog is 5, which resets connections
    # when ~100 clients connect in the same instant (the service's
    # whole point). Match the admission queue's scale instead.
    request_queue_size = 128
    #: Extra seconds the handler waits beyond a job's deadline so the
    #: batcher's shed/timeout classification arrives before we reply.
    DEADLINE_GRACE = 2.0

    def __init__(
        self,
        address,
        service: ComputeService,
        result_timeout: float = 60.0,
    ) -> None:
        super().__init__(address, _ServiceHandler)
        self.service = service
        self.result_timeout = result_timeout


def make_http_server(
    service: ComputeService,
    host: str = "127.0.0.1",
    port: int = 0,
    result_timeout: float = 60.0,
) -> ServiceHTTPServer:
    """Bind (but do not run) the HTTP front end; port 0 picks one."""
    return ServiceHTTPServer((host, port), service, result_timeout)


def serve_in_thread(server: ServiceHTTPServer) -> threading.Thread:
    """Run ``server.serve_forever`` on a daemon thread (for tests)."""
    thread = threading.Thread(
        target=server.serve_forever, name="repro-http", daemon=True
    )
    thread.start()
    return thread


def install_signal_handlers(
    server: ServiceHTTPServer,
    service: ComputeService,
    signals: tuple = (signal.SIGTERM,),
) -> None:
    """Wire graceful drain into SIGTERM (call from the main thread).

    On signal: :meth:`ComputeService.begin_drain` runs immediately
    (``/readyz`` flips to 503, admissions stop), then a background
    thread finishes every in-flight job, flushes the final stats
    snapshot to stderr, and stops the HTTP server — which unblocks
    ``serve_forever`` in the main thread. A second signal during the
    drain is ignored (the drain is already as graceful as it gets).
    """
    done = threading.Event()

    def handler(signum, frame) -> None:
        if done.is_set():
            return
        done.set()
        service.begin_drain()

        def drain() -> None:
            service.shutdown(drain=True)
            try:
                sys.stderr.write(service.stats().render() + "\n")
                sys.stderr.flush()
            except Exception:
                pass
            server.shutdown()

        threading.Thread(
            target=drain, name="repro-drain", daemon=True
        ).start()

    for signum in signals:
        signal.signal(signum, handler)


# -- client helpers -----------------------------------------------------------


def _http_json(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[Dict[str, object]] = None,
    timeout: float = 60.0,
) -> Dict[str, object]:
    from http.client import HTTPConnection

    connection = HTTPConnection(host, port, timeout=timeout)
    try:
        body = (
            json.dumps(payload).encode("utf-8")
            if payload is not None
            else None
        )
        headers = {"Content-Type": "application/json"} if body else {}
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        data = json.loads(response.read().decode("utf-8"))
        data["_status"] = response.status
        return data
    finally:
        connection.close()


def submit_remote(
    host: str,
    port: int,
    program: str,
    function: str,
    args: Optional[Mapping[str, object]] = None,
    timeout: Optional[float] = None,
    reduce: Optional[str] = None,
    http_timeout: float = 60.0,
) -> Dict[str, object]:
    """POST one job to a running service; returns the JSON reply."""
    payload: Dict[str, object] = {
        "program": program,
        "function": function,
        "args": dict(args or {}),
    }
    if timeout is not None:
        payload["timeout"] = timeout
    if reduce is not None:
        payload["reduce"] = reduce
    return _http_json(
        host, port, "POST", "/submit", payload, timeout=http_timeout
    )


def fetch_remote_stats(
    host: str, port: int, http_timeout: float = 10.0
) -> Dict[str, object]:
    """GET the ``/stats`` snapshot of a running service."""
    return _http_json(host, port, "GET", "/stats", timeout=http_timeout)
