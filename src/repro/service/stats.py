"""Service observability: counters, batch sizes, latency percentiles.

One :class:`StatsRegistry` per service; every component ticks it under
its own lock. :meth:`StatsRegistry.snapshot` produces the immutable
:class:`ServiceStats` the CLI and the HTTP ``/stats`` endpoint print.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import asdict, dataclass
from typing import Deque, Dict, Optional

from .cache import CacheInfo


def percentile(samples, fraction: float) -> float:
    """Nearest-rank percentile of ``samples`` (0 for no samples)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(
        0, min(len(ordered) - 1, round(fraction * (len(ordered) - 1)))
    )
    return ordered[rank]


@dataclass(frozen=True)
class ServiceStats:
    """One immutable snapshot of the service."""

    submitted: int
    rejected: int
    completed: int
    failed: int
    timed_out: int
    #: Jobs whose deadline expired before any launch was attempted
    #: (dequeue-time / pre-launch shedding) — work the service
    #: declined, not work that failed.
    shed: int
    retries: int
    device_faults: int
    demotions: int
    #: Sandbox worker subprocesses that died (or were deadline-killed)
    #: mid-launch, and launches re-routed off the native backend after
    #: a crash or an open circuit breaker.
    worker_crashes: int
    demotions_native: int
    batches: int
    batched_jobs: int
    mean_batch_size: float
    max_batch_size: int
    queue_depth: int
    p50_latency_seconds: float
    p95_latency_seconds: float
    cache_hits: int
    cache_misses: int
    cache_hit_rate: float
    cache_disk_hits: int
    cache_evictions: int

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict form."""
        return asdict(self)

    def render(self) -> str:
        """Human-readable multi-line form (CLI ``--stats``)."""
        lines = [
            "service stats",
            f"  jobs        submitted={self.submitted} "
            f"completed={self.completed} failed={self.failed} "
            f"timed_out={self.timed_out} shed={self.shed} "
            f"rejected={self.rejected} "
            f"retries={self.retries}",
            f"  resilience  device_faults={self.device_faults} "
            f"demotions={self.demotions} "
            f"worker_crashes={self.worker_crashes} "
            f"demotions_native={self.demotions_native}",
            f"  queue       depth={self.queue_depth}",
            f"  batching    batches={self.batches} "
            f"jobs={self.batched_jobs} "
            f"mean_size={self.mean_batch_size:.2f} "
            f"max_size={self.max_batch_size}",
            f"  latency     p50={self.p50_latency_seconds * 1e3:.2f}ms "
            f"p95={self.p95_latency_seconds * 1e3:.2f}ms",
            f"  kernel-cache hits={self.cache_hits} "
            f"misses={self.cache_misses} "
            f"hit_rate={self.cache_hit_rate:.0%} "
            f"disk_hits={self.cache_disk_hits} "
            f"evictions={self.cache_evictions}",
        ]
        return "\n".join(lines)


class StatsRegistry:
    """Thread-safe mutable counters behind the snapshots."""

    def __init__(self, latency_window: int = 4096) -> None:
        self._lock = threading.Lock()
        self.submitted = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self.timed_out = 0
        self.shed = 0
        self.retries = 0
        self.device_faults = 0
        self.demotions = 0
        self.batches = 0
        self.batched_jobs = 0
        self.max_batch_size = 0
        self._latencies: Deque[float] = deque(maxlen=latency_window)

    # -- ticks ---------------------------------------------------------------

    def job_submitted(self) -> None:
        """A job passed admission control."""
        with self._lock:
            self.submitted += 1

    def job_rejected(self) -> None:
        """A submission was refused at admission (queue full/closed)."""
        with self._lock:
            self.rejected += 1

    def job_completed(self, latency_seconds: float) -> None:
        """A job resolved successfully after ``latency_seconds``."""
        with self._lock:
            self.completed += 1
            self._latencies.append(latency_seconds)

    def job_failed(self) -> None:
        """A job failed permanently (bad input or retries exhausted)."""
        with self._lock:
            self.failed += 1

    def job_timed_out(self) -> None:
        """A job's deadline passed while it was being retried."""
        with self._lock:
            self.timed_out += 1

    def job_shed(self) -> None:
        """A job's deadline expired before any launch was attempted."""
        with self._lock:
            self.shed += 1

    def retry(self) -> None:
        """A batch attempt hit a transient error and will rerun."""
        with self._lock:
            self.retries += 1

    def device_fault(self) -> None:
        """A batch attempt failed with a (simulated) device fault."""
        with self._lock:
            self.device_faults += 1

    def demotion(self) -> None:
        """A job was demoted to the serial reference interpreter."""
        with self._lock:
            self.demotions += 1

    def batch_executed(self, size: int) -> None:
        """A batch of ``size`` jobs ran as one ``map`` launch."""
        with self._lock:
            self.batches += 1
            self.batched_jobs += size
            self.max_batch_size = max(self.max_batch_size, size)

    # -- snapshot ------------------------------------------------------------

    def snapshot(
        self,
        queue_depth: int = 0,
        cache_info: Optional[CacheInfo] = None,
        worker_crashes: int = 0,
        demotions_native: int = 0,
    ) -> ServiceStats:
        """The current :class:`ServiceStats`.

        ``worker_crashes``/``demotions_native`` are snapshot *inputs*
        (the sandbox module and the pool's engines own those
        counters), so the registry never double-counts them.
        """
        cache = cache_info or CacheInfo(0, 0, 0, 0, 0, 0, 0, 0)
        with self._lock:
            lookups = cache.hits + cache.misses
            return ServiceStats(
                submitted=self.submitted,
                rejected=self.rejected,
                completed=self.completed,
                failed=self.failed,
                timed_out=self.timed_out,
                shed=self.shed,
                retries=self.retries,
                device_faults=self.device_faults,
                demotions=self.demotions,
                worker_crashes=worker_crashes,
                demotions_native=demotions_native,
                batches=self.batches,
                batched_jobs=self.batched_jobs,
                mean_batch_size=(
                    self.batched_jobs / self.batches
                    if self.batches
                    else 0.0
                ),
                max_batch_size=self.max_batch_size,
                queue_depth=queue_depth,
                p50_latency_seconds=percentile(self._latencies, 0.50),
                p95_latency_seconds=percentile(self._latencies, 0.95),
                cache_hits=cache.hits,
                cache_misses=cache.misses,
                cache_hit_rate=(
                    cache.hits / lookups if lookups else 0.0
                ),
                cache_disk_hits=cache.disk_hits,
                cache_evictions=cache.evictions,
            )
