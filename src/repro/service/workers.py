"""The worker pool: N threads, one engine each, shared kernel cache.

Each worker owns a full :class:`~repro.runtime.engine.Engine` (the
engines share one kernel cache, so a function compiled by any worker
is a hit for all) and executes whole batches through
:meth:`~repro.runtime.engine.Engine.map_run` — the paper's batched
``map`` path, not a serial loop of one-off runs.

Failure policy per batch attempt (see :func:`classify_failure`):

* DSL errors (parse/type/schedule/runtime-DSL, including
  :class:`~repro.gpu.executor.RaceError` and
  :class:`~repro.lang.errors.BackendDivergenceError`) are
  *permanent*: the input — or the compiler — is wrong, retrying
  cannot help, every job in the batch fails immediately;
* :class:`~repro.resilience.faults.DeviceFault` is *device-transient*:
  retried with backoff, but a batch that keeps hitting device faults
  is **demoted** to the serial reference interpreter (graceful
  degradation — slow but fault-free), recorded in
  :class:`~repro.service.stats.ServiceStats`;
* environmental errors (``OSError``/``MemoryError``/``TimeoutError``)
  are *transient*: jobs with retry budget left are retried with
  exponential backoff (jobs without budget fail);
* any other exception is treated as permanent — unknown failures
  fail fast rather than burn retries;
* a job whose per-job timeout has passed is failed with
  :class:`~repro.service.queue.JobTimeoutError` before an attempt
  starts — a batch already executing is never preempted (threads
  cannot be killed safely), so a timeout bounds *queue + retry* wait,
  not one engine call.
"""

from __future__ import annotations

import hashlib
import queue as _queue
import threading
import time
from typing import Callable, List, Optional, Tuple

from ..lang.errors import DslError
from ..resilience.faults import DeviceFault
from ..resilience.reference import serial_reference_run
from ..runtime.engine import Engine
from .batcher import Batch
from .programs import ProgramRegistry
from .queue import DeadlineError, Job, JobState, JobTimeoutError
from .stats import StatsRegistry


def classify_failure(error: BaseException) -> str:
    """Classify one batch-attempt failure for the retry policy.

    Returns ``"permanent"`` (fail fast, never retry), ``"device"``
    (transient device fault: retry, eventually demote) or
    ``"transient"`` (environmental: retry while budget lasts).
    DslError is checked first: BackendDivergenceError subclasses both
    worlds conceptually but *is* a DslError — a compiler bug must
    never be retried.
    """
    if isinstance(error, DslError):
        return "permanent"
    if isinstance(error, DeviceFault):
        return "device"
    if isinstance(error, (OSError, MemoryError, TimeoutError)):
        return "transient"
    return "permanent"


def backoff_delay(
    base: float, round_index: int, cap: float, token: str
) -> float:
    """Exponential backoff with *deterministic* jitter.

    ``base * 2**round`` scaled by a factor in ``[0.5, 1.5)`` derived
    from ``sha256(token | round)`` — so concurrent batches desynchronise
    (no thundering-herd retry waves) while any given (batch, round)
    always sleeps the same amount, keeping chaos runs reproducible.
    """
    digest = hashlib.sha256(
        f"{token}|{round_index}".encode("utf-8")
    ).hexdigest()
    unit = int(digest[:8], 16) / float(0xFFFFFFFF)
    return min(cap, base * (2.0 ** round_index) * (0.5 + unit))


class WorkerPool:
    """Executes batches from a queue until shut down."""

    def __init__(
        self,
        batches: "_queue.Queue[Optional[Batch]]",
        engine_factory: Callable[[], Engine],
        registry: ProgramRegistry,
        stats: StatsRegistry,
        workers: int = 4,
        backoff_seconds: float = 0.05,
        backoff_cap_seconds: float = 1.0,
        demote_after: int = 3,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if demote_after < 1:
            raise ValueError(
                f"demote_after must be >= 1, got {demote_after}"
            )
        self.batches = batches
        self.engine_factory = engine_factory
        self.registry = registry
        self.stats = stats
        self.backoff_seconds = backoff_seconds
        self.backoff_cap_seconds = backoff_cap_seconds
        self.demote_after = demote_after
        #: The engines (or supervisors) the worker threads built —
        #: the stats endpoint sums ``native_demotions`` across them.
        self.engines: List[object] = []
        self._engines_lock = threading.Lock()
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-worker-{index}",
                daemon=True,
            )
            for index in range(workers)
        ]
        self._started = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Start every worker thread (idempotent)."""
        if self._started:
            return
        self._started = True
        for thread in self._threads:
            thread.start()

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop workers after the queue drains (one sentinel each)."""
        for _ in self._threads:
            self.batches.put(None)
        deadline = time.monotonic() + timeout
        for thread in self._threads:
            if not self._started:
                break
            thread.join(max(0.0, deadline - time.monotonic()))

    @property
    def size(self) -> int:
        """Number of worker threads."""
        return len(self._threads)

    # -- execution -----------------------------------------------------------

    def native_demotions(self) -> int:
        """Launches the worker engines re-routed off native after a
        sandbox crash/hang or an open circuit breaker."""
        with self._engines_lock:
            return sum(
                getattr(engine, "native_demotions", 0)
                for engine in self.engines
            )

    def _worker_loop(self) -> None:
        engine = self.engine_factory()
        with self._engines_lock:
            self.engines.append(engine)
        while True:
            batch = self.batches.get()
            try:
                if batch is None:
                    return
                self.execute_batch(engine, batch)
            finally:
                self.batches.task_done()

    def execute_batch(self, engine: Engine, batch: Batch) -> None:
        """Run one batch to completion (public for tests/tools)."""
        try:
            program = self.registry.get(batch.program_sha)
            func = program.function(batch.function)
        except Exception as err:
            self._fail_jobs(batch.jobs, err)
            return
        at = dict(batch.key[2])
        initial = dict(batch.key[3])
        reduce = batch.key[4]

        live = list(batch.jobs)
        retry_round = 0
        device_fault_rounds = 0
        # Until the first launch is attempted, an expired deadline
        # means the job was *shed* (queue/batcher wait ate its whole
        # budget) rather than timed out mid-retry.
        attempted = False
        backoff_token = f"{batch.program_sha}:{batch.function}"
        while True:
            live = self._expire(live, shed=not attempted)
            if not live:
                return
            for job in live:
                job.handle.state = JobState.RUNNING
            attempted = True
            try:
                result = engine.map_run(
                    func,
                    {},
                    [job.bindings for job in live],
                    at=at or None,
                    initial=initial or None,
                    reduce=reduce,
                )
            except Exception as err:
                kind = classify_failure(err)
                if kind == "permanent":
                    # Bad input or a compiler bug — retrying cannot
                    # change a deterministic outcome.
                    self._fail_jobs(live, err)
                    return
                if kind == "device":
                    self.stats.device_fault()
                    device_fault_rounds += 1
                    if device_fault_rounds >= self.demote_after:
                        # The device keeps misbehaving on this batch:
                        # stop trusting it, finish on the serial
                        # reference interpreter.
                        self._demote(live, func, at, initial, reduce)
                        return
                    retryable, exhausted = self._split_retry_budget(
                        live
                    )
                    # Out-of-budget jobs of a *device* fault still get
                    # a correct answer, just slowly.
                    if exhausted:
                        self._demote(exhausted, func, at, initial,
                                     reduce)
                    live = retryable
                else:
                    live = self._spend_retry_budget(live, err)
                if not live:
                    return
                self.stats.retry()
                time.sleep(
                    backoff_delay(
                        self.backoff_seconds, retry_round,
                        self.backoff_cap_seconds, backoff_token,
                    )
                )
                retry_round += 1
                continue
            now = time.monotonic()
            self.stats.batch_executed(len(live))
            for job, value in zip(live, result.values):
                latency = job.age(now)
                job.handle.resolve(value, latency)
                self.stats.job_completed(latency)
            return

    # -- helpers -------------------------------------------------------------

    def _expire(
        self, jobs: List[Job], shed: bool = False
    ) -> List[Job]:
        """Drop jobs whose deadline has passed.

        ``shed=True`` marks the pre-first-launch check: the job is
        rejected with :class:`DeadlineError` and counted as shed —
        the service declined the work — instead of as a mid-retry
        timeout.
        """
        now = time.monotonic()
        live: List[Job] = []
        for job in jobs:
            if job.expired(now):
                if shed:
                    error: JobTimeoutError = DeadlineError(
                        f"job {job.job_id} deadline expired before "
                        f"launch (waited {job.age(now):.3f}s of its "
                        f"{job.timeout}s budget); shed"
                    )
                else:
                    error = JobTimeoutError(
                        f"job {job.job_id} exceeded its "
                        f"{job.timeout}s timeout after waiting "
                        f"{job.age(now):.3f}s"
                    )
                job.handle.reject(
                    error,
                    state=JobState.TIMED_OUT,
                    latency=job.age(now),
                )
                if shed:
                    self.stats.job_shed()
                else:
                    self.stats.job_timed_out()
            else:
                live.append(job)
        return live

    def _split_retry_budget(
        self, jobs: List[Job]
    ) -> Tuple[List[Job], List[Job]]:
        """Decrement budgets; partition into (retryable, exhausted)."""
        retryable: List[Job] = []
        exhausted: List[Job] = []
        for job in jobs:
            if job.retries_left > 0:
                job.retries_left -= 1
                retryable.append(job)
            else:
                exhausted.append(job)
        return retryable, exhausted

    def _spend_retry_budget(
        self, jobs: List[Job], error: BaseException
    ) -> List[Job]:
        """Decrement budgets; fail jobs that are out of retries."""
        retryable, exhausted = self._split_retry_budget(jobs)
        self._fail_jobs(exhausted, error)
        return retryable

    def _demote(
        self,
        jobs: List[Job],
        func,
        at: dict,
        initial: dict,
        reduce: Optional[str],
    ) -> None:
        """Finish ``jobs`` on the serial reference interpreter.

        The last rung of graceful degradation: no kernels, no device,
        no injection surface. Each job is solved independently; a job
        the interpreter also rejects fails permanently.
        """
        jobs = self._expire(jobs)
        for job in jobs:
            try:
                value = serial_reference_run(
                    func,
                    job.bindings,
                    at=at or None,
                    initial=initial or None,
                    reduce=reduce,
                )
            except Exception as err:
                self._fail_jobs([job], err)
                continue
            self.stats.demotion()
            latency = job.age()
            job.handle.resolve(value, latency)
            self.stats.job_completed(latency)

    def _fail_jobs(self, jobs: List[Job], error: BaseException) -> None:
        for job in jobs:
            job.handle.reject(error, latency=job.age())
            self.stats.job_failed()
