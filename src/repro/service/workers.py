"""The worker pool: N threads, one engine each, shared kernel cache.

Each worker owns a full :class:`~repro.runtime.engine.Engine` (the
engines share one kernel cache, so a function compiled by any worker
is a hit for all) and executes whole batches through
:meth:`~repro.runtime.engine.Engine.map_run` — the paper's batched
``map`` path, not a serial loop of one-off runs.

Failure policy per batch attempt:

* DSL errors (parse/type/schedule/runtime-DSL) are *permanent*: the
  input is wrong, retrying cannot help, every job in the batch fails
  immediately;
* anything else is treated as *transient*: jobs with retry budget
  left are retried with exponential backoff (jobs without budget
  fail);
* a job whose per-job timeout has passed is failed with
  :class:`~repro.service.queue.JobTimeoutError` before an attempt
  starts — a batch already executing is never preempted (threads
  cannot be killed safely), so a timeout bounds *queue + retry* wait,
  not one engine call.
"""

from __future__ import annotations

import queue as _queue
import threading
import time
from typing import Callable, List, Optional

from ..lang.errors import DslError
from ..runtime.engine import Engine
from .batcher import Batch
from .programs import ProgramRegistry
from .queue import Job, JobState, JobTimeoutError
from .stats import StatsRegistry


class WorkerPool:
    """Executes batches from a queue until shut down."""

    def __init__(
        self,
        batches: "_queue.Queue[Optional[Batch]]",
        engine_factory: Callable[[], Engine],
        registry: ProgramRegistry,
        stats: StatsRegistry,
        workers: int = 4,
        backoff_seconds: float = 0.05,
        backoff_cap_seconds: float = 1.0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.batches = batches
        self.engine_factory = engine_factory
        self.registry = registry
        self.stats = stats
        self.backoff_seconds = backoff_seconds
        self.backoff_cap_seconds = backoff_cap_seconds
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-worker-{index}",
                daemon=True,
            )
            for index in range(workers)
        ]
        self._started = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Start every worker thread (idempotent)."""
        if self._started:
            return
        self._started = True
        for thread in self._threads:
            thread.start()

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop workers after the queue drains (one sentinel each)."""
        for _ in self._threads:
            self.batches.put(None)
        deadline = time.monotonic() + timeout
        for thread in self._threads:
            if not self._started:
                break
            thread.join(max(0.0, deadline - time.monotonic()))

    @property
    def size(self) -> int:
        """Number of worker threads."""
        return len(self._threads)

    # -- execution -----------------------------------------------------------

    def _worker_loop(self) -> None:
        engine = self.engine_factory()
        while True:
            batch = self.batches.get()
            try:
                if batch is None:
                    return
                self.execute_batch(engine, batch)
            finally:
                self.batches.task_done()

    def execute_batch(self, engine: Engine, batch: Batch) -> None:
        """Run one batch to completion (public for tests/tools)."""
        try:
            program = self.registry.get(batch.program_sha)
            func = program.function(batch.function)
        except Exception as err:
            self._fail_jobs(batch.jobs, err)
            return
        at = dict(batch.key[2])
        initial = dict(batch.key[3])
        reduce = batch.key[4]

        live = list(batch.jobs)
        delay = self.backoff_seconds
        while True:
            live = self._expire(live)
            if not live:
                return
            for job in live:
                job.handle.state = JobState.RUNNING
            try:
                result = engine.map_run(
                    func,
                    {},
                    [job.bindings for job in live],
                    at=at or None,
                    initial=initial or None,
                    reduce=reduce,
                )
            except DslError as err:
                self._fail_jobs(live, err)  # permanent: bad input
                return
            except Exception as err:
                live = self._spend_retry_budget(live, err)
                if not live:
                    return
                self.stats.retry()
                time.sleep(min(delay, self.backoff_cap_seconds))
                delay *= 2.0
                continue
            now = time.monotonic()
            self.stats.batch_executed(len(live))
            for job, value in zip(live, result.values):
                latency = job.age(now)
                job.handle.resolve(value, latency)
                self.stats.job_completed(latency)
            return

    # -- helpers -------------------------------------------------------------

    def _expire(self, jobs: List[Job]) -> List[Job]:
        now = time.monotonic()
        live: List[Job] = []
        for job in jobs:
            if job.expired(now):
                job.handle.reject(
                    JobTimeoutError(
                        f"job {job.job_id} exceeded its "
                        f"{job.timeout}s timeout after waiting "
                        f"{job.age(now):.3f}s"
                    ),
                    state=JobState.TIMED_OUT,
                    latency=job.age(now),
                )
                self.stats.job_timed_out()
            else:
                live.append(job)
        return live

    def _spend_retry_budget(
        self, jobs: List[Job], error: BaseException
    ) -> List[Job]:
        """Decrement budgets; fail jobs that are out of retries."""
        retryable: List[Job] = []
        exhausted: List[Job] = []
        for job in jobs:
            if job.retries_left > 0:
                job.retries_left -= 1
                retryable.append(job)
            else:
                exhausted.append(job)
        self._fail_jobs(exhausted, error)
        return retryable

    def _fail_jobs(self, jobs: List[Job], error: BaseException) -> None:
        for job in jobs:
            job.handle.reject(error, latency=job.age())
            self.stats.job_failed()
