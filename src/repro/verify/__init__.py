"""Independent static verification of compiled programs.

Three passes plus a runtime sanitizer, all reporting through one
machine-readable :class:`~repro.verify.diagnostics.Diagnostic` type:

* :mod:`repro.verify.soundness` — re-proves every schedule against the
  recursion's descent functions with an implementation that shares
  nothing with the solver's :meth:`Criterion.min_delta`, so a solver
  bug cannot self-certify (Sections 4.4-4.6, Fig. 8);
* :mod:`repro.verify.access` — guard-aware access/initialization
  analysis of the lowered IR: out-of-bounds table and sequence reads,
  read-before-write under the schedule, dead equation arms, unused
  calling parameters;
* :mod:`repro.verify.races` — parallel-safety certificates for the
  OpenMP axes: intra-partition disjointness, batched-slice
  disjointness, ring-buffer safety; the native emitter withholds
  every pragma an axis has not earned;
* :mod:`repro.verify.sanitizer` — poison-fill execution with
  per-partition read/write tracking that fails at partition barriers;
* :mod:`repro.verify.lint` — the program-level orchestration behind
  ``python -m repro lint`` and the service's admission control.
"""

from .access import analyze_access
from .diagnostics import RULES, Diagnostic, Report, Severity
from .lint import LintResult, lint_checked, lint_text
from .races import (
    AxisVerdict,
    ParallelismCertificate,
    analyze_parallelism,
    parallelism_certificate,
)
from .sanitizer import run_sanitized, sanitized_partition_scan
from .soundness import ScheduleCertificate, verify_schedule

__all__ = [
    "Diagnostic",
    "Report",
    "RULES",
    "Severity",
    "ScheduleCertificate",
    "verify_schedule",
    "analyze_access",
    "AxisVerdict",
    "ParallelismCertificate",
    "analyze_parallelism",
    "parallelism_certificate",
    "run_sanitized",
    "sanitized_partition_scan",
    "LintResult",
    "lint_checked",
    "lint_text",
]
