"""Guard-aware access/initialization analysis of the lowered IR.

Where the soundness pass (:mod:`repro.verify.soundness`) treats every
textual call site as a dependence (the paper's Section 4.4 stance),
this pass walks the *lowered* cell expression carrying a path
condition in disjunctive normal form, so base-case guards like
``if i == 0 then ... else f(i - 1)`` discharge exactly the accesses
they actually protect. It reports, per the rule registry in
:mod:`repro.verify.diagnostics`:

* ``A-OOB-TABLE`` — a table read whose index can leave the domain box
  on some feasible path;
* ``A-OOB-SEQ`` — a sequence read that can leave ``0..len-1``;
* ``A-RBW`` — a feasible in-box table read the schedule does not
  place in an earlier partition (a guard-aware refinement of the
  soundness check);
* ``A-DEAD-ARM`` — an equation arm no point of the box can reach;
* ``A-UNUSED-PARAM`` — a calling parameter the body never consults.

Conditions the analysis cannot express as affine constraints
(data-dependent tests such as ``s[i-1] == t[j-1]``) contribute no
constraint — the path simply stays wider, which over-approximates
reachability and keeps every finding that *is* reported meaningful.
Findings proved only on the LP relaxation (no integer witness) are
downgraded one severity.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.affine import Affine
from ..analysis.domain import Domain
from ..ir import expr as ir
from ..ir.lower import lower_function
from ..lang.typecheck import CheckedFunction
from ..lang.types import HmmType, IndexType, MatrixType, SeqType
from ..schedule.schedule import Schedule
from .diagnostics import Diagnostic, Severity
from .exact import feasible, vertex_max, vertex_min

#: Stop refining the path condition beyond this many disjuncts; the
#: unrefined path is a sound over-approximation.
MAX_DISJUNCTS = 32

#: One conjunction of affine constraints ``c(x) >= 0``.
Conj = Tuple[Affine, ...]
#: A path condition: the disjunction of its conjunctions.
Dnf = List[Conj]


def analyze_access(
    func: CheckedFunction,
    domain: Domain,
    schedule: Optional[Schedule] = None,
    prob_mode: str = "direct",
) -> List[Diagnostic]:
    """Run the access pass on ``func`` over ``domain``.

    ``schedule`` enables the read-before-write check; without it only
    bounds, dead arms and unused parameters are analysed.
    """
    span_map: Dict[int, object] = {}
    lowered = lower_function(func, prob_mode, span_map=span_map)
    analyzer = _Analyzer(func, domain, schedule, span_map)
    analyzer.walk(lowered.cell, [()])
    analyzer.check_unused_params(lowered.cell)
    return analyzer.diagnostics


class _Analyzer:
    def __init__(
        self,
        func: CheckedFunction,
        domain: Domain,
        schedule: Optional[Schedule],
        span_map: Dict[int, object],
    ) -> None:
        self.func = func
        self.domain = domain
        self.extents = domain.extent_map()
        self.schedule = schedule
        self.span_map = span_map
        self.diagnostics: List[Diagnostic] = []
        #: Range binders in scope -> inclusive bounds; opaque binders
        #: (transition sets, non-affine ranges) map to None.
        self._binders: Dict[str, Optional[Tuple[int, int]]] = {}
        self._reported: set = set()

    # -- affine abstraction ---------------------------------------------------

    def _affine_of(self, node: ir.Node) -> Optional[Affine]:
        """Abstract an index expression into affine form, or None."""
        if isinstance(node, ir.Const) and node.kind == "int":
            return Affine.constant(int(node.value))
        if isinstance(node, ir.DimRef):
            return Affine.variable(node.name)
        if isinstance(node, ir.VarRef):
            if self._binders.get(node.name) is not None:
                return Affine.variable(node.name)
            return None  # opaque binder (transition id)
        if isinstance(node, ir.Binary):
            left = self._affine_of(node.left)
            right = self._affine_of(node.right)
            if node.op == "+" and left is not None and right is not None:
                return left + right
            if node.op == "-" and left is not None and right is not None:
                return left - right
            if node.op == "*" and left is not None and right is not None:
                if left.is_constant:
                    return right.scale(left.const)
                if right.is_constant:
                    return left.scale(right.const)
        return None

    def _var_bounds(self) -> Dict[str, Tuple[int, int]]:
        return {
            name: bounds
            for name, bounds in self._binders.items()
            if bounds is not None
        }

    # -- path conditions ------------------------------------------------------

    def _branch_alts(
        self, cond: ir.Node, taken: bool
    ) -> Optional[List[Conj]]:
        """The condition (or its negation) as a DNF over constraints.

        None means the condition is not affine-expressible — the
        caller keeps the unrefined path.
        """
        if not isinstance(cond, ir.Binary):
            return None
        left = self._affine_of(cond.left)
        right = self._affine_of(cond.right)
        if left is None or right is None:
            return None
        op = cond.op
        if not taken:
            negations = {
                "<": ">=", "<=": ">", ">": "<=", ">=": "<",
                "==": "!=", "!=": "==",
            }
            if op not in negations:
                return None
            op = negations[op]
        if op == "<":
            return [(right - left - Affine.constant(1),)]
        if op == "<=":
            return [(right - left,)]
        if op == ">":
            return [(left - right - Affine.constant(1),)]
        if op == ">=":
            return [(left - right,)]
        if op == "==":
            return [(left - right, right - left)]
        if op == "!=":
            return [
                (left - right - Affine.constant(1),),
                (right - left - Affine.constant(1),),
            ]
        return None

    def _refine(self, dnf: Dnf, alts: Optional[List[Conj]]) -> Dnf:
        """Conjoin ``alts`` onto every disjunct, pruning cheaply."""
        if alts is None:
            return dnf
        bounds = self._var_bounds()
        refined: Dnf = []
        for conj in dnf:
            for alt in alts:
                # Cheap necessary condition: any new constraint whose
                # vertex maximum is negative kills the disjunct.
                tops = [
                    vertex_max(c, self.extents, bounds) for c in alt
                ]
                if any(t is not None and t < 0 for t in tops):
                    continue
                refined.append(conj + alt)
        if len(refined) > MAX_DISJUNCTS:
            return dnf  # over-approximate rather than blow up
        return refined

    def _feasibility(
        self, dnf: Dnf, extra: Sequence[Affine]
    ) -> Optional[bool]:
        """Can ``extra`` hold on a path? True exact / False / None=LP-only."""
        bounds = self._var_bounds()
        lp_only = False
        for conj in dnf:
            result = feasible(
                tuple(conj) + tuple(extra), self.extents, bounds
            )
            if result.empty:
                continue
            if result.exact:
                return True
            lp_only = True
        return None if lp_only else False

    # -- reporting ------------------------------------------------------------

    def _report(
        self,
        key: tuple,
        rule: str,
        message: str,
        node: ir.Node,
        exact: bool,
    ) -> None:
        if key in self._reported:
            return
        self._reported.add(key)
        severity = Severity.ERROR if exact else Severity.WARNING
        self.diagnostics.append(
            Diagnostic(
                severity,
                rule,
                message if exact else message + " (LP relaxation only)",
                span=self.span_map.get(id(node)),
                function=self.func.name,
                exact=exact,
            )
        )

    # -- the walk -------------------------------------------------------------

    def walk(self, node: ir.Node, dnf: Dnf) -> None:
        if not dnf:
            return  # unreachable under the current guards
        if isinstance(node, ir.Select):
            self.walk(node.cond, dnf)
            for branch, taken, label in (
                (node.then, True, "then"),
                (node.otherwise, False, "else"),
            ):
                alts = self._branch_alts(node.cond, taken)
                refined = self._refine(dnf, alts)
                if alts is not None and self._is_dead(refined):
                    self._dead_arm(branch, node, label)
                    continue
                self.walk(branch, refined)
            return
        if isinstance(node, ir.TableRead):
            for index in node.indices:
                self.walk(index, dnf)
            self._check_table_read(node, dnf)
            return
        if isinstance(node, ir.SeqRead):
            self.walk(node.index, dnf)
            self._check_seq_read(node, dnf)
            return
        if isinstance(node, ir.RangeReduce):
            self.walk(node.lo, dnf)
            self.walk(node.hi, dnf)
            self._walk_range_body(node, dnf)
            return
        if isinstance(node, ir.ReduceLoop):
            self.walk(node.state, dnf)
            self._binders[node.var] = None  # opaque transition binder
            try:
                self.walk(node.body, dnf)
            finally:
                del self._binders[node.var]
            return
        for child in ir.children(node):
            self.walk(child, dnf)

    def _walk_range_body(self, node: ir.RangeReduce, dnf: Dnf) -> None:
        lo = self._affine_of(node.lo)
        hi = self._affine_of(node.hi)
        bounds = self._var_bounds()
        if lo is None or hi is None:
            self._binders[node.var] = None
            try:
                self.walk(node.body, dnf)
            finally:
                del self._binders[node.var]
            return
        lo_min = vertex_min(lo, self.extents, bounds)
        hi_max = vertex_max(hi, self.extents, bounds)
        if lo_min is None or hi_max is None or hi_max < lo_min:
            return  # the range is empty everywhere: body never runs
        self._binders[node.var] = (lo_min, hi_max)
        binder = Affine.variable(node.var)
        body_dnf = [
            conj + (binder - lo, hi - binder) for conj in dnf
        ]
        try:
            self.walk(node.body, body_dnf)
        finally:
            del self._binders[node.var]

    # -- individual checks ----------------------------------------------------

    def _is_dead(self, dnf: Dnf) -> bool:
        """Is every disjunct exactly infeasible?"""
        if not dnf:
            return True
        bounds = self._var_bounds()
        for conj in dnf:
            result = feasible(tuple(conj), self.extents, bounds)
            if not result.empty:
                return False
        return True

    def _dead_arm(
        self, branch: ir.Node, select: ir.Select, label: str
    ) -> None:
        span = self.span_map.get(id(branch)) or self.span_map.get(
            id(select)
        )
        key = ("dead", id(branch))
        if key in self._reported:
            return
        self._reported.add(key)
        self.diagnostics.append(
            Diagnostic(
                Severity.WARNING,
                "A-DEAD-ARM",
                f"the {label} arm of this condition is unreachable "
                f"for every point of the domain {self.domain}",
                span=span,
                function=self.func.name,
            )
        )

    def _check_table_read(self, node: ir.TableRead, dnf: Dnf) -> None:
        indices = [self._affine_of(i) for i in node.indices]
        table = node.table or self.func.name
        for k, (dim, idx) in enumerate(
            zip(self.domain.dims, indices)
        ):
            if idx is None:
                continue  # free component: checked dynamically
            extent = self.extents[dim]
            low = self._feasibility(dnf, [-idx - Affine.constant(1)])
            if low is not False:
                self._report(
                    ("oob", id(node), k, "low"),
                    "A-OOB-TABLE",
                    f"table read {table}[...] can access "
                    f"{dim} = {idx} < 0 on a reachable path",
                    node,
                    exact=low is True,
                )
            high = self._feasibility(
                dnf, [idx - Affine.constant(extent)]
            )
            if high is not False:
                self._report(
                    ("oob", id(node), k, "high"),
                    "A-OOB-TABLE",
                    f"table read {table}[...] can access "
                    f"{dim} = {idx} >= {extent} on a reachable path",
                    node,
                    exact=high is True,
                )
        if (
            self.schedule is not None
            and not node.table
            and all(idx is not None for idx in indices)
        ):
            self._check_rbw(node, dnf, indices)

    def _check_rbw(
        self,
        node: ir.TableRead,
        dnf: Dnf,
        indices: List[Optional[Affine]],
    ) -> None:
        """Feasible in-box read the schedule does not order earlier."""
        assert self.schedule is not None
        in_box: List[Affine] = []
        for dim, idx in zip(self.domain.dims, indices):
            assert idx is not None
            in_box.append(idx)  # idx >= 0
            in_box.append(
                Affine.constant(self.extents[dim] - 1) - idx
            )
        substitution = dict(zip(self.domain.dims, indices))
        # S(r(x)) - S(x) >= 0 <=> the read's cell is not in an
        # earlier partition than the cell being written.
        late = self.schedule.affine.substitute(
            substitution
        ) - self.schedule.affine
        verdict = self._feasibility(dnf, in_box + [late])
        if verdict is not False:
            self._report(
                ("rbw", id(node)),
                "A-RBW",
                f"table read at indices "
                f"({', '.join(str(i) for i in indices)}) is not "
                f"ordered before the write by {self.schedule} on a "
                f"reachable path",
                node,
                exact=verdict is True,
            )

    def _check_seq_read(self, node: ir.SeqRead, dnf: Dnf) -> None:
        idx = self._affine_of(node.index)
        if idx is None:
            return
        length = self._seq_length(node.seq)
        if length is None:
            return
        low = self._feasibility(dnf, [-idx - Affine.constant(1)])
        if low is not False:
            self._report(
                ("seq", id(node), "low"),
                "A-OOB-SEQ",
                f"sequence read {node.seq}[{idx}] can access a "
                f"negative position on a reachable path",
                node,
                exact=low is True,
            )
        high = self._feasibility(dnf, [idx - Affine.constant(length)])
        if high is not False:
            self._report(
                ("seq", id(node), "high"),
                "A-OOB-SEQ",
                f"sequence read {node.seq}[{idx}] can pass the last "
                f"position {length - 1} on a reachable path",
                node,
                exact=high is True,
            )

    def _seq_length(self, seq: str) -> Optional[int]:
        """len(seq) implied by the domain: index extent is len + 1."""
        for param in self.func.params:
            if (
                isinstance(param.type, IndexType)
                and param.type.seq_param == seq
                and param.name in self.extents
            ):
                return self.extents[param.name] - 1
        return None

    # -- unused calling parameters -------------------------------------------

    def check_unused_params(self, cell: ir.Node) -> None:
        """Flag calling parameters the lowered body never consults."""
        used: set = set()
        for node in ir.walk(cell):
            if isinstance(node, ir.ArgRef):
                used.add(node.name)
            elif isinstance(node, ir.SeqRead):
                used.add(node.seq)
            elif isinstance(node, ir.MatrixRead):
                used.add(node.matrix)
            elif isinstance(
                node,
                (ir.StateFlag, ir.EmissionRead, ir.TransField),
            ):
                used.add(node.hmm)
            elif isinstance(node, ir.ReduceLoop):
                used.add(node.hmm)
        # A seq/hmm that only *bounds* a recursion dimension is used
        # structurally even if never read.
        for param in self.func.recursive_params:
            if isinstance(param.type, IndexType):
                used.add(param.type.seq_param)
            subject = getattr(param.type, "hmm_param", None)
            if subject is not None:
                used.add(subject)
        for param in self.func.calling_params:
            if param.name in used:
                continue
            kind = (
                "matrix" if isinstance(param.type, MatrixType)
                else "sequence" if isinstance(param.type, SeqType)
                else "model" if isinstance(param.type, HmmType)
                else "parameter"
            )
            self.diagnostics.append(
                Diagnostic(
                    Severity.WARNING,
                    "A-UNUSED-PARAM",
                    f"calling {kind} {param.name!r} is never used by "
                    f"the body",
                    span=getattr(param, "span", None),
                    function=self.func.name,
                )
            )
