"""The machine-readable diagnostic record every verifier pass emits.

A :class:`Diagnostic` is one finding: a severity, a stable rule id, a
human message, and (where the finding maps onto user text) a source
span — rendering goes through the same
:meth:`~repro.lang.source.SourceText.render` caret machinery as
:meth:`DslError.render`, so lint output looks exactly like compiler
errors.

Rule id registry (stable identifiers; tests and CI budgets key on
them):

==================  ========  =========================================
``V-SCHED-DELTA``   error     a call site's ``S(x) - S(r(x))`` is not
                              provably positive over the domain box
``V-SCHED-CERT``    info      the positive certificate: partition
                              count + minimum delta per call site
``V-MUTUAL``        info      member of a mutual-recursion group; the
                              single-function verifier does not apply
``V-NO-SCHEDULE``   error     no valid schedule exists (or the user's
                              declared schedule is invalid)
``V-FRONTEND``      error     the script did not parse or type-check
``A-OOB-TABLE``     error     a table read can land outside the box
``A-OOB-SEQ``       error     a sequence read can land outside the
                              sequence
``A-RBW``           error     a guarded read the schedule does not
                              order after its write
``A-DEAD-ARM``      warning   an equation arm no point of the box can
                              reach
``A-UNUSED-PARAM``  warning   a calling parameter the body never reads
``S-POISON-READ``   error     runtime: a cell was read while poisoned
``S-PART-OVERLAP``  error     runtime: a cell read and written in the
                              same partition (an intra-partition race)
``S-PART-MISMATCH`` error     runtime: a cell written outside its
                              schedule partition
``S-OOB``           error     runtime: an index left the table or a
                              sequence
``S-WRITE-MISS``    error     runtime: a domain cell was never written
==================  ========  =========================================

Parallel-safety rules (:mod:`repro.verify.races`) and backend
eligibility join the same registry; the authoritative machine-readable
table is :data:`RULES` below — ``python -m repro lint --list-rules``
prints it, and fuzz campaign reports count which rules a campaign
actually exercised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..lang.source import SourceText, Span

#: Every stable rule identifier, with the severity its pass reports it
#: at and a one-line description. Append-only: tests, CI budgets and
#: campaign coverage reports key on these names.
RULES: Dict[str, Tuple[str, str]] = {
    # -- schedule soundness (repro.verify.soundness) ------------------
    "V-SCHED-DELTA": ("error", "a call site's S(x) - S(r(x)) is not provably positive over the domain box"),
    "V-SCHED-CERT": ("info", "positive schedule certificate: partition count + minimum delta per call site"),
    "V-MUTUAL": ("info", "member of a mutual-recursion group; outside the single-function verifier's scope"),
    "V-NO-SCHEDULE": ("error", "no valid schedule exists (or the declared schedule is invalid)"),
    "V-FRONTEND": ("error", "the script did not parse or type-check"),
    # -- static access analysis (repro.verify.access) -----------------
    "A-OOB-TABLE": ("error", "a table read can land outside the domain box"),
    "A-OOB-SEQ": ("error", "a sequence read can land outside the sequence"),
    "A-RBW": ("error", "a guarded read the schedule does not order after its write"),
    "A-DEAD-ARM": ("warning", "an equation arm no point of the box can reach"),
    "A-UNUSED-PARAM": ("warning", "a calling parameter the body never reads"),
    # -- parallel-safety certificates (repro.verify.races) ------------
    "R-SPACE-WW": ("warning", "same-partition writes not provably disjoint; space-loop pragma withheld"),
    "R-SPACE-RW": ("warning", "a same-partition read/write pair is feasible; space-loop pragma withheld"),
    "R-BATCH-OVERLAP": ("warning", "batched member slices (or shared columns) not provably disjoint; problem-loop pragma withheld"),
    "R-RING-COLLIDE": ("warning", "two live ring-buffer rows can collide; windowed entry withheld"),
    "R-PAR-CERT": ("info", "positive parallel-safety certificate: every applicable axis proved race-free"),
    # -- runtime sanitizer (repro.verify.sanitizer) -------------------
    "S-POISON-READ": ("error", "runtime: a cell was read while poisoned"),
    "S-PART-OVERLAP": ("error", "runtime: a cell read and written in the same partition (intra-partition race)"),
    "S-PART-MISMATCH": ("error", "runtime: a cell written outside its schedule partition"),
    "S-OOB": ("error", "runtime: an index left the table or a sequence"),
    "S-WRITE-MISS": ("error", "runtime: a domain cell was never written"),
    # -- backend eligibility (repro.ir.npbackend / cbackend /
    # runtime.native Eligibility.rule codes; the engine quotes the
    # failed code in [brackets] when a forced backend is refused) ----
    "rank": ("info", "eligibility: the vector/batched backend only renders rank-1/2 nests"),
    "nest-shape": ("info", "eligibility: the loop nest shape has no vector/batched rendering"),
    "cross-table-read": ("info", "eligibility: the body reads another function's table"),
    "codegen": ("info", "eligibility: the C emitter cannot render the kernel body"),
    "no-compiler": ("info", "eligibility: no working C compiler on this host"),
    "disabled": ("info", "eligibility: native backend disabled by REPRO_NATIVE_DISABLE"),
    "ok": ("info", "eligibility: the backend accepts the kernel"),
    "ok-plain-body": ("info", "eligibility: batched via the plain (non-windowed) body"),
    "ok-batched": ("info", "eligibility: the batched native entry accepts the kernel"),
}


class Severity:
    """Severity levels, ordered; plain strings so records stay JSON-able."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    ALL = (ERROR, WARNING, INFO)


@dataclass(frozen=True)
class Diagnostic:
    """One verifier finding.

    ``exact`` records whether the underlying analysis proved the
    finding over the integer points (enumeration / corner argument) or
    only over the LP relaxation — inexact findings are reported one
    severity softer by the passes that produce them.
    """

    severity: str  # Severity.ERROR | WARNING | INFO
    rule: str
    message: str
    span: Optional[Span] = None
    function: Optional[str] = None
    exact: bool = True

    def render(self, source: Optional[SourceText] = None) -> str:
        """Caret-render against ``source`` when the span allows it."""
        prefix = f"{self.severity}[{self.rule}]"
        body = (
            f"{prefix}: {self.function}: {self.message}"
            if self.function
            else f"{prefix}: {self.message}"
        )
        if source is not None and self.span is not None:
            return source.render(self.span, body)
        return body

    def to_dict(self) -> dict:
        """A JSON-safe record (spans flattened to line/column)."""
        record = {
            "severity": self.severity,
            "rule": self.rule,
            "message": self.message,
            "function": self.function,
            "exact": self.exact,
        }
        if self.span is not None:
            record["line"] = self.span.start.line
            record["column"] = self.span.start.column
        return record


@dataclass
class Report:
    """An ordered collection of diagnostics from one or more passes."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        """Append one finding."""
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        """Append many findings."""
        self.diagnostics.extend(diagnostics)

    @property
    def has_errors(self) -> bool:
        """Does any finding have error severity?"""
        return any(
            d.severity == Severity.ERROR for d in self.diagnostics
        )

    def by_severity(self, severity: str) -> Tuple[Diagnostic, ...]:
        """All findings at exactly ``severity``."""
        return tuple(
            d for d in self.diagnostics if d.severity == severity
        )

    def render(self, source: Optional[SourceText] = None) -> str:
        """Render every finding, carets included, one per block."""
        return "\n".join(
            d.render(source) for d in self.diagnostics
        )

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)
