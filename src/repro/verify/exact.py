"""Exact integer min/max of affine functions over constrained boxes.

This is the verifier's arithmetic core, written independently of
:func:`repro.analysis.criteria.min_affine_over_box` (which feeds the
schedule *solver*): the unconstrained case enumerates the box vertices
outright instead of using the per-term corner shortcut, and the
constrained case prefers exact integer enumeration, falling back to an
LP relaxation only when the region is too large — and then rounding
the bound up, which is sound because affine functions with integer
coefficients take integer values at integer points.

All functions speak :class:`~repro.analysis.affine.Affine` (the shared
*representation* — the proofs are what must not be shared) and treat a
constraint ``c`` as ``c(x) >= 0``.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Iterable, Mapping, NamedTuple, Optional, Sequence, Tuple

from ..analysis.affine import Affine

#: Enumerate the integer region exactly when it has at most this many
#: points; beyond it, fall back to the LP relaxation.
ENUMERATION_CAP = 200_000


class MinResult(NamedTuple):
    """Outcome of a constrained minimisation.

    ``value is None`` means the region is provably empty (LP
    infeasibility implies integer infeasibility, so emptiness is
    always exact). ``exact`` is False when ``value`` is only the
    rounded LP lower bound. ``witness`` is an integer point attaining
    the minimum when enumeration found one.
    """

    value: Optional[float]
    exact: bool
    witness: Optional[Dict[str, int]] = None

    @property
    def empty(self) -> bool:
        """Is the constrained region provably empty?"""
        return self.value is None


def _used_names(
    objective: Affine, constraints: Sequence[Affine]
) -> Tuple[str, ...]:
    names = set(objective.dims())
    for con in constraints:
        names.update(con.dims())
    return tuple(sorted(names))


def _bounds_of(
    names: Iterable[str],
    extents: Mapping[str, int],
    var_bounds: Optional[Mapping[str, Tuple[int, int]]],
) -> Optional[Dict[str, Tuple[int, int]]]:
    """Inclusive integer bounds per variable; None when any is empty."""
    bounds: Dict[str, Tuple[int, int]] = {}
    for name in names:
        if var_bounds is not None and name in var_bounds:
            lo, hi = var_bounds[name]
        else:
            lo, hi = 0, extents[name] - 1
        if hi < lo:
            return None
        bounds[name] = (lo, hi)
    return bounds


def corner_values(
    affine: Affine, bounds: Mapping[str, Tuple[int, int]]
) -> Iterable[int]:
    """``affine`` evaluated at every vertex of the (bounded) box."""
    names = [n for n in affine.dims() if n in bounds]
    if not names:
        yield affine.const
        return
    for choice in itertools.product(
        *[bounds[n] for n in names]
    ):
        yield affine.evaluate(dict(zip(names, choice)))


def vertex_min(
    affine: Affine,
    extents: Mapping[str, int],
    var_bounds: Optional[Mapping[str, Tuple[int, int]]] = None,
) -> Optional[int]:
    """Exact unconstrained minimum over box vertices; None if empty."""
    bounds = _bounds_of(affine.dims(), extents, var_bounds)
    if bounds is None:
        return None
    return min(corner_values(affine, bounds))


def vertex_max(
    affine: Affine,
    extents: Mapping[str, int],
    var_bounds: Optional[Mapping[str, Tuple[int, int]]] = None,
) -> Optional[int]:
    """Exact unconstrained maximum over box vertices; None if empty."""
    bounds = _bounds_of(affine.dims(), extents, var_bounds)
    if bounds is None:
        return None
    return max(corner_values(affine, bounds))


def constrained_min(
    objective: Affine,
    extents: Mapping[str, int],
    constraints: Sequence[Affine] = (),
    var_bounds: Optional[Mapping[str, Tuple[int, int]]] = None,
    cap: int = ENUMERATION_CAP,
) -> MinResult:
    """``min objective(x)`` over integer box points with ``c(x) >= 0``.

    ``var_bounds`` overrides the default ``0 <= v < extents[v]`` range
    for selected variables (range binders live outside the dimension
    box). Every variable mentioned by the objective or a constraint
    must have a range one way or the other.
    """
    names = _used_names(objective, constraints)
    bounds = _bounds_of(names, extents, var_bounds)
    if bounds is None:
        return MinResult(None, True)
    if not names:
        for con in constraints:
            if con.const < 0:
                return MinResult(None, True)
        return MinResult(float(objective.const), True, {})

    # Quick necessary condition: a constraint whose vertex maximum is
    # negative can never be satisfied.
    for con in constraints:
        if max(corner_values(con, bounds)) < 0:
            return MinResult(None, True)

    if not constraints:
        # Affine => extremised at a vertex: enumerate the vertices.
        best = None
        witness = None
        obj_names = [n for n in objective.dims() if n in bounds]
        if not obj_names:
            return MinResult(float(objective.const), True, {})
        for choice in itertools.product(
            *[bounds[n] for n in obj_names]
        ):
            point = dict(zip(obj_names, choice))
            value = objective.evaluate(point)
            if best is None or value < best:
                best, witness = value, point
        return MinResult(float(best), True, witness)

    points = 1
    for lo, hi in bounds.values():
        points *= hi - lo + 1
        if points > cap:
            break
    if points <= cap:
        best = None
        witness = None
        for choice in itertools.product(
            *[range(lo, hi + 1) for lo, hi in bounds.values()]
        ):
            point = dict(zip(bounds.keys(), choice))
            if any(con.evaluate(point) < 0 for con in constraints):
                continue
            value = objective.evaluate(point)
            if best is None or value < best:
                best, witness = value, point
        if best is None:
            return MinResult(None, True)
        return MinResult(float(best), True, witness)

    return _lp_min(objective, constraints, bounds)


def _lp_min(
    objective: Affine,
    constraints: Sequence[Affine],
    bounds: Mapping[str, Tuple[int, int]],
) -> MinResult:
    """LP-relaxation lower bound, rounded up to the integer lattice.

    The relaxation's minimum is <= the integer minimum; because the
    objective is integer-valued at integer points, ``ceil`` of the LP
    value is still a valid lower bound. LP infeasibility is exact
    (the relaxation contains every integer point).
    """
    from scipy.optimize import linprog

    names = sorted(bounds)
    cost = [objective.coefficient(n) for n in names]
    a_ub = [[-con.coefficient(n) for n in names] for con in constraints]
    b_ub = [float(con.const) for con in constraints]
    box = [
        (float(bounds[n][0]), float(bounds[n][1])) for n in names
    ]
    result = linprog(
        cost, A_ub=a_ub, b_ub=b_ub, bounds=box, method="highs"
    )
    if result.status == 2:  # infeasible
        return MinResult(None, True)
    if not result.success:
        # Unbounded/other failures cannot happen on a box, but never
        # let the verifier claim soundness it did not prove.
        return MinResult(float("-inf"), False)
    value = float(result.fun) + objective.const
    return MinResult(float(math.ceil(value - 1e-9)), False)


def feasible(
    constraints: Sequence[Affine],
    extents: Mapping[str, int],
    var_bounds: Optional[Mapping[str, Tuple[int, int]]] = None,
    cap: int = ENUMERATION_CAP,
) -> MinResult:
    """Is there an integer box point satisfying every constraint?

    Returns a :class:`MinResult` whose ``value`` is None when the
    region is empty; when non-empty and found by enumeration,
    ``witness`` holds one satisfying point and ``exact`` is True. An
    inexact non-empty result means only the LP relaxation is feasible
    — the integer region *may* still be empty.
    """
    return constrained_min(
        Affine.constant(0), extents, constraints,
        var_bounds=var_bounds, cap=cap,
    )
