"""Whole-program lint: schedule verification + access analysis.

``lint_text`` is the compiler-independent front door used by
``python -m repro lint`` and by the service's admission control. It
parses and type-checks a script, then for every recurrence:

* derives (or validates the user-declared) schedule and hands it to
  the independent soundness verifier of :mod:`repro.verify.soundness`;
* runs the IR access/initialization analysis of
  :mod:`repro.verify.access` against a **nominal domain** — extents
  are unknown until run time, so every recursion dimension gets the
  same symbolic stand-in extent ``L + 1`` (default ``L = 12``). The
  coupling matters: sequence-indexed dimensions and their sequences
  share ``L``, so ``s[i - 1]`` under ``i >= 1`` does not produce a
  spurious out-of-bounds finding.

Functions in a mutually recursive group are outside the scope of the
single-function verifier (their schedules come from
:mod:`repro.schedule.mutual_rec`); lint marks them ``V-MUTUAL`` (info)
and still runs the access pass, which needs no schedule for its
bounds and dead-arm checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.domain import Domain
from ..ir.kernel import build_kernel
from ..lang import ast
from ..lang.errors import AnalysisError, DslError, ScheduleError
from ..lang.parser import parse_program
from ..lang.source import SourceText
from ..lang.typecheck import CheckedProgram, check_program
from ..schedule.schedule import validate_user_schedule
from ..schedule.solver import find_schedule
from .access import analyze_access
from .diagnostics import Diagnostic, Report, Severity
from .races import ParallelismCertificate, analyze_parallelism
from .soundness import ScheduleCertificate, verify_schedule

#: Default nominal extent parameter ``L``: recursion dimensions get
#: extent ``L + 1`` (an index over a length-``L`` sequence spans
#: ``0..L`` inclusive).
NOMINAL_EXTENT = 12


@dataclass
class LintResult:
    """Everything one lint run produced."""

    report: Report
    certificates: Dict[str, ScheduleCertificate] = field(
        default_factory=dict
    )
    parallelism: Dict[str, "ParallelismCertificate"] = field(
        default_factory=dict
    )
    source: Optional[SourceText] = None

    @property
    def has_errors(self) -> bool:
        """Did any pass report an error-severity diagnostic?"""
        return self.report.has_errors

    def render(self) -> str:
        """All diagnostics, caret-rendered where spans are known."""
        return self.report.render(self.source)


def _nominal_domain(func, nominal_extent: int) -> Domain:
    """The stand-in domain for a function of unknown problem size."""
    return Domain(
        func.dim_names,
        tuple(nominal_extent + 1 for _ in func.dim_names),
    )


def _mutual_members(program: CheckedProgram) -> Tuple[str, ...]:
    """Names of functions that call (or are called by) another one."""
    members = set()
    for name, func in program.functions.items():
        for node in ast.walk(func.body):
            if (
                isinstance(node, ast.Call)
                and node.func != name
                and node.func in program.functions
            ):
                members.add(name)
                members.add(node.func)
    return tuple(sorted(members))


def lint_checked(
    program: CheckedProgram,
    nominal_extent: int = NOMINAL_EXTENT,
    prob_mode: str = "direct",
    source: Optional[SourceText] = None,
) -> LintResult:
    """Lint an already-checked program."""
    result = LintResult(Report(), source=source)
    mutual = set(_mutual_members(program))

    for name in sorted(program.functions):
        func = program.functions[name]
        if not func.recursive_params:
            # Not a recurrence: nothing to schedule, nothing to read
            # out of order. The access pass still applies (sequence
            # bounds), but without recursion dimensions there is no
            # domain box to analyse against.
            continue
        domain = _nominal_domain(func, nominal_extent)

        if name in mutual:
            result.report.add(Diagnostic(
                Severity.INFO, "V-MUTUAL",
                "member of a mutually recursive group; scheduled by "
                "the multi-function pipeline, not verified here",
                span=func.definition.span, function=name,
            ))
            result.report.extend(
                analyze_access(func, domain, prob_mode=prob_mode)
            )
            continue

        schedule = None
        user_expr = program.schedules.get(name)
        try:
            if user_expr is not None:
                schedule = validate_user_schedule(
                    func, user_expr, domain
                )
            else:
                schedule = find_schedule(func, domain)
        except (ScheduleError, AnalysisError) as err:
            result.report.add(Diagnostic(
                Severity.ERROR, "V-NO-SCHEDULE",
                f"no valid schedule: {err.message}",
                span=err.span or func.definition.span, function=name,
            ))

        if schedule is not None:
            certificate, diagnostics = verify_schedule(
                func, schedule, domain
            )
            result.certificates[name] = certificate
            result.report.extend(diagnostics)

        result.report.extend(
            analyze_access(
                func, domain, schedule=schedule, prob_mode=prob_mode
            )
        )

        if schedule is not None:
            # Parallel-safety certificates (the OpenMP-axis proofs):
            # refusals are warnings — the native build degrades the
            # axis to serial rather than rejecting the program.
            try:
                kernel = build_kernel(
                    func, schedule, prob_mode=prob_mode
                )
                parallel = analyze_parallelism(
                    kernel, extents=domain.extents
                )
            except (DslError, AnalysisError):
                parallel = None
            if parallel is not None:
                result.parallelism[name] = parallel
                result.report.extend(
                    parallel.diagnostics(span=func.definition.span)
                )
    return result


def lint_text(
    text: str,
    name: str = "<lint>",
    nominal_extent: int = NOMINAL_EXTENT,
    prob_mode: str = "direct",
) -> LintResult:
    """Parse, check and lint a script's text.

    Parse/type errors are reported as ``error`` diagnostics (rule
    ``V-FRONTEND``) rather than raised, so callers get one uniform
    report whatever stage failed.
    """
    source = SourceText(text, name)
    try:
        program = check_program(parse_program(text))
    except DslError as err:
        result = LintResult(Report(), source=source)
        result.report.add(Diagnostic(
            Severity.ERROR, "V-FRONTEND", err.message, span=err.span
        ))
        return result
    return lint_checked(
        program, nominal_extent=nominal_extent,
        prob_mode=prob_mode, source=source,
    )
