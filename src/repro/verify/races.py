"""Static parallel-safety analysis of compiled kernels.

The native backend parallelises two axes with OpenMP — the space loop
over a partition's cells and the batched entry's problem loop — and
the Section 4.8 ring buffer additionally relies on no two *live* rows
colliding. Until this pass existed, those claims were comments in
:mod:`repro.ir.cbackend`; here they are re-proved per kernel, in the
same independent-verifier discipline as
:mod:`repro.verify.soundness`, and the emitter refuses to emit a
pragma on any axis without a CONFIRMED verdict.

Three obligations, three stable rules:

* **space** (``R-SPACE-WW`` / ``R-SPACE-RW``) — cells of one
  partition are mutually independent. Writes are disjoint because
  every cell stores to its own coordinates (the loop nest's store map
  is the identity — checked structurally, not assumed). Reads are
  proved strictly earlier: for every own-table read ``r(x)`` under
  its DNF path condition, the region ``path /\\ in-box(r(x)) /\\
  S(r(x)) >= S(x)`` must be infeasible (the access pass's ``A-RBW``
  region, re-derived here from symbolic read footprints).
* **batch** (``R-BATCH-OVERLAP``) — members of a batched launch write
  disjoint pad-stride slices. With every access inside the member's
  box and ``pad_d >= extent_d`` per dimension (which
  :func:`repro.runtime.batching.pack_group` establishes by padding to
  the group maxima), the row-major index is at most
  ``prod(pad) - 1``, so slice ``b`` never reaches slice ``b + 1``.
  The ``(B,)``-shaped bound/sequence/scalar columns must marshal
  read-only (``const`` in the batched parameter spec).
* **ring** (``R-RING-COLLIDE``) — the windowed entry keeps
  ``window + 1`` partitions resident. No feasible read may look back
  more than ``window`` partitions (maximised exactly per footprint),
  no live partition delta may alias a ring row (``delta % rows == 0``
  for ``0 < delta <= window``), and the ring column must be injective
  within a partition (every non-column dimension needs a nonzero
  schedule coefficient, else ``R-SPACE-WW``: two cells of one
  partition would share a slot).

Index components the affine abstraction cannot express (opaque
transition binders) are treated as *free*: a fresh variable spanning
the whole dimension extent stands in, which over-approximates the
footprint — a CONFIRMED verdict therefore holds for every value the
runtime can marshal. Free components do not break box membership
(state-typed values are dimension-valid by the marshalling contract,
the same stance the access pass takes).

The analyzer accepts mutation knobs (``window``, ``window_col``,
``ring_rows``, ``pad_extents``) so tests can perturb a proved-safe
kernel into a racy one and watch the matching rule fire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..analysis.affine import Affine
from ..analysis.domain import Domain
from ..ir import expr as ir
from ..ir.kernel import Kernel
from ..polyhedral import loopast
from .access import _Analyzer
from .diagnostics import Diagnostic, Severity
from .exact import constrained_min, feasible

__all__ = [
    "CONFIRMED",
    "REFUSED",
    "NOT_APPLICABLE",
    "AxisVerdict",
    "ParallelismCertificate",
    "ReadFootprint",
    "analyze_parallelism",
    "collect_read_footprints",
    "parallelism_certificate",
]

#: Axis verdict states. ``CONFIRMED`` is the only state that permits
#: a pragma; ``NOT_APPLICABLE`` means the axis does not exist for the
#: kernel (e.g. no ring buffer without a constant window).
CONFIRMED = "confirmed"
REFUSED = "refused"
NOT_APPLICABLE = "not-applicable"

#: Nominal per-dimension extent for certificates of symbolic kernels
#: (mirrors lint's stand-in domain: extents are unknown until run
#: time; uniform-descent conclusions are box-size-independent).
NOMINAL_EXTENT = 12


@dataclass(frozen=True)
class AxisVerdict:
    """One parallel axis's verdict.

    ``witness`` is the worst-case point (variable assignment) behind
    a refusal, when the exact minimiser produced one; ``exact`` is
    False when only the LP relaxation supported the refusal (still a
    refusal — the verifier never parallelises on a maybe).
    """

    axis: str  # "space" | "batch" | "ring"
    status: str  # CONFIRMED | REFUSED | NOT_APPLICABLE
    detail: str
    rule: Optional[str] = None
    witness: Optional[Dict[str, int]] = None
    exact: bool = True

    @property
    def confirmed(self) -> bool:
        """May the emitter parallelise this axis?"""
        return self.status == CONFIRMED

    def to_dict(self) -> dict:
        """A JSON-safe record (the ``explain --json`` shape)."""
        record = {
            "axis": self.axis,
            "status": self.status,
            "detail": self.detail,
        }
        if self.rule is not None:
            record["rule"] = self.rule
        if self.witness is not None:
            record["witness"] = {
                k: int(v) for k, v in sorted(self.witness.items())
            }
        if not self.exact:
            record["exact"] = False
        return record


@dataclass(frozen=True)
class ParallelismCertificate:
    """Per-axis parallel-safety verdicts for one kernel."""

    function: str
    schedule: str
    extents: Tuple[int, ...]
    space: AxisVerdict
    batch: AxisVerdict
    ring: AxisVerdict

    @property
    def axes(self) -> Tuple[AxisVerdict, ...]:
        """All three axis verdicts, in report order."""
        return (self.space, self.batch, self.ring)

    @property
    def ok(self) -> bool:
        """No axis refused (not-applicable axes do not count)."""
        return all(a.status != REFUSED for a in self.axes)

    @property
    def summary(self) -> str:
        """One-line verdict, e.g. ``space=confirmed batch=confirmed
        ring=not-applicable`` (refused axes carry their rule)."""
        parts = []
        for axis in self.axes:
            text = f"{axis.axis}={axis.status}"
            if axis.status == REFUSED and axis.rule:
                text += f"[{axis.rule}]"
            parts.append(text)
        return " ".join(parts)

    def to_dict(self) -> dict:
        """A JSON-safe record (the ``explain --json`` shape)."""
        return {
            "function": self.function,
            "schedule": self.schedule,
            "ok": self.ok,
            "space": self.space.to_dict(),
            "batched": self.batch.to_dict(),
            "ring": self.ring.to_dict(),
        }

    def diagnostics(self, span=None) -> List[Diagnostic]:
        """The certificate as verifier findings.

        A refused axis is a *warning*, not an error: the kernel stays
        correct — the native build simply degrades that axis to
        serial. A fully clean certificate reports one ``R-PAR-CERT``
        info line (the positive certificate, like ``V-SCHED-CERT``).
        """
        findings: List[Diagnostic] = []
        for axis in self.axes:
            if axis.status != REFUSED:
                continue
            message = (
                f"parallel axis {axis.axis!r} refused: {axis.detail}"
            )
            if axis.witness:
                point = ", ".join(
                    f"{k}={v}" for k, v in sorted(axis.witness.items())
                )
                message += f" (witness {point})"
            findings.append(Diagnostic(
                Severity.WARNING, axis.rule or "R-SPACE-RW",
                message, span=span, function=self.function,
                exact=axis.exact,
            ))
        if not findings:
            findings.append(Diagnostic(
                Severity.INFO, "R-PAR-CERT",
                f"parallel-safety certificate: {self.summary}",
                span=span, function=self.function,
            ))
        return findings


@dataclass(frozen=True)
class ReadFootprint:
    """One own-table read's symbolic footprint.

    ``indices`` holds one affine per dimension, or ``None`` for a
    free (opaque-binder) component; ``dnf`` is the path condition the
    read sits under; ``var_bounds`` are the range-binder bounds in
    scope at the read.
    """

    indices: Tuple[Optional[Affine], ...]
    dnf: Tuple[Tuple[Affine, ...], ...]
    var_bounds: Tuple[Tuple[str, Tuple[int, int]], ...]


class _FootprintCollector(_Analyzer):
    """An access-analysis walk that records own-table read footprints
    instead of reporting diagnostics (bounds and dead arms are the
    access pass's business; this pass only needs the regions)."""

    def __init__(self, func, domain: Domain) -> None:
        super().__init__(func, domain, schedule=None, span_map={})
        self.reads: List[ReadFootprint] = []

    def _check_table_read(self, node: ir.TableRead, dnf) -> None:
        if node.table:
            return  # cross-table reads have no native rendering
        self.reads.append(ReadFootprint(
            tuple(self._affine_of(i) for i in node.indices),
            tuple(tuple(conj) for conj in dnf),
            tuple(sorted(self._var_bounds().items())),
        ))

    def _check_seq_read(self, node: ir.SeqRead, dnf) -> None:
        pass

    def _dead_arm(self, branch, select, label) -> None:
        pass


def collect_read_footprints(
    kernel: Kernel, domain: Domain
) -> List[ReadFootprint]:
    """Symbolic own-table read footprints of the lowered cell body."""
    collector = _FootprintCollector(kernel.func, domain)
    collector.walk(kernel.body.cell, [()])
    return collector.reads


def _nominal_domain(kernel: Kernel, extents=None) -> Domain:
    if extents is None:
        extents = tuple(NOMINAL_EXTENT + 1 for _ in kernel.dims)
    return Domain(kernel.dims, tuple(int(e) for e in extents))


def _identity_store(kernel: Kernel) -> bool:
    """Does every loop-nest leaf store to the cell's own coordinates?

    The emitters write ``T[x0, ..., xn]`` at the nest's ``Stmt``
    leaves with the dimension variables themselves; disjointness of
    same-partition writes follows because the identity map is
    injective. This re-checks the structural premise instead of
    trusting it: every dimension must be bound (a loop variable or an
    affine assign) on the path to each leaf, and each leaf must be a
    plain ``Stmt`` (any other store shape would void the argument).
    """
    dims = set(kernel.dims)

    def walk(nodes, bound) -> bool:
        for node in nodes:
            if isinstance(node, loopast.Loop):
                if not walk(node.body, bound | {node.var}):
                    return False
            elif isinstance(node, loopast.Assign):
                if not walk(node.body, bound | {node.var}):
                    return False
            elif isinstance(node, loopast.Guard):
                if not walk(node.body, bound):
                    return False
            elif isinstance(node, loopast.Stmt):
                if not dims <= bound:
                    return False
            else:
                return False
        return True

    bound = {kernel.nest.time_var}
    return walk(kernel.nest.roots, bound)


def _footprint_region(
    footprint: ReadFootprint,
    kernel: Kernel,
    extents: Mapping[str, int],
) -> Tuple[List[Affine], Dict[str, Tuple[int, int]], Affine]:
    """One footprint's in-box constraints, variable bounds and
    partition delta ``S(x) - S(r(x))``.

    Free components become fresh ``_free<k>`` variables spanning the
    whole dimension (a sound over-approximation of any marshalled
    value). The returned constraints do **not** include the path
    condition — callers conjoin per disjunct.
    """
    bounds: Dict[str, Tuple[int, int]] = dict(footprint.var_bounds)
    in_box: List[Affine] = []
    substitution: Dict[str, Affine] = {}
    for k, (dim, idx) in enumerate(
        zip(kernel.dims, footprint.indices)
    ):
        if idx is None:
            name = f"_free{k}"
            bounds[name] = (0, extents[dim] - 1)
            idx = Affine.variable(name)
        else:
            in_box.append(idx)  # idx >= 0
            in_box.append(
                Affine.constant(extents[dim] - 1) - idx
            )
        substitution[dim] = idx
    schedule = kernel.schedule.affine
    delta = schedule - schedule.substitute(substitution)
    return in_box, bounds, delta


def _space_axis(
    kernel: Kernel,
    domain: Domain,
    footprints: Sequence[ReadFootprint],
) -> AxisVerdict:
    """Intra-partition disjointness: the space-loop ``parallel for``."""
    if not _identity_store(kernel):
        return AxisVerdict(
            "space", REFUSED,
            "the loop nest's store map is not the identity on the "
            "cell coordinates; same-partition writes cannot be "
            "proved disjoint",
            rule="R-SPACE-WW",
        )
    extents = domain.extent_map()
    for footprint in footprints:
        in_box, bounds, delta = _footprint_region(
            footprint, kernel, extents
        )
        # A same-or-later-partition read: S(x) - S(r(x)) <= 0.
        late = Affine.constant(0) - delta
        lp_only = False
        for conj in footprint.dnf or ((),):
            result = feasible(
                tuple(conj) + tuple(in_box) + (late,),
                extents, bounds,
            )
            if result.empty:
                continue
            if result.exact:
                return AxisVerdict(
                    "space", REFUSED,
                    "a feasible in-box read is not ordered strictly "
                    "before its write by the schedule; two cells of "
                    "one partition would race",
                    rule="R-SPACE-RW",
                    witness=result.witness,
                )
            lp_only = True
        if lp_only:
            return AxisVerdict(
                "space", REFUSED,
                "the LP relaxation admits a same-partition read; "
                "refusing the pragma without an integer proof",
                rule="R-SPACE-RW", exact=False,
            )
    return AxisVerdict(
        "space", CONFIRMED,
        "identity store map and every own-table read proved "
        "strictly earlier under the schedule "
        f"({len(footprints)} footprint(s))",
    )


def _batch_axis(
    kernel: Kernel,
    domain: Domain,
    footprints: Sequence[ReadFootprint],
    pad_extents: Optional[Sequence[int]] = None,
) -> AxisVerdict:
    """Batched-entry slice disjointness: the problem-loop pragma."""
    extents = domain.extent_map()
    # Mutation knob / pack-time re-check: concrete pads must cover
    # the member extents, else slice b's top row aliases slice b+1.
    if pad_extents is not None:
        for dim, pad in zip(kernel.dims, pad_extents):
            if int(pad) < extents[dim]:
                return AxisVerdict(
                    "batch", REFUSED,
                    f"padded extent {int(pad)} of dimension "
                    f"{dim!r} is smaller than the member extent "
                    f"{extents[dim]}; member slices overlap",
                    rule="R-BATCH-OVERLAP",
                    witness={dim: int(pad)},
                )
    # (B,)-shaped context columns must marshal read-only: every
    # non-table pointer of the batched spec is const-qualified.
    from ..ir.cbackend import native_batched_param_spec

    try:
        spec = native_batched_param_spec(kernel)
    except Exception as err:  # no batched rendering: nothing to prove
        return AxisVerdict(
            "batch", NOT_APPLICABLE,
            f"no batched parameter spec: {err}",
        )
    for param in spec:
        if param.kind == "table":
            continue
        if "*" in param.ctext and "const" not in param.ctext:
            return AxisVerdict(
                "batch", REFUSED,
                f"batched parameter {param.name!r} is a mutable "
                f"pointer ({param.ctext}); shared columns must be "
                f"read-only inside the problem loop",
                rule="R-BATCH-OVERLAP",
            )
    # Every access must stay inside the member's own box: an escaping
    # affine index could land in a neighbour's pad-stride slice.
    lp_only = False
    for footprint in footprints:
        for k, (dim, idx) in enumerate(
            zip(kernel.dims, footprint.indices)
        ):
            if idx is None:
                continue  # free: dimension-valid by marshalling
            bounds = dict(footprint.var_bounds)
            for escape in (
                Affine.constant(-1) - idx,  # idx <= -1
                idx - Affine.constant(extents[dim]),  # idx >= extent
            ):
                for conj in footprint.dnf or ((),):
                    result = feasible(
                        tuple(conj) + (escape,), extents, bounds
                    )
                    if result.empty:
                        continue
                    if result.exact:
                        return AxisVerdict(
                            "batch", REFUSED,
                            f"a read's {dim!r} index can leave the "
                            f"member box on a feasible path; the "
                            f"linearised access may cross into a "
                            f"neighbouring member's slice",
                            rule="R-BATCH-OVERLAP",
                            witness=result.witness,
                        )
                    lp_only = True
    if lp_only:
        return AxisVerdict(
            "batch", REFUSED,
            "the LP relaxation admits an out-of-box access; "
            "refusing the problem-loop pragma without an integer "
            "proof",
            rule="R-BATCH-OVERLAP", exact=False,
        )
    return AxisVerdict(
        "batch", CONFIRMED,
        "every access stays inside the member box and the context "
        "columns marshal read-only; with pad_d >= extent_d (the "
        "pack_group invariant) the row-major index is bounded by "
        "prod(pad) - 1, so pad-stride slices are disjoint",
    )


def _ring_axis(
    kernel: Kernel,
    domain: Domain,
    footprints: Sequence[ReadFootprint],
    window: Optional[int] = None,
    window_col: Optional[int] = None,
    ring_rows: Optional[int] = None,
) -> AxisVerdict:
    """Windowed ring-buffer safety (Section 4.8)."""
    if window is None:
        window = kernel.window
    if window is None or window < 1 or kernel.rank != 2:
        return AxisVerdict(
            "ring", NOT_APPLICABLE,
            "no ring buffer: the kernel has no constant non-zero "
            "window over a 2-D nest",
        )
    rows = int(ring_rows) if ring_rows is not None else window + 1
    # Live-row aliasing: two partitions at distance 0 < delta <=
    # window are resident together; they collide when delta is a
    # multiple of the row count. rows = window + 1 excludes every
    # such delta; a shrunk ring does not.
    for delta in range(1, window + 1):
        if delta % rows == 0:
            return AxisVerdict(
                "ring", REFUSED,
                f"partitions at distance {delta} are live together "
                f"but share ring row {delta % rows} of {rows}; the "
                f"ring needs window + 1 = {window + 1} rows",
                rule="R-RING-COLLIDE",
                witness={"delta": delta},
            )
    # Column injectivity inside one partition: the ring addresses a
    # cell by (partition mod rows, x[window_col]), so every *other*
    # dimension must be determined by the partition — a zero
    # coefficient there leaves two cells of one partition sharing a
    # slot (a write-write collision).
    if window_col is None:
        from ..ir.c_expr import CCellEmitter

        window_col = CCellEmitter(kernel, windowed=True).window_col
    for k, coeff in enumerate(kernel.schedule.coefficients):
        if k == int(window_col):
            continue
        if coeff == 0:
            return AxisVerdict(
                "ring", REFUSED,
                f"dimension {kernel.dims[k]!r} has schedule "
                f"coefficient 0 but is not the ring column; two "
                f"cells of one partition would share a ring slot",
                rule="R-SPACE-WW",
                witness={"dim": k},
            )
    # Look-back depth: the deepest feasible read distance
    # max S(x) - S(r(x)) must fit inside the resident window, else a
    # read lands on a row the ring has already overwritten.
    extents = domain.extent_map()
    deepest = 0
    exact = True
    for footprint in footprints:
        in_box, bounds, delta = _footprint_region(
            footprint, kernel, extents
        )
        for conj in footprint.dnf or ((),):
            result = constrained_min(
                Affine.constant(0) - delta,
                extents,
                tuple(conj) + tuple(in_box),
                var_bounds=bounds,
            )
            if result.empty:
                continue
            look_back = -int(result.value)
            if look_back > window:
                return AxisVerdict(
                    "ring", REFUSED,
                    f"a feasible read looks back {look_back} "
                    f"partition(s), past the resident window of "
                    f"{window}; its ring row has been overwritten",
                    rule="R-RING-COLLIDE",
                    witness=result.witness,
                    exact=result.exact,
                )
            deepest = max(deepest, look_back)
            exact = exact and result.exact
    return AxisVerdict(
        "ring", CONFIRMED,
        f"deepest feasible look-back {deepest} <= window {window}, "
        f"{rows} resident rows alias no live pair, and the ring "
        f"column is injective within a partition",
        exact=exact,
    )


def analyze_parallelism(
    kernel: Kernel,
    extents: Optional[Sequence[int]] = None,
    window: Optional[int] = None,
    window_col: Optional[int] = None,
    ring_rows: Optional[int] = None,
    pad_extents: Optional[Sequence[int]] = None,
) -> ParallelismCertificate:
    """Prove (or refuse) each parallel axis of ``kernel``.

    ``extents`` picks the analysis box (nominal stand-in when
    omitted, matching lint). The keyword knobs exist for mutation
    testing — they override the kernel's own window geometry and the
    pack-time padded extents so tests can turn a proved-safe kernel
    racy and assert the matching rule fires.
    """
    domain = _nominal_domain(kernel, extents)
    footprints = collect_read_footprints(kernel, domain)
    return ParallelismCertificate(
        function=kernel.name,
        schedule=str(kernel.schedule),
        extents=domain.extents,
        space=_space_axis(kernel, domain, footprints),
        batch=_batch_axis(
            kernel, domain, footprints, pad_extents=pad_extents
        ),
        ring=_ring_axis(
            kernel, domain, footprints,
            window=window, window_col=window_col, ring_rows=ring_rows,
        ),
    )


def parallelism_certificate(
    kernel: Kernel, extents: Optional[Sequence[int]] = None
) -> ParallelismCertificate:
    """Memoised :func:`analyze_parallelism` (no mutation knobs).

    The native backend consults the certificate on every emission and
    a lane-batched map group shares one kernel across every member,
    so the analysis runs once per (kernel instance, box) — the same
    idiom as :meth:`Kernel.referenced_names`.
    """
    key = tuple(int(e) for e in extents) if extents is not None else None
    cache = kernel.__dict__.setdefault("_parallelism_certs", {})
    hit = cache.get(key)
    if hit is None:
        hit = analyze_parallelism(kernel, extents)
        cache[key] = hit
    return hit
