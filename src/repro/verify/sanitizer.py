"""Runtime sanitizer: poison-filled execution with barrier checks.

The static passes prove what they can; this module checks the rest at
run time on the simulated device, the way a debug allocator would on
real hardware:

* tables start **poison-filled** (NaN for float tables, a large
  negative sentinel for int tables), so any cell consumed before the
  schedule wrote it is observable;
* the **scalar** backend gets an instrumented twin kernel (emitted by
  :func:`repro.ir.pybackend.compile_kernel` with ``sanitize=True``)
  that routes every access through a :class:`TableSanitizer`: poison
  reads, out-of-bounds indices, wrong-partition writes, and
  intra-partition read/write overlap all fail at the partition
  barrier that exposes them;
* the **vector** backend cannot intercept individual reads, so
  :func:`sanitized_partition_scan` steps the compiled kernel one
  partition at a time and scans the poison mask between partitions —
  NaN propagation turns any poison read into a poison *result* for
  float tables, and unwritten cells stay poison for both dtypes.

Resilience integration: when a fault injector is active, the same
observations raise :class:`~repro.resilience.faults.CellCorruption`
(a transient *device* fault the supervisor retries) instead of
:class:`~repro.lang.errors.SanitizerError` (a deterministic codegen or
schedule bug that must fail fast).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..analysis.domain import Domain
from ..lang.errors import SanitizerError
from ..resilience.faults import CellCorruption, FaultInjector, FaultSite
from ..schedule.schedule import Schedule
from .diagnostics import Diagnostic, Severity

#: Poison sentinel for int64 tables (NaN has no integer encoding).
#: Far outside any score a paper workload can produce.
POISON_INT = -(2 ** 62)


def poison_fill(table: np.ndarray) -> np.ndarray:
    """Fill ``table`` with the poison pattern for its dtype, in place."""
    if table.dtype.kind == "f":
        table.fill(np.nan)
    else:
        table.fill(POISON_INT)
    return table


def poison_mask(table: np.ndarray) -> np.ndarray:
    """Boolean mask of cells still holding the poison pattern."""
    if table.dtype.kind == "f":
        return np.isnan(table)
    return table == POISON_INT


def _is_poison_value(value) -> bool:
    if isinstance(value, float):
        return value != value  # NaN
    return value == POISON_INT


class TableSanitizer:
    """Access monitor for one sanitized scalar kernel execution.

    The instrumented kernel calls :meth:`barrier` when it enters each
    partition, :meth:`tread`/:meth:`sread` for every table/sequence
    read, :meth:`twrite` for every cell write and :meth:`finish` after
    the time loop. Violations raise immediately (reads, bounds) or at
    the barrier/final scan that exposes them (overlap, write misses);
    every finding is also recorded in :attr:`findings`.
    """

    def __init__(
        self,
        schedule: Schedule,
        domain: Domain,
        injector: Optional[FaultInjector] = None,
        site: Optional[FaultSite] = None,
    ) -> None:
        self.schedule = schedule
        self.domain = domain
        self.injector = injector
        self.site = site
        self.findings: List[Diagnostic] = []
        self._partition: Optional[int] = None
        self._reads: set = set()
        self._writes: set = set()

    # -- failure plumbing -----------------------------------------------------

    def _fail(self, rule: str, message: str) -> None:
        self.findings.append(
            Diagnostic(Severity.ERROR, rule, message)
        )
        text = f"[{rule}] {message}"
        if self.injector is not None:
            # A fault campaign is running: classify the observation as
            # device corruption so the resilience layer retries it.
            raise CellCorruption(text, self.site)
        raise SanitizerError(text)

    # -- kernel entry points --------------------------------------------------

    def barrier(self, partition: int) -> None:
        """Enter ``partition``: commit and check the previous one."""
        self._check_overlap()
        self._partition = partition
        self._reads.clear()
        self._writes.clear()

    def tread(
        self, table: np.ndarray, coords: Tuple[int, ...],
        own: bool = True,
    ):
        """A table read: bounds + poison check, then the value."""
        for axis, (c, n) in enumerate(zip(coords, table.shape)):
            if not 0 <= c < n:
                self._fail(
                    "S-OOB",
                    f"table read at {coords} leaves the table "
                    f"(axis {axis}: {c} not in 0..{n - 1}) in "
                    f"partition {self._partition}",
                )
        value = table[coords]
        if _is_poison_value(
            value.item() if hasattr(value, "item") else value
        ):
            self._fail(
                "S-POISON-READ",
                f"cell {coords} was read while poisoned (never "
                f"written) in partition {self._partition}",
            )
        if own:
            self._reads.add(coords)
        return value

    def twrite(
        self, table: np.ndarray, coords: Tuple[int, ...], value
    ) -> None:
        """A cell write: bounds + partition-membership check."""
        for axis, (c, n) in enumerate(zip(coords, table.shape)):
            if not 0 <= c < n:
                self._fail(
                    "S-OOB",
                    f"write at {coords} leaves the table "
                    f"(axis {axis}: {c} not in 0..{n - 1}) in "
                    f"partition {self._partition}",
                )
        expected = self.schedule.partition_of(coords)
        if self._partition is not None and expected != self._partition:
            self._fail(
                "S-PART-MISMATCH",
                f"cell {coords} belongs to partition {expected} but "
                f"was written in partition {self._partition}",
            )
        self._writes.add(coords)
        table[coords] = value

    def sread(self, array: np.ndarray, index: int):
        """A sequence read: bounds check, then the code."""
        if not 0 <= index < len(array):
            self._fail(
                "S-OOB",
                f"sequence read at position {index} leaves the "
                f"sequence (length {len(array)}) in partition "
                f"{self._partition}",
            )
        return array[index]

    def finish(self, table: np.ndarray) -> None:
        """After the time loop: final barrier + whole-table scan."""
        self._check_overlap()
        mask = poison_mask(table)
        if mask.any():
            coords = tuple(
                int(c) for c in np.argwhere(mask)[0]
            )
            self._fail(
                "S-WRITE-MISS",
                f"cell {coords} (and {int(mask.sum()) - 1} more) "
                f"was never written by any partition",
            )

    def _check_overlap(self) -> None:
        overlap = self._reads & self._writes
        if overlap:
            cell = sorted(overlap)[0]
            self._fail(
                "S-PART-OVERLAP",
                f"cell {cell} was both read and written inside "
                f"partition {self._partition} (an intra-partition "
                f"race: concurrent cells would observe it in an "
                f"arbitrary state)",
            )


def _sanitized_twin(compiled):
    """The instrumented scalar kernel of a compilation product.

    Compiled lazily and cached on the :class:`CompiledKernel` so the
    sanitized twin amortises like the plain kernel does.
    """
    from ..ir.pybackend import compile_kernel

    twin = getattr(compiled, "_sanitized_run", None)
    if twin is None:
        twin, _source = compile_kernel(compiled.kernel, sanitize=True)
        compiled._sanitized_run = twin
    return twin


def run_sanitized(
    compiled,
    table: np.ndarray,
    ctx: Dict[str, object],
    domain: Domain,
    injector: Optional[FaultInjector] = None,
    site: Optional[FaultSite] = None,
) -> np.ndarray:
    """Execute one problem with sanitization, whatever the backend.

    Scalar products run their instrumented twin; vector products run
    the partition-at-a-time poison scan. Returns the filled table (the
    same values a plain run produces — the sanitizer only *observes*).
    """
    if compiled.backend == "vector":
        return sanitized_partition_scan(
            compiled, table, ctx, domain, injector=injector, site=site
        )
    poison_fill(table)
    sanitizer = TableSanitizer(
        compiled.schedule, domain, injector=injector, site=site
    )
    instrumented_ctx = dict(ctx)
    instrumented_ctx["_san"] = sanitizer
    _sanitized_twin(compiled)(table, instrumented_ctx)
    return table


def partition_mesh(
    schedule: Schedule, domain: Domain
) -> np.ndarray:
    """``S(x)`` evaluated at every cell of the box, as an array."""
    mesh = np.zeros(domain.extents, dtype=np.int64)
    grids = np.indices(domain.extents)
    coeffs = schedule.coefficient_map()
    for axis, dim in enumerate(domain.dims):
        coeff = coeffs.get(dim, 0)
        if coeff:
            mesh += coeff * grids[axis]
    return mesh


def sanitized_partition_scan(
    compiled,
    table: np.ndarray,
    ctx: Dict[str, object],
    domain: Domain,
    injector: Optional[FaultInjector] = None,
    site: Optional[FaultSite] = None,
) -> np.ndarray:
    """Vector-backend sanitization: step partitions, scan poison.

    After each partition executes, its own cells must have left the
    poison state (a float cell that reads poison computes NaN and so
    *stays* poison — detected here; an unwritten cell of either dtype
    likewise), and no later partition's cell may have been written
    yet. Faults injected between partitions surface at the next scan
    and are classified as device corruption.
    """
    schedule = compiled.schedule
    mesh = partition_mesh(schedule, domain)
    poison_fill(table)

    def fail(rule: str, message: str) -> None:
        text = f"[{rule}] {message}"
        if injector is not None:
            raise CellCorruption(text, site)
        raise SanitizerError(text)

    for partition in range(int(mesh.min()), int(mesh.max()) + 1):
        compiled.run(table, ctx, part_lo=partition, part_hi=partition)
        if injector is not None and site is not None:
            injector.corrupt_cells(
                table, schedule, partition, partition, site
            )
        mask = poison_mask(table)
        stale = mask & (mesh == partition)
        if stale.any():
            coords = tuple(int(c) for c in np.argwhere(stale)[0])
            rule = (
                "S-POISON-READ" if table.dtype.kind == "f"
                else "S-WRITE-MISS"
            )
            fail(
                rule,
                f"cell {coords} of partition {partition} is still "
                f"poison after its partition executed (read a "
                f"not-yet-written cell, or was never written)",
            )
        early = (~mask) & (mesh > partition)
        if early.any():
            where = np.argwhere(early)[0]
            coords = tuple(int(c) for c in where)
            fail(
                "S-PART-MISMATCH",
                f"cell {coords} of partition "
                f"{int(mesh[tuple(where)])} was written during "
                f"partition {partition}",
            )
    return table
