"""Independent schedule-soundness (race) verification.

For every recursive call site with descent ``r``, re-prove

    ``S_f(x) - S_f(r(x)) >= 1   for all x in the domain box``

— the paper's validity criterion (Section 4.5) in its integer form.
Strict decrease at every direct dependence edge implies, by induction
over edges, the Fig. 8 partition invariant: no two cells of the same
partition depend on each other (directly or transitively), so all
cells of a partition may run concurrently between barriers.

The proof machinery here is deliberately *separate* from
:meth:`repro.analysis.criteria.Criterion.min_delta`, which feeds the
schedule solver — a bug there must not be able to certify its own
output. Descent extraction (:func:`extract_descents`) is shared: it is
the solver-independent reading of the program text that both sides
must agree on by construction.

Free descent components (e.g. ``forward(t.start, i - 1)``) are
worst-cased at ``-|a_k| * (N_k - 1)`` exactly as Section 5.2
prescribes; range binders become extra integer variables constrained
by their affine bounds. On small domains the algebraic proof is
additionally cross-checked by brute-force edge enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..analysis.affine import Affine
from ..analysis.descent import DescentFunction, extract_descents
from ..analysis.domain import Domain
from ..lang.typecheck import CheckedFunction
from ..schedule.schedule import Schedule
from .diagnostics import Diagnostic, Severity
from .exact import constrained_min, vertex_max, vertex_min

#: Brute-force every dependence edge as a second, concrete proof when
#: the domain has at most this many points.
BRUTE_FORCE_CAP = 4096


@dataclass(frozen=True)
class CallSiteVerdict:
    """The verified delta of one recursive call site."""

    descent: str
    min_delta: Optional[float]  # None: the dependence never occurs
    exact: bool
    ok: bool


@dataclass(frozen=True)
class ScheduleCertificate:
    """The machine-checkable product of one verification.

    ``partitions`` is the independently computed partition count
    ``max S - min S + 1`` over the box (the Section 4.6 goal the
    solver claims to minimise).
    """

    function: str
    schedule: Schedule
    extents: Tuple[Tuple[str, int], ...]
    partitions: int
    call_sites: Tuple[CallSiteVerdict, ...]

    @property
    def ok(self) -> bool:
        """Did every call site verify?"""
        return all(v.ok for v in self.call_sites)

    @property
    def summary(self) -> str:
        """The one-line verdict ``explain`` and lint print."""
        if self.ok:
            return (
                f"schedule verified: {self.partitions} partitions, "
                f"all deltas >= 1"
            )
        failing = sum(1 for v in self.call_sites if not v.ok)
        return (
            f"schedule NOT verified: {failing} of "
            f"{len(self.call_sites)} call sites violate the "
            f"dependence order"
        )


def _delta_parts(
    descent: DescentFunction,
    coeffs: Dict[str, int],
    extents: Dict[str, int],
) -> Tuple[Affine, int]:
    """``S(x) - S(r(x))`` split into affine part + free worst case."""
    delta = Affine.constant(0)
    free_penalty = 0
    for comp in descent.components:
        a_k = coeffs.get(comp.dim, 0)
        if a_k == 0:
            continue
        if comp.is_free:
            # The callee coordinate can be anything in 0..N_k-1, so
            # the term a_k*(x_k - r_k) can sink to -|a_k|*(N_k - 1).
            free_penalty -= abs(a_k) * (extents[comp.dim] - 1)
            continue
        assert comp.affine is not None
        delta = delta + (
            Affine.variable(comp.dim) - comp.affine
        ).scale(a_k)
    return delta, free_penalty


def _binder_setup(
    descent: DescentFunction, extents: Dict[str, int]
) -> Tuple[List[Affine], Dict[str, Tuple[int, int]], bool]:
    """Constraints + variable bounds for the descent's range binders.

    Returns ``(constraints, var_bounds, possible)``; ``possible`` is
    False when some binder's range is empty over the whole box, i.e.
    the reduction body (and the dependence) never evaluates.
    """
    constraints: List[Affine] = []
    var_bounds: Dict[str, Tuple[int, int]] = {}
    for binder in descent.binders:
        lo_min = vertex_min(binder.lo, extents)
        hi_max = vertex_max(binder.hi, extents)
        if lo_min is None or hi_max is None or hi_max < lo_min:
            return [], {}, False
        var_bounds[binder.name] = (lo_min, hi_max)
        name = Affine.variable(binder.name)
        constraints.append(name - binder.lo)  # k >= lo(x)
        constraints.append(binder.hi - name)  # k <= hi(x)
    return constraints, var_bounds, True


def verify_call_site(
    descent: DescentFunction,
    schedule: Schedule,
    domain: Domain,
) -> CallSiteVerdict:
    """Prove ``min S(x) - S(r(x)) >= 1`` for one call site."""
    extents = domain.extent_map()
    coeffs = schedule.coefficient_map()
    delta, free_penalty = _delta_parts(descent, coeffs, extents)
    constraints, var_bounds, possible = _binder_setup(
        descent, extents
    )
    if not possible:
        return CallSiteVerdict(str(descent), None, True, True)
    result = constrained_min(
        delta, extents, constraints, var_bounds=var_bounds
    )
    if result.empty:
        # The binder ranges are never simultaneously non-empty: the
        # dependence never materialises (a vacuous criterion).
        return CallSiteVerdict(str(descent), None, True, True)
    minimum = result.value + free_penalty
    return CallSiteVerdict(
        str(descent), minimum, result.exact, minimum >= 1
    )


def _brute_force_edges(
    func: CheckedFunction, schedule: Schedule, domain: Domain
) -> Optional[str]:
    """Walk every dependence edge of a small domain concretely.

    Returns a description of the first violating edge, or None. This
    checks both strict decrease *and* the Fig. 8 same-partition
    independence directly on points, as a belt-and-braces second
    proof independent of the algebra above.
    """
    from ..schedule.schedule import _descent_targets

    extents = domain.extent_map()
    for descent in extract_descents(func):
        for point in domain.points():
            values = dict(zip(domain.dims, point))
            here = schedule.partition_of(point)
            for target in _descent_targets(descent, values, extents):
                if not domain.contains_tuple(target):
                    continue
                there = schedule.partition_of(target)
                if here <= there:
                    return (
                        f"cell {point} (partition {here}) depends on "
                        f"cell {tuple(target)} (partition {there})"
                    )
    return None


def verify_schedule(
    func: CheckedFunction,
    schedule: Schedule,
    domain: Domain,
    brute_force_cap: int = BRUTE_FORCE_CAP,
) -> Tuple[ScheduleCertificate, List[Diagnostic]]:
    """Independently verify ``schedule`` for ``func`` over ``domain``.

    Returns the certificate plus its diagnostics: one info record
    (``V-SCHED-CERT``) when everything proves, one error
    (``V-SCHED-DELTA``) per violating call site otherwise.
    """
    extents = domain.extent_map()
    descents = extract_descents(func)
    verdicts: List[CallSiteVerdict] = []
    diagnostics: List[Diagnostic] = []
    for descent in descents:
        verdict = verify_call_site(descent, schedule, domain)
        verdicts.append(verdict)
        if not verdict.ok:
            qualifier = (
                "" if verdict.exact
                else " (LP lower bound; possibly conservative)"
            )
            diagnostics.append(
                Diagnostic(
                    Severity.ERROR,
                    "V-SCHED-DELTA",
                    f"{schedule} does not order the dependence "
                    f"[{verdict.descent}]: min S(x) - S(r(x)) = "
                    f"{verdict.min_delta:g} < 1 over the box"
                    f"{qualifier}",
                    span=descent.call.span,
                    function=func.name,
                    exact=verdict.exact,
                )
            )

    smin = vertex_min(schedule.affine, extents)
    smax = vertex_max(schedule.affine, extents)
    partitions = (
        smax - smin + 1 if smin is not None and smax is not None else 0
    )
    certificate = ScheduleCertificate(
        func.name,
        schedule,
        tuple(sorted(extents.items())),
        partitions,
        tuple(verdicts),
    )

    if certificate.ok and descents and domain.size <= brute_force_cap:
        violation = _brute_force_edges(func, schedule, domain)
        if violation is not None:
            certificate = ScheduleCertificate(
                certificate.function,
                certificate.schedule,
                certificate.extents,
                certificate.partitions,
                certificate.call_sites
                + (CallSiteVerdict(violation, 0.0, True, False),),
            )
            diagnostics.append(
                Diagnostic(
                    Severity.ERROR,
                    "V-SCHED-DELTA",
                    f"{schedule}: concrete dependence edge violates "
                    f"the partition order: {violation}",
                    span=None,
                    function=func.name,
                )
            )

    if certificate.ok:
        diagnostics.append(
            Diagnostic(
                Severity.INFO,
                "V-SCHED-CERT",
                f"{schedule}: {certificate.summary}",
                span=None,
                function=func.name,
            )
        )
    return certificate, diagnostics
