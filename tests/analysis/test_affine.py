"""Tests for affine functions and abstract evaluation."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.affine import Affine, affine_from_expr, vector_to_affine
from repro.lang.errors import AnalysisError
from repro.lang.parser import parse_expr


def small_affines(dims=("x", "y", "z")):
    coeff = st.integers(min_value=-5, max_value=5)
    return st.builds(
        lambda cs, const: Affine.of(dict(zip(dims, cs)), const),
        st.tuples(*([coeff] * len(dims))),
        st.integers(min_value=-10, max_value=10),
    )


def environments(dims=("x", "y", "z"), low=-8, high=8):
    value = st.integers(min_value=low, max_value=high)
    return st.fixed_dictionaries({d: value for d in dims})


class TestConstruction:
    def test_zero_coefficients_dropped(self):
        affine = Affine.of({"x": 0, "y": 2})
        assert affine.dims() == ("y",)

    def test_equality_is_canonical(self):
        assert Affine.of({"x": 1, "y": 2}) == Affine.of({"y": 2, "x": 1})

    def test_constant(self):
        affine = Affine.constant(7)
        assert affine.is_constant
        assert affine.const == 7

    def test_variable(self):
        affine = Affine.variable("i")
        assert affine.coefficient("i") == 1
        assert affine.coefficient("j") == 0


class TestArithmetic:
    @given(small_affines(), small_affines(), environments())
    def test_addition_pointwise(self, a, b, env):
        assert (a + b).evaluate(env) == a.evaluate(env) + b.evaluate(env)

    @given(small_affines(), small_affines(), environments())
    def test_subtraction_pointwise(self, a, b, env):
        assert (a - b).evaluate(env) == a.evaluate(env) - b.evaluate(env)

    @given(small_affines(), st.integers(-4, 4), environments())
    def test_scaling_pointwise(self, a, k, env):
        assert a.scale(k).evaluate(env) == k * a.evaluate(env)

    @given(small_affines(), environments())
    def test_negation(self, a, env):
        assert (-a).evaluate(env) == -a.evaluate(env)

    def test_substitute(self):
        a = Affine.of({"x": 2, "y": 1}, 3)
        result = a.substitute({"x": Affine.of({"t": 1}, -1)})
        assert result == Affine.of({"t": 2, "y": 1}, 1)


class TestBoxExtrema:
    @given(small_affines())
    def test_min_max_over_box_match_enumeration(self, a):
        extents = {"x": 3, "y": 4, "z": 2}
        values = [
            a.evaluate({"x": x, "y": y, "z": z})
            for x in range(3)
            for y in range(4)
            for z in range(2)
        ]
        assert a.min_over_box(extents) == min(values)
        assert a.max_over_box(extents) == max(values)

    def test_singleton_box(self):
        a = Affine.of({"x": 5}, 1)
        assert a.min_over_box({"x": 1}) == 1
        assert a.max_over_box({"x": 1}) == 1


class TestFromExpr:
    def test_linear_expression(self):
        affine = affine_from_expr(parse_expr("2*i - j + 3"), ["i", "j"])
        assert affine == Affine.of({"i": 2, "j": -1}, 3)

    def test_coefficient_on_right(self):
        affine = affine_from_expr(parse_expr("i*3"), ["i"])
        assert affine == Affine.of({"i": 3})

    def test_nested_parens(self):
        affine = affine_from_expr(parse_expr("(i - 1) - (j - 2)"), ["i", "j"])
        assert affine == Affine.of({"i": 1, "j": -1}, 1)

    def test_product_of_dims_is_not_affine(self):
        assert affine_from_expr(parse_expr("i*j"), ["i", "j"]) is None

    def test_division_is_not_affine(self):
        assert affine_from_expr(parse_expr("i/2"), ["i"]) is None

    def test_min_is_not_affine(self):
        assert affine_from_expr(parse_expr("i min j"), ["i", "j"]) is None

    def test_free_var_gives_none(self):
        result = affine_from_expr(parse_expr("t + 1"), ["i"], free_vars=["t"])
        assert result is None

    def test_unknown_var_raises(self):
        with pytest.raises(AnalysisError):
            affine_from_expr(parse_expr("q + 1"), ["i"])

    def test_vector_to_affine(self):
        affine = vector_to_affine(["i", "j"], [1, -2], 5)
        assert affine.coefficient("j") == -2
        assert affine.const == 5

    def test_vector_to_affine_length_mismatch(self):
        with pytest.raises(ValueError):
            vector_to_affine(["i"], [1, 2])


class TestDisplay:
    def test_str_simple(self):
        assert str(Affine.of({"x": 1, "y": 1})) == "x + y"

    def test_str_negative(self):
        assert str(Affine.of({"x": 1}, -2)) == "x - 2"

    def test_str_zero(self):
        assert str(Affine.constant(0)) == "0"
