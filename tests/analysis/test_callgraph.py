"""Tests for call-graph construction and recursive grouping."""

import networkx as nx

from repro.analysis.callgraph import (
    call_graph,
    group_of,
    recursive_groups,
)
from repro.lang.parser import parse_program
from repro.lang.typecheck import check_program


def functions_of(src):
    return check_program(parse_program(src)).functions


class TestCallGraph:
    def test_edges(self):
        funcs = functions_of(
            "int f(int n) = if n == 0 then 0 else g(n - 1)\n"
            "int g(int n) = if n == 0 then 0 else g(n - 1)\n"
        )
        graph = call_graph(funcs)
        assert graph.has_edge("f", "g")
        assert graph.has_edge("g", "g")
        assert not graph.has_edge("g", "f")

    def test_isolated_function_still_a_node(self):
        funcs = functions_of("int f(int n) = n + 1")
        graph = call_graph(funcs)
        assert "f" in graph.nodes
        assert graph.number_of_edges() == 0

    def test_calls_in_reductions_counted(self):
        funcs = functions_of(
            "int f(int i, int j) = if j < i + 2 then 0 else "
            "max(k in i+1 .. j-1 : g(i, k))\n"
            "int g(int i, int j) = if j < i + 2 then 0 else "
            "f(i, j - 1)\n"
        )
        graph = call_graph(funcs)
        assert graph.has_edge("f", "g")
        assert graph.has_edge("g", "f")


class TestGroups:
    def test_groups_ordered_callees_first(self):
        """Reverse topological: a leaf recursion precedes its callers."""
        funcs = functions_of(
            "int inner(int n) = if n == 0 then 0 else inner(n - 1)\n"
            "int outer(int n) = if n == 0 then 0 else "
            "outer(n - 1) + inner(n - 1)\n"
        )
        groups = recursive_groups(funcs)
        assert groups.index(("inner",)) < groups.index(("outer",))

    def test_multiple_disjoint_groups(self):
        funcs = functions_of(
            "int a(int n) = if n == 0 then 0 else b(n - 1)\n"
            "int b(int n) = if n == 0 then 0 else a(n - 1)\n"
            "int c(int n) = if n == 0 then 0 else c(n - 1)\n"
        )
        groups = recursive_groups(funcs)
        assert ("a", "b") in groups
        assert ("c",) in groups

    def test_group_of_member(self):
        checked = check_program(parse_program(
            "int a(int n) = if n == 0 then 0 else b(n - 1)\n"
            "int b(int n) = if n == 0 then 0 else a(n - 1)\n"
        ))
        assert group_of(checked, "a") == ("a", "b")
        assert group_of(checked, "b") == ("a", "b")

    def test_group_of_nonrecursive(self):
        checked = check_program(parse_program("int f(int n) = n"))
        assert group_of(checked, "f") == ("f",)


class TestCrossDescents:
    def test_free_cross_component(self):
        """A cross-call through an HMM field is free, like self-calls."""
        from repro.analysis.cross import extract_cross_descents

        src = (
            'alphabet dna = "acgt"\n'
            "prob f(hmm h, state[h] s, seq[*] x, index[x] i) =\n"
            "  if i == 0 then 1.0\n"
            "  else sum(t in s.transitionsto : g(t.start, i - 1))\n"
            "prob g(hmm h, state[h] s, seq[*] x, index[x] i) =\n"
            "  if i == 0 then 1.0 else f(s, i - 1)\n"
        )
        checked = check_program(parse_program(src))
        funcs = {n: checked.function(n) for n in ("f", "g")}
        (descent,) = extract_cross_descents(funcs["f"], funcs)
        assert descent.callee == "g"
        assert descent.components[0].is_free
        assert str(descent.components[1].affine) == "i - 1"

    def test_ranged_cross_component(self):
        from repro.analysis.cross import extract_cross_descents

        src = (
            "int f(int i, int j) = if j < i + 2 then 0 else "
            "max(k in i+1 .. j-1 : g(i, k))\n"
            "int g(int i, int j) = if j < i + 2 then 0 else "
            "f(i, j - 1)\n"
        )
        checked = check_program(parse_program(src))
        funcs = {n: checked.function(n) for n in ("f", "g")}
        (descent,) = extract_cross_descents(funcs["f"], funcs)
        assert descent.components[1].is_ranged
        (binder,) = descent.binders
        assert binder.name == "k"

    def test_str_rendering(self):
        from repro.analysis.cross import extract_cross_descents

        funcs = functions_of(
            "int f(int n) = if n == 0 then 0 else g(n - 1)\n"
            "int g(int n) = n\n"
        )
        (descent,) = extract_cross_descents(funcs["f"], funcs)
        assert "f -> g" in str(descent)
