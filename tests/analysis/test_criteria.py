"""Tests for schedule validity criteria (Section 4.5)."""

import pytest

from repro.analysis.criteria import schedule_criteria
from repro.lang.errors import ScheduleError
from repro.lang.parser import parse_function
from repro.lang.typecheck import check_function

EN = {"en": "abcdefghijklmnopqrstuvwxyz"}
DNA = {"dna": "acgt"}

EDIT_DISTANCE = """
int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1
"""

FORWARD = """
prob forward(hmm h, state[h] s, seq[*] x, index[x] i) =
  if i == 0 then (if s.isstart then 1.0 else 0.0)
  else (if s.isend then 1.0 else s.emission[x[i-1]])
    * sum(t in s.transitionsto : t.prob * forward(t.start, i - 1))
"""


def criteria_of(src, alphabets=EN):
    func = check_function(parse_function(src.strip()), alphabets)
    return schedule_criteria(func)


class TestUniformCriteria:
    def test_edit_distance_paper_equations(self):
        """Section 2.3: S(x,y) > S(x-1,y), S(x,y-1), S(x-1,y-1)."""
        criteria = criteria_of(EDIT_DISTANCE)
        coeffs = {"i": 1, "j": 1}
        # For S = i + j, the deltas are 1, 1, 2, 2 (one per call site).
        deltas = sorted(c.min_delta(coeffs) for c in criteria)
        assert deltas == [1, 1, 2, 2]
        assert all(c.is_satisfied(coeffs) for c in criteria)

    def test_invalid_schedule_detected(self):
        criteria = criteria_of(EDIT_DISTANCE)
        coeffs = {"i": 1, "j": -1}  # violates the d(i, j-1) dependence
        assert not all(c.is_satisfied(coeffs) for c in criteria)

    def test_uniform_needs_no_extents(self):
        criteria = criteria_of(EDIT_DISTANCE)
        for criterion in criteria:
            assert not criterion.requires_extents

    def test_2x_plus_y_also_valid_but_wider(self):
        """Section 2.3: S = 2x + y is valid but has more partitions."""
        criteria = criteria_of(EDIT_DISTANCE)
        assert all(c.is_satisfied({"i": 2, "j": 1}) for c in criteria)

    def test_zero_schedule_invalid(self):
        criteria = criteria_of(EDIT_DISTANCE)
        assert not any(c.is_satisfied({"i": 0, "j": 0}) for c in criteria)


class TestFreeCriteria:
    def test_forward_zero_state_coefficient_ok(self):
        criteria = criteria_of(FORWARD, DNA)
        (criterion,) = criteria
        assert criterion.is_satisfied({"s": 0, "i": 1})

    def test_forward_nonzero_state_coefficient_needs_extents(self):
        (criterion,) = criteria_of(FORWARD, DNA)
        with pytest.raises(ScheduleError, match="extents"):
            criterion.is_satisfied({"s": 1, "i": 1})

    def test_forward_with_extents_free_term(self):
        (criterion,) = criteria_of(FORWARD, DNA)
        # a_s = 1 over 5 states: worst case -(5-1); a_i = 1 gives +1.
        assert criterion.min_delta({"s": 1, "i": 1},
                                   {"s": 5, "i": 100}) == -3
        # Large a_i can buy back validity: a_i = 5 > |a_s|*(Ns-1).
        assert criterion.is_satisfied({"s": 1, "i": 5},
                                      {"s": 5, "i": 100})


class TestAffineCriteria:
    def test_affine_descent_needs_extents(self):
        criteria = criteria_of(
            "int f(int x, int y) = if x == 0 then 0 else f(x - 1, x - y)"
        )
        (criterion,) = criteria
        assert criterion.requires_extents
        with pytest.raises(ScheduleError, match="extents"):
            criterion.is_satisfied({"x": 1, "y": 1})

    def test_affine_descent_zero_coefficient_needs_no_extents(self):
        (criterion,) = criteria_of(
            "int f(int x, int y) = if x == 0 then 0 else f(x - 1, x - y)"
        )
        # With a_y = 0 the affine component drops out entirely.
        assert criterion.is_satisfied({"x": 1, "y": 0})

    def test_affine_descent_with_extents(self):
        (criterion,) = criteria_of(
            "int f(int x, int y) = if x == 0 then 0 else f(x - 1, x - y)"
        )
        # delta = a_x*1 + a_y*(y - (x - y)) = a_x + a_y*(2y - x).
        # With a = (1, 0): delta = 1 > 0 everywhere.
        assert criterion.is_satisfied({"x": 1, "y": 0},
                                      {"x": 10, "y": 10})
        # With a = (1, 1): min delta = 1 + min(2y - x) = 1 - 9 < 0.
        assert not criterion.is_satisfied({"x": 1, "y": 1},
                                          {"x": 10, "y": 10})

    def test_str_mentions_inequality(self):
        (criterion,) = criteria_of(
            "int f(int x) = if x == 0 then 0 else f(x - 1)"
        )
        assert "> 0" in str(criterion)
