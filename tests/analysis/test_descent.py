"""Tests for descent-function extraction."""

import pytest

from repro.analysis.descent import extract_descents
from repro.lang.errors import AnalysisError
from repro.lang.parser import parse_function
from repro.lang.typecheck import check_function

EN = {"en": "abcdefghijklmnopqrstuvwxyz"}
DNA = {"dna": "acgt"}

EDIT_DISTANCE = """
int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1
"""

FORWARD = """
prob forward(hmm h, state[h] s, seq[*] x, index[x] i) =
  if i == 0 then (if s.isstart then 1.0 else 0.0)
  else (if s.isend then 1.0 else s.emission[x[i-1]])
    * sum(t in s.transitionsto : t.prob * forward(t.start, i - 1))
"""


def descents_of(src, alphabets=EN):
    func = check_function(parse_function(src.strip()), alphabets)
    return extract_descents(func)


class TestEditDistance:
    def test_four_call_sites(self):
        assert len(descents_of(EDIT_DISTANCE)) == 4

    def test_all_uniform(self):
        assert all(d.is_uniform for d in descents_of(EDIT_DISTANCE))

    def test_offsets(self):
        offsets = {d.uniform_offsets() for d in descents_of(EDIT_DISTANCE)}
        assert offsets == {(-1, -1), (-1, 0), (0, -1)}

    def test_component_lookup(self):
        descent = descents_of(EDIT_DISTANCE)[0]
        assert descent.component("i").uniform_offset == -1
        with pytest.raises(KeyError):
            descent.component("zz")


class TestClassification:
    def test_affine_component(self):
        descents = descents_of(
            "int f(int x, int y) = if x == 0 then 0 else f(x - 1, x - y)"
        )
        comp = descents[0].component("y")
        assert comp.kind == "affine"
        assert not descents[0].is_uniform

    def test_identity_component_is_uniform_with_zero_offset(self):
        descents = descents_of(
            "int f(int x, int y) = if x == 0 then 0 else f(x - 1, y)"
        )
        assert descents[0].component("y").uniform_offset == 0

    def test_forward_start_is_free(self):
        descents = descents_of(FORWARD, DNA)
        assert len(descents) == 1
        comp = descents[0].component("s")
        assert comp.is_free
        assert descents[0].component("i").uniform_offset == -1

    def test_free_via_reduce_binder(self):
        assert descents_of(FORWARD, DNA)[0].has_free

    def test_min_in_descent_rejected_as_nonaffine(self):
        with pytest.raises(AnalysisError, match="not an affine"):
            descents_of(
                "int f(int x, int y) = if x == 0 then 0 else "
                "f(x - 1, x min y)"
            )

    def test_nonaffine_product_rejected(self):
        with pytest.raises(AnalysisError, match="affine"):
            descents_of(
                "int f(int x, int y) = if x == 0 then 0 else f(x - 1, x*y)"
            )

    def test_no_recursion_no_descents(self):
        assert descents_of("int f(int n) = n + 1") == ()

    def test_str_of_descent(self):
        descent = descents_of(EDIT_DISTANCE)[0]
        assert "i" in str(descent)
