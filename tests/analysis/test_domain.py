"""Tests for the box recursion domain."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.domain import Domain


class TestConstruction:
    def test_of_keeps_order(self):
        domain = Domain.of(i=3, j=4)
        assert domain.dims == ("i", "j")
        assert domain.extents == (3, 4)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Domain(("i",), (1, 2))

    def test_empty_extent_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            Domain.of(i=0)


class TestQueries:
    def test_size(self):
        assert Domain.of(i=3, j=4, k=2).size == 24

    def test_rank(self):
        assert Domain.of(i=3).rank == 1

    def test_points_count_matches_size(self):
        domain = Domain.of(i=3, j=2)
        assert len(list(domain.points())) == domain.size

    def test_points_lexicographic(self):
        assert list(Domain.of(i=2, j=2).points()) == [
            (0, 0), (0, 1), (1, 0), (1, 1)
        ]

    def test_contains(self):
        domain = Domain.of(i=3, j=4)
        assert domain.contains({"i": 2, "j": 3})
        assert not domain.contains({"i": 3, "j": 0})
        assert not domain.contains({"i": -1, "j": 0})

    def test_contains_tuple(self):
        domain = Domain.of(i=3)
        assert domain.contains_tuple((2,))
        assert not domain.contains_tuple((3,))

    @given(st.lists(st.integers(1, 5), min_size=1, max_size=4))
    def test_all_points_contained(self, extents):
        dims = tuple(f"x{k}" for k in range(len(extents)))
        domain = Domain(dims, tuple(extents))
        assert all(domain.contains_tuple(p) for p in domain.points())

    def test_str(self):
        assert "0 <= i < 3" in str(Domain.of(i=3))
