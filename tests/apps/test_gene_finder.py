"""Tests for the gene-finder case study (Section 6.2)."""

import math

import pytest

from repro.apps.baselines.hmm_tools import (
    HmmocBaseline,
    forward_reference,
)
from repro.apps.gene_finder import GeneFinder, build_gene_finder_hmm
from repro.ir.kernel import build_kernel
from repro.runtime.engine import Engine
from repro.runtime.sequences import random_dna
from repro.schedule.schedule import Schedule


@pytest.fixture(scope="module")
def finder():
    return GeneFinder()


class TestModel:
    def test_structure(self):
        hmm = build_gene_finder_hmm()
        assert hmm.n_states == 6
        assert hmm.start_state.name == "begin"
        names = {s.name for s in hmm.states}
        assert {"intergenic", "codon1", "codon2", "codon3"} <= names

    def test_transition_mass_conserved(self):
        hmm = build_gene_finder_hmm()
        for state in hmm.states:
            if state.is_end:
                continue
            total = sum(t.prob for t in hmm.transitions_from(state))
            assert total == pytest.approx(1.0)

    def test_emissions_are_distributions(self):
        hmm = build_gene_finder_hmm()
        for state in hmm.states:
            if state.is_silent:
                continue
            assert sum(p for _, p in state.emissions) == pytest.approx(
                1.0
            )


class TestLikelihoods:
    def test_matches_numpy_reference(self, finder):
        seq = random_dna(60, seed=1)
        assert finder.likelihood(seq) == pytest.approx(
            forward_reference(finder.hmm, seq), rel=1e-9
        )

    def test_log_likelihood_no_underflow(self, finder):
        seq = random_dna(3000, seed=2)
        loglik = finder.log_likelihood(seq)
        assert -1e7 < loglik < 0.0
        assert math.isfinite(loglik)

    def test_schedule_is_sequence_position(self, finder):
        seq = random_dna(40, seed=3)
        run = finder.engine.run(
            finder.func, {"h": finder.hmm, "x": seq}
        )
        assert run.schedule == Schedule.of(s=0, i=1)

    def test_scan_batches(self, finder):
        seqs = [random_dna(30, seed=k) for k in range(5)]
        result = finder.scan(seqs)
        assert len(result.likelihoods) == 5
        singles = [finder.likelihood(s) for s in seqs]
        for got, want in zip(result.likelihoods, singles):
            assert got == pytest.approx(want, rel=1e-9)

    def test_likelihood_decreases_with_length(self, finder):
        """Every extra symbol multiplies by probabilities < 1, so a
        prefix is always more probable than its extension."""
        from repro.runtime.values import DNA, Sequence

        full = random_dna(200, seed=7)
        prefix = Sequence(full.text[:80], DNA)
        assert finder.log_likelihood(prefix) > (
            finder.log_likelihood(full)
        )

    def test_background_composition_scores_higher(self, finder):
        """The model is AT-biased overall; an AT-rich sequence must
        outscore a GC-rich one of equal length."""
        at_rich = random_dna(150, seed=11, gc_bias=0.15)
        gc_rich = random_dna(150, seed=11, gc_bias=0.85)
        assert finder.log_likelihood(at_rich) > (
            finder.log_likelihood(gc_rich)
        )


class TestBaselineComparison:
    def test_hmmoc_functional_agrees(self, finder):
        seqs = [random_dna(25, seed=k) for k in range(3)]
        kernel = build_kernel(finder.func, Schedule.of(s=0, i=1))
        baseline = HmmocBaseline(kernel)
        ours = [finder.likelihood(s) for s in seqs]
        theirs = baseline.run(finder.hmm, seqs)
        for a, b in zip(ours, theirs):
            assert a == pytest.approx(b, rel=1e-9)

    def test_gpu_speedup_at_scale(self, finder):
        """Figure 13: ~x60 over HMMoC at large database sizes."""
        from repro.analysis.domain import Domain
        from repro.gpu.spec import GTX480
        from repro.gpu.timing import kernel_cost

        hmm = finder.hmm
        kernel = build_kernel(
            finder.func, Schedule.of(s=0, i=1), "logspace"
        )
        baseline = HmmocBaseline(kernel)
        n_seqs, length = 10_000, 500
        cpu = baseline.seconds(hmm, [length] * n_seqs)
        per_problem = kernel_cost(
            kernel,
            Domain.of(s=hmm.n_states, i=length + 1),
            GTX480,
            mean_degree=hmm.mean_in_degree(),
        ).seconds
        gpu = per_problem * n_seqs / GTX480.sm_count
        speedup = cpu / gpu
        assert speedup > 10, speedup
