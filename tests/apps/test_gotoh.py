"""Tests for affine-gap alignment (Gotoh) via the mutual pipeline."""

import pytest

from repro.apps.gotoh import GotohAligner, gotoh_reference
from repro.runtime.sequences import random_dna
from repro.runtime.values import ENGLISH, Sequence


@pytest.fixture(scope="module")
def aligner():
    return GotohAligner()


def seq(text):
    return Sequence(text, ENGLISH)


class TestSchedules:
    def test_identical_schedules_zero_offsets(self, aligner):
        fold = aligner.align(seq("abc"), seq("abd"))
        mutual = fold.result.mutual
        for name in ("m", "x", "y"):
            assert mutual[name].schedule.coefficient_map() == {
                "i": 1, "j": 1
            }
            assert mutual[name].offset == 0


class TestScores:
    def test_identical_sequences(self, aligner):
        text = "gattaca"
        fold = aligner.align(seq(text), seq(text))
        assert fold.score == 2 * len(text)  # all matches

    def test_classic_pair(self, aligner):
        assert aligner.align(seq("gattaca"), seq("gcatgcu")).score == (
            gotoh_reference(seq("gattaca"), seq("gcatgcu"))
        )

    def test_single_long_gap_beats_two_short(self):
        """Affine gaps: one open + extends, not repeated opens."""
        aligner = GotohAligner(gap_open=10, gap_extend=1)
        a = seq("aaaa")
        b = seq("aabbaa")  # needs a 2-gap somewhere
        assert aligner.align(a, b).score == gotoh_reference(
            a, b, gap_open=10, gap_extend=1
        )

    def test_empty_vs_nonempty(self, aligner):
        a = seq("")
        b = seq("abc")
        expected = gotoh_reference(a, b)
        assert aligner.align(a, b).score == expected
        # One gap open + 2 extends under the default costs.
        assert expected == -(5 + 1 * 2)

    def test_both_empty(self, aligner):
        assert aligner.align(seq(""), seq("")).score == 0

    @pytest.mark.parametrize("seed", range(3))
    def test_random_pairs(self, aligner, seed):
        a = Sequence(random_dna(6, seed=seed).text, ENGLISH)
        b = Sequence(random_dna(8, seed=100 + seed).text, ENGLISH)
        assert aligner.align(a, b).score == gotoh_reference(a, b)

    def test_gap_parameters_respected(self):
        cheap = GotohAligner(gap_open=1, gap_extend=1)
        costly = GotohAligner(gap_open=20, gap_extend=5)
        a, b = seq("aaaa"), seq("aa")
        assert cheap.align(a, b).score > costly.align(a, b).score
