"""Native-backend parity across the paper's applications.

The acceptance bar for the compiled C backend: every single-kernel
case-study app (Smith-Waterman, Viterbi decoding, the gene finder,
profile-HMM search, Nussinov folding) produces *bitwise* identical
tables to the scalar interpreter — including log space, because the C
helpers spell the scalar prelude's exact formulas through the same
platform libm. Against the vector backend the comparison goes through
the :mod:`repro.runtime.parity` policy instead (numpy's ``logaddexp``
may differ in the last ulps).

Gotoh is absent by design: mutual-group members read each other's
tables and the native backend refuses them (rule
``cross-table-read``); the group backends cover that app.
"""

import numpy as np
import pytest

from repro.apps.gene_finder import GeneFinder, build_gene_finder_hmm
from repro.apps.profile_hmm import ProfileSearch, tk_model
from repro.apps.smith_waterman import SmithWaterman
from repro.apps.viterbi_decode import ViterbiDecoder
from repro.runtime import native
from repro.runtime.engine import Engine
from repro.runtime.parity import tables_agree
from repro.runtime.sequences import random_dna, random_protein

pytestmark = pytest.mark.skipif(
    not native.available().ok,
    reason="no working C compiler in this environment",
)


def assert_native(engine):
    backends = {
        getattr(entry, "backend", "scalar")
        for entry in engine._cache.values()
    }
    assert backends == {"native"}


class TestSmithWaterman:
    def test_native_matches_scalar_bitwise(self):
        query = random_protein(40, seed=1)
        target = random_protein(44, seed=2)
        scalar = SmithWaterman(engine=Engine(backend="scalar"))
        compiled = SmithWaterman(engine=Engine(backend="native"))
        a = scalar.align(query, target)
        b = compiled.align(query, target)
        assert a.value == b.value
        assert a.table.tobytes() == b.table.tobytes()
        assert_native(compiled.engine)

    def test_native_matches_vector(self):
        query = random_protein(30, seed=10)
        target = random_protein(33, seed=11)
        vector = SmithWaterman(engine=Engine(backend="vector"))
        compiled = SmithWaterman(engine=Engine(backend="native"))
        a = vector.align(query, target)
        b = compiled.align(query, target)
        assert tables_agree(a.table, b.table)

    def test_database_search_parity(self):
        query = random_protein(20, seed=12)
        database = [random_protein(24, seed=20 + k) for k in range(5)]
        scalar = SmithWaterman(engine=Engine(backend="scalar"))
        compiled = SmithWaterman(engine=Engine(backend="native"))
        assert (
            compiled.search(query, database).values
            == scalar.search(query, database).values
        )


class TestViterbiDecode:
    def test_native_matches_scalar(self):
        hmm = build_gene_finder_hmm()
        seq = random_dna(30, seed=5)
        scalar = ViterbiDecoder(
            hmm, engine=Engine(backend="scalar", prob_mode="direct")
        )
        compiled = ViterbiDecoder(
            hmm, engine=Engine(backend="native", prob_mode="direct")
        )
        a = scalar.decode(seq)
        b = compiled.decode(seq)
        assert a.path == b.path
        assert a.probability == b.probability
        assert_native(compiled.engine)


class TestGeneFinder:
    def test_native_matches_scalar_logspace_bitwise(self):
        """Log space is the hard case — and still bitwise: logaddexp
        in C spells the scalar prelude's formula through the same
        libm."""
        seq = random_dna(40, seed=6)
        scalar = GeneFinder(
            engine=Engine(backend="scalar", prob_mode="logspace")
        )
        compiled = GeneFinder(
            engine=Engine(backend="native", prob_mode="logspace")
        )
        a = scalar.log_likelihood(seq)
        b = compiled.log_likelihood(seq)
        assert a == b
        assert_native(compiled.engine)

    def test_native_matches_vector_logspace(self):
        seq = random_dna(36, seed=7)
        vector = GeneFinder(
            engine=Engine(backend="vector", prob_mode="logspace")
        )
        compiled = GeneFinder(
            engine=Engine(backend="native", prob_mode="logspace")
        )
        assert np.isclose(
            vector.log_likelihood(seq),
            compiled.log_likelihood(seq),
            rtol=1e-9, atol=1e-12,
        )


class TestProfileHmm:
    def test_native_matches_scalar_logspace_bitwise(self):
        profile = tk_model()
        database = [random_protein(25, seed=k) for k in range(4)]
        scalar = ProfileSearch(
            profile,
            engine=Engine(backend="scalar", prob_mode="logspace"),
        ).search(database)
        compiled = ProfileSearch(
            profile,
            engine=Engine(backend="native", prob_mode="logspace"),
        ).search(database)
        assert scalar.likelihoods == compiled.likelihoods


class TestNussinov:
    def test_native_matches_scalar_bitwise(self):
        """No constant window here (range reduce): the plain native
        entry carries the whole run."""
        from repro.apps.rna_folding import RNA, RnaFolding
        from repro.runtime.values import Sequence

        scalar = RnaFolding(engine=Engine(backend="scalar"))
        compiled = RnaFolding(engine=Engine(backend="native"))
        seq = Sequence("gcaucgauggccgaugcuagc", RNA)
        a = scalar.fold(seq)
        b = compiled.fold(seq)
        assert a.score == b.score
        assert a.structure == b.structure
        assert a.run.table.tobytes() == b.run.table.tobytes()
