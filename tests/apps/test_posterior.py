"""Tests for posterior decoding (forward x backward)."""

import numpy as np
import pytest

from repro.apps.hmm_algorithms import backward_function
from repro.apps.posterior import PosteriorDecoder
from repro.analysis.domain import Domain
from repro.extensions.hmm import HmmBuilder
from repro.lang.errors import RuntimeDslError
from repro.runtime.sequences import random_dna
from repro.runtime.values import DNA, Sequence
from repro.schedule.schedule import Schedule
from repro.schedule.solver import find_schedule


def two_state_hmm():
    return (
        HmmBuilder("h", DNA)
        .start("b")
        .add_state("at_rich", {"a": 0.4, "c": 0.1, "g": 0.1, "t": 0.4})
        .add_state("gc_rich", {"a": 0.1, "c": 0.4, "g": 0.4, "t": 0.1})
        .end("e")
        .transition("b", "at_rich", 0.5)
        .transition("b", "gc_rich", 0.5)
        .transition("at_rich", "at_rich", 0.8)
        .transition("at_rich", "gc_rich", 0.15)
        .transition("at_rich", "e", 0.05)
        .transition("gc_rich", "gc_rich", 0.8)
        .transition("gc_rich", "at_rich", 0.15)
        .transition("gc_rich", "e", 0.05)
        .build()
    )


@pytest.fixture(scope="module")
def decoder():
    return PosteriorDecoder(two_state_hmm())


class TestBackwardSchedule:
    def test_negative_coefficient_derived(self):
        func = backward_function()
        schedule = find_schedule(func, Domain.of(s=4, i=12, n=12))
        assert schedule == Schedule.of(s=0, i=-1, n=0)


class TestPosteriors:
    def test_positions_sum_to_one(self, decoder):
        seq = Sequence("aattggccaatt", DNA)
        result = decoder.decode(seq)
        for position in range(1, len(seq)):
            total = result.posteriors[:, position].sum()
            assert total == pytest.approx(1.0, abs=1e-9)

    def test_probabilities_in_unit_interval(self, decoder):
        result = decoder.decode(random_dna(20, seed=2))
        assert (result.posteriors >= -1e-12).all()
        assert (result.posteriors <= 1 + 1e-12).all()

    def test_at_rich_region_decoded(self, decoder):
        """A long AT block should decode to the AT-rich state."""
        seq = Sequence("aattaattaatt" + "ggccggccggcc", DNA)
        result = decoder.decode(seq)
        path = result.state_path()
        assert path[2] == "at_rich"
        assert path[-3] == "gc_rich"

    def test_probability_of_lookup(self, decoder):
        seq = Sequence("aaaa", DNA)
        result = decoder.decode(seq)
        at = result.probability_of("at_rich", 2)
        gc = result.probability_of("gc_rich", 2)
        assert at > gc
        assert at + gc == pytest.approx(1.0, abs=1e-9)

    def test_likelihood_matches_forward(self, decoder):
        from repro.apps.baselines.hmm_tools import forward_reference

        seq = random_dna(15, seed=5)
        result = decoder.decode(seq)
        assert result.likelihood == pytest.approx(
            forward_reference(decoder.hmm, seq), rel=1e-9
        )

    def test_zero_likelihood_rejected(self):
        hmm = (
            HmmBuilder("h", DNA)
            .start("b")
            .add_state("only_a", {"a": 1.0})
            .end("e")
            .transition("b", "only_a", 1.0)
            .transition("only_a", "only_a", 0.5)
            .transition("only_a", "e", 0.5)
            .build()
        )
        decoder = PosteriorDecoder(hmm)
        with pytest.raises(RuntimeDslError, match="zero likelihood"):
            decoder.decode(Sequence("ccc", DNA))
