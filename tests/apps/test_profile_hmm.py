"""Tests for the profile-HMM case study (Section 6.3)."""

import pytest

from repro.apps.baselines.hmm_tools import forward_reference
from repro.apps.profile_hmm import (
    ProfileSearch,
    build_profile_hmm,
    random_profile,
    tk_model,
)
from repro.runtime.sequences import random_protein
from repro.runtime.values import PROTEIN, Sequence
from repro.schedule.schedule import Schedule


class TestProfileConstruction:
    def test_state_count(self):
        profile = build_profile_hmm(
            [{c: 0.05 for c in PROTEIN.chars}] * 4
        )
        # begin + end + (M, I) per position.
        assert profile.n_states == 2 + 2 * 4

    def test_transition_mass_conserved(self):
        profile = random_profile(6, seed=1)
        for state in profile.states:
            if state.is_end:
                continue
            total = sum(
                t.prob for t in profile.transitions_from(state)
            )
            assert total == pytest.approx(1.0)

    def test_tk_model_positions(self):
        """Figure 14 uses 'the TK model of 10 positions'."""
        assert tk_model().n_states == 2 + 2 * 10

    def test_empty_profile_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            build_profile_hmm([])

    def test_deterministic_by_seed(self):
        a, b = random_profile(5, seed=9), random_profile(5, seed=9)
        assert a.to_dsl() == b.to_dsl()


class TestSearch:
    @pytest.fixture(scope="class")
    def search(self):
        return ProfileSearch(tk_model())

    def test_matches_reference(self, search):
        seq = random_protein(20, seed=1)
        assert search.likelihood(seq) == pytest.approx(
            forward_reference(search.profile, seq), rel=1e-9
        )

    def test_schedule_is_sequence_position(self, search):
        seq = random_protein(15, seed=2)
        run = search.engine.run(
            search.func, {"h": search.profile, "x": seq}
        )
        assert run.schedule == Schedule.of(s=0, i=1)

    def test_family_member_ranks_above_noise(self, search):
        """A sequence emitted by the profile should outrank random
        sequences of the same length."""
        import random as _random

        rng = _random.Random(3)
        member_chars = []
        for k in range(1, 11):
            emissions = dict(search.profile.state(f"M{k}").emissions)
            member_chars.append(
                rng.choices(
                    list(emissions), weights=list(emissions.values())
                )[0]
            )
        member = Sequence("".join(member_chars), PROTEIN, name="member")
        db = [random_protein(10, seed=k, name=f"noise{k}")
              for k in range(6)]
        ranked = search.rank(db + [member], top=1)
        assert ranked[0].name == "member"

    def test_search_batch_matches_singles(self, search):
        db = [random_protein(12, seed=k) for k in range(4)]
        batch = search.search(db)
        for seq, got in zip(db, batch.likelihoods):
            assert got == pytest.approx(
                search.likelihood(seq), rel=1e-9
            )


class TestOrdering:
    def test_tool_ordering_of_figure_14(self):
        """Fig. 14's qualitative ordering at scale: HMMoC slowest;
        ours ~ GPU-HMMER; HMMER3 fastest."""
        from repro.analysis.domain import Domain
        from repro.apps.baselines.hmm_tools import (
            GpuHmmerBaseline,
            Hmmer3Baseline,
            HmmocBaseline,
        )
        from repro.apps.hmm_algorithms import forward_function
        from repro.gpu.spec import GTX480
        from repro.gpu.timing import kernel_cost
        from repro.ir.kernel import build_kernel

        hmm = tk_model()
        kernel = build_kernel(
            forward_function(), Schedule.of(s=0, i=1), "logspace"
        )
        lengths = [400] * 20000
        hmmoc = HmmocBaseline(kernel).seconds(hmm, lengths)
        gpu_hmmer = GpuHmmerBaseline(kernel).seconds(hmm, lengths)
        hmmer3 = Hmmer3Baseline(kernel).seconds(hmm, lengths)
        per_problem = kernel_cost(
            kernel,
            Domain.of(s=hmm.n_states, i=401),
            GTX480,
            mean_degree=hmm.mean_in_degree(),
        ).seconds
        ours = per_problem * len(lengths) / GTX480.sm_count

        assert hmmoc > 5 * ours                   # big GPU win
        assert 0.2 < ours / gpu_hmmer < 5.0       # on par
        assert hmmer3 < ours                      # HMMER3 wins
        assert hmmer3 < gpu_hmmer
