"""Tests for the RNA-folding (Nussinov) extension case study."""

import pytest

from repro.apps.rna_folding import (
    RNA,
    RnaFolding,
    dot_bracket,
    nussinov_function,
    nussinov_reference,
    pairs,
    traceback,
)
from repro.analysis.domain import Domain
from repro.runtime.values import Sequence
from repro.schedule.schedule import Schedule, brute_force_valid
from repro.schedule.solver import find_schedule


@pytest.fixture(scope="module")
def folder():
    return RnaFolding()


class TestSchedule:
    def test_interval_schedule_derived(self):
        func = nussinov_function()
        schedule = find_schedule(
            func, Domain.of(i=20, j=20), solver="enumerative"
        )
        assert schedule == Schedule.of(i=-1, j=1)

    def test_brute_force_valid(self):
        func = nussinov_function()
        domain = Domain.of(i=9, j=9)
        assert brute_force_valid(
            Schedule.of(i=-1, j=1), func, domain
        )


class TestScores:
    def test_matches_reference(self, folder):
        seq = Sequence("gcacgacguagc", RNA)
        result = folder.fold(seq)
        reference = nussinov_reference(seq)
        assert result.score == reference[0, len(seq)]
        assert (result.run.table == reference).all()

    def test_hairpin(self, folder):
        # gggaaaccc: the g/c arms pair.
        result = folder.fold(Sequence("gggaaaccc", RNA))
        assert result.score == 3

    def test_no_pairs_possible(self, folder):
        result = folder.fold(Sequence("aaaa", RNA))
        assert result.score == 0
        assert result.structure == "...."

    def test_empty_sequence(self, folder):
        result = folder.fold(Sequence("", RNA))
        assert result.score == 0

    def test_wobble_pairs_counted(self, folder):
        assert pairs("g", "u")
        result = folder.fold(Sequence("ggaauu", RNA))
        assert result.score >= 2

    @pytest.mark.parametrize("seed", range(4))
    def test_random_sequences_match_reference(self, folder, seed):
        import random

        rng = random.Random(seed)
        text = "".join(rng.choices("acgu", k=14))
        seq = Sequence(text, RNA)
        assert folder.fold(seq).score == (
            nussinov_reference(seq)[0, len(seq)]
        )


class TestTraceback:
    def test_pair_count_matches_score(self, folder):
        seq = Sequence("gcaucgauccgaug", RNA)
        result = folder.fold(seq)
        assert len(result.pairs) == result.score

    def test_pairs_are_canonical(self, folder):
        seq = Sequence("ggcgcaaagcgcc", RNA)
        result = folder.fold(seq)
        for i, j in result.pairs:
            assert pairs(seq[i], seq[j])

    def test_pairs_are_nested(self, folder):
        """Nussinov structures are pseudoknot-free."""
        seq = Sequence("gcaucgauccgaug", RNA)
        result = folder.fold(seq)
        for a, b in result.pairs:
            for c, d in result.pairs:
                if a < c:
                    assert b < c or d < b or (a, b) == (c, d)

    def test_dot_bracket_balanced(self, folder):
        seq = Sequence("ggcgcaaagcgcc", RNA)
        result = folder.fold(seq)
        assert result.structure.count("(") == result.structure.count(")")
        assert len(result.structure) == len(seq)

    def test_dot_bracket_rendering(self):
        seq = Sequence("gaac", RNA)
        assert dot_bracket(seq, [(0, 3)]) == "(..)"


class TestDeviceCost:
    def test_gpu_beats_serial_cpu(self, folder):
        """The interval wavefront parallelises: partitions are the
        anti-diagonals j - i, each with many independent cells."""
        from repro.gpu.spec import GTX480, XEON_E5520
        from repro.gpu.timing import cpu_cost_seconds, kernel_cost
        from repro.ir.kernel import build_kernel

        kernel = build_kernel(folder.func, Schedule.of(i=-1, j=1))
        domain = Domain.of(i=1001, j=1001)
        # The bifurcation loop averages ~n/3 iterations. Note the
        # honest caveat: ranged descents admit no constant sliding
        # window (Section 4.8 requires uniform descents), so the
        # kernel stays global-memory bound and the win is far below
        # the x50 of the windowed workloads.
        assert kernel.window is None
        gpu = kernel_cost(kernel, domain, GTX480, mean_degree=333.0)
        cpu = cpu_cost_seconds(kernel, domain, XEON_E5520,
                               mean_degree=333.0)
        assert cpu > 2 * gpu.seconds
