"""Tests for the Smith-Waterman case study (Section 6.1)."""

import pytest

from repro.apps.baselines.ssearch import SSearchBaseline, sw_score
from repro.apps.smith_waterman import (
    SmithWaterman,
    smith_waterman_function,
)
from repro.runtime.engine import Engine
from repro.runtime.sequences import random_database, random_protein
from repro.runtime.values import PROTEIN, Sequence
from repro.schedule.schedule import Schedule
from repro.schedule.solver import find_schedule
from repro.analysis.domain import Domain


@pytest.fixture(scope="module")
def sw():
    return SmithWaterman()


def reference(sw, query, target):
    return sw_score(
        query,
        target,
        sw.matrix.scores,
        sw.matrix.row_alphabet.index_table(),
        sw.matrix.col_alphabet.index_table(),
        gap=sw.gap,
    )


class TestSchedule:
    def test_diagonal_derived_automatically(self):
        """Section 6.1: 'the expected parallelisation is along the
        diagonal x + y' — and the tool derives it with no user input."""
        func = smith_waterman_function()
        schedule = find_schedule(func, Domain.of(i=50, j=80))
        assert schedule == Schedule.of(i=1, j=1)


class TestScores:
    def test_self_alignment_is_sum_of_diagonal(self, sw):
        seq = Sequence("ARNDC", PROTEIN)
        expected = sum(sw.matrix.score(c, c) for c in seq.text)
        assert sw.align(seq, seq).value == expected

    def test_empty_query(self, sw):
        assert sw.align(
            Sequence("", PROTEIN), Sequence("ARN", PROTEIN)
        ).value == 0

    def test_disjoint_sequences_score_zero_floor(self, sw):
        # Score never goes negative (local alignment).
        a = Sequence("WWWW", PROTEIN)
        b = Sequence("GGGG", PROTEIN)
        assert sw.align(a, b).value >= 0

    def test_matches_reference_on_random_pairs(self, sw):
        for seed in range(5):
            q = random_protein(25 + seed, seed=seed)
            d = random_protein(40, seed=100 + seed)
            assert sw.align(q, d).value == reference(sw, q, d)

    def test_local_beats_substring(self, sw):
        # Embedding the query inside junk must preserve its self-score.
        q = Sequence("HWKYN", PROTEIN)
        target = Sequence("GGGG" + q.text + "AAAA", PROTEIN)
        assert sw.align(q, target).value >= sum(
            sw.matrix.score(c, c) for c in q.text
        )


class TestSearch:
    def test_search_matches_per_pair_alignment(self, sw):
        q = random_protein(20, seed=1)
        db = random_database(6, 30, seed=2)
        result = sw.search(q, db)
        expected = [reference(sw, q, t) for t in db]
        assert [int(v) for v in result.values] == expected

    def test_hits_sorted_by_score(self, sw):
        q = random_protein(20, seed=3)
        db = random_database(8, 30, seed=4)
        hits = sw.hits(q, db, top=5)
        scores = [h.score for h in hits]
        assert scores == sorted(scores, reverse=True)

    def test_planted_hit_ranks_first(self, sw):
        q = random_protein(18, seed=5)
        db = random_database(8, 30, seed=6)
        planted = Sequence("AAA" + q.text + "GGG", PROTEIN,
                           name="planted")
        hits = sw.hits(q, list(db) + [planted], top=1)
        assert hits[0].target.name == "planted"


class TestBaselineModel:
    def test_ssearch_linear_in_query(self):
        baseline = SSearchBaseline()
        db = [300] * 100
        assert baseline.seconds(800, db) == pytest.approx(
            4 * baseline.seconds(200, db)
        )

    def test_gpu_faster_than_cpu_at_scale(self, sw):
        """Figure 12's headline: ours comfortably beats ssearch."""
        baseline = SSearchBaseline()
        db_lengths = [300] * 2000
        query_len = 400
        cpu = baseline.seconds(query_len, db_lengths)
        func = sw.func
        from repro.gpu.timing import kernel_cost
        from repro.gpu.spec import GTX480
        from repro.ir.kernel import build_kernel

        kernel = build_kernel(func, Schedule.of(i=1, j=1))
        per_problem = kernel_cost(
            kernel, Domain.of(i=query_len + 1, j=301), GTX480
        ).seconds
        gpu_makespan = per_problem * len(db_lengths) / GTX480.sm_count
        assert gpu_makespan < cpu
