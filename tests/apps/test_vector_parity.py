"""Backend parity across the paper's five applications.

The acceptance bar for the reduction-capable vector backend: every
case-study app (Smith-Waterman, Gotoh, Viterbi decoding, the gene
finder, profile-HMM search) compiles on the vector backend and
reproduces the scalar backend's results — bitwise for integer tables
and direct-mode probabilities, within 1e-9 relative in log space.
(``backend="auto"`` now prefers the native C backend when a compiler
is present — see tests/apps/test_native_parity.py for that rung.)
"""

import numpy as np
import pytest

from repro.apps.gene_finder import GeneFinder, build_gene_finder_hmm
from repro.apps.gotoh import GotohAligner
from repro.apps.profile_hmm import ProfileSearch, tk_model
from repro.apps.smith_waterman import SmithWaterman
from repro.apps.viterbi_decode import ViterbiDecoder
from repro.runtime.engine import Engine
from repro.runtime.sequences import random_dna, random_protein


def assert_vectorised(engine):
    backends = {
        getattr(entry, "backend", "scalar")
        for entry in engine._cache.values()
    }
    assert backends == {"vector"}


class TestSmithWaterman:
    def test_auto_matches_scalar(self):
        query = random_protein(40, seed=1)
        target = random_protein(44, seed=2)
        scalar = SmithWaterman(engine=Engine(backend="scalar"))
        auto = SmithWaterman(engine=Engine(backend="vector"))
        a = scalar.align(query, target)
        b = auto.align(query, target)
        assert a.value == b.value
        assert a.table.tobytes() == b.table.tobytes()
        assert_vectorised(auto.engine)


class TestGotoh:
    def test_vector_group_matches_compiled(self):
        a = random_protein(18, seed=3)
        b = random_protein(21, seed=4)
        aligner = GotohAligner()
        compiled = aligner.align(a, b, engine="compiled")
        vector = aligner.align(a, b, engine="vector")
        assert vector.score == compiled.score
        for name, table in compiled.result.tables.items():
            assert (
                vector.result.tables[name].tobytes()
                == table.tobytes()
            )


class TestViterbiDecode:
    def test_auto_matches_scalar(self):
        hmm = build_gene_finder_hmm()
        seq = random_dna(30, seed=5)
        scalar = ViterbiDecoder(
            hmm, engine=Engine(backend="scalar", prob_mode="direct")
        )
        auto = ViterbiDecoder(
            hmm, engine=Engine(backend="vector", prob_mode="direct")
        )
        a = scalar.decode(seq)
        b = auto.decode(seq)
        assert a.path == b.path
        assert a.probability == b.probability
        assert_vectorised(auto.engine)


class TestGeneFinder:
    def test_auto_matches_scalar_logspace(self):
        seq = random_dna(40, seed=6)
        scalar = GeneFinder(
            engine=Engine(backend="scalar", prob_mode="logspace")
        )
        auto = GeneFinder(
            engine=Engine(backend="vector", prob_mode="logspace")
        )
        a = scalar.log_likelihood(seq)
        b = auto.log_likelihood(seq)
        assert np.isclose(a, b, rtol=1e-9, atol=1e-12)
        assert_vectorised(auto.engine)


class TestProfileHmm:
    def test_auto_matches_scalar_logspace(self):
        profile = tk_model()
        database = [random_protein(25, seed=k) for k in range(4)]
        scalar = ProfileSearch(
            profile,
            engine=Engine(backend="scalar", prob_mode="logspace"),
        ).search(database)
        auto = ProfileSearch(
            profile,
            engine=Engine(backend="vector", prob_mode="logspace"),
        ).search(database)
        assert np.allclose(
            scalar.likelihoods, auto.likelihoods,
            rtol=1e-9, atol=1e-12,
        )
