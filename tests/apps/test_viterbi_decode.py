"""Tests for Viterbi decoding against brute-force path enumeration."""

import itertools

import pytest

from repro.apps.viterbi_decode import ViterbiDecoder
from repro.extensions.hmm import Hmm, HmmBuilder
from repro.lang.errors import RuntimeDslError
from repro.runtime.sequences import random_dna
from repro.runtime.values import DNA, Sequence


def two_state_hmm():
    return (
        HmmBuilder("h", DNA)
        .start("b")
        .add_state("at", {"a": 0.45, "c": 0.05, "g": 0.05, "t": 0.45})
        .add_state("gc", {"a": 0.05, "c": 0.45, "g": 0.45, "t": 0.05})
        .end("e")
        .transition("b", "at", 0.5)
        .transition("b", "gc", 0.5)
        .transition("at", "at", 0.85)
        .transition("at", "gc", 0.1)
        .transition("at", "e", 0.05)
        .transition("gc", "gc", 0.85)
        .transition("gc", "at", 0.1)
        .transition("gc", "e", 0.05)
        .build()
    )


def brute_force_best(seq: Sequence, hmm: Hmm):
    """Enumerate all state paths under Figure 11's conventions.

    A path assigns a state to every position 1..n; the end state is
    silent and must close the path. Returns (probability, names).
    """
    def path_prob(states):
        prob = 1.0
        previous = hmm.start_state.index
        for position, index in enumerate(states, start=1):
            edges = [
                t for t in hmm.transitions
                if t.source == previous and t.target == index
            ]
            if not edges:
                return 0.0
            prob *= edges[0].prob
            state = hmm.states[index]
            if not state.is_end:
                prob *= state.emission(seq[position - 1])
            previous = index
        if not hmm.states[states[-1]].is_end:
            return 0.0
        return prob

    best, best_path = 0.0, None
    ids = [s.index for s in hmm.states]
    for combo in itertools.product(ids, repeat=len(seq)):
        p = path_prob(combo)
        if p > best:
            best, best_path = p, combo
    names = [
        hmm.states[s].name
        for s in best_path
        if not hmm.states[s].is_end
    ]
    return best, names


@pytest.fixture(scope="module")
def decoder():
    return ViterbiDecoder(two_state_hmm())


class TestViterbi:
    def test_probability_matches_brute_force(self, decoder):
        seq = Sequence("aattgg", DNA)
        result = decoder.decode(seq)
        best, _ = brute_force_best(seq, decoder.hmm)
        assert result.probability == pytest.approx(best, rel=1e-12)

    def test_path_matches_brute_force(self, decoder):
        seq = Sequence("aattggcc", DNA)
        result = decoder.decode(seq)
        _, names = brute_force_best(seq, decoder.hmm)
        assert result.path == names

    @pytest.mark.parametrize("seed", range(3))
    def test_random_sequences(self, decoder, seed):
        seq = random_dna(6, seed=seed)
        result = decoder.decode(seq)
        best, names = brute_force_best(seq, decoder.hmm)
        assert result.probability == pytest.approx(best, rel=1e-12)
        assert result.path == names

    def test_segmentation_shape(self, decoder):
        """AT block then GC block should decode as such."""
        seq = Sequence("aatataat" + "gcgcggcg", DNA)
        result = decoder.decode(seq)
        assert result.path[0] == "at"
        assert result.path[-1] == "gc"

    def test_viterbi_bounded_by_forward(self, decoder):
        from repro.apps.baselines.hmm_tools import forward_reference

        seq = random_dna(12, seed=9)
        result = decoder.decode(seq)
        assert result.probability <= forward_reference(
            decoder.hmm, seq
        ) * (1 + 1e-12)

    def test_zero_probability_rejected(self):
        hmm = (
            HmmBuilder("h", DNA)
            .start("b")
            .add_state("only_a", {"a": 1.0})
            .end("e")
            .transition("b", "only_a", 1.0)
            .transition("only_a", "only_a", 0.5)
            .transition("only_a", "e", 0.5)
            .build()
        )
        decoder = ViterbiDecoder(hmm)
        with pytest.raises(RuntimeDslError, match="zero probability"):
            decoder.decode(Sequence("gg", DNA))

    def test_str(self, decoder):
        result = decoder.decode(Sequence("aa", DNA))
        assert "at" in str(result)
