// fuzz: name = autotune-tie-break
// fuzz: origin = seeded
// fuzz: prob-mode = direct
// fuzz: schedule = autotune
// fuzz: note = diagonal-only descent: (1,0) and (0,1) tie at equal predicted cost, so the shared tie_break_key must resolve identically on every replay, and the autotuned table must match the min-partition baseline bitwise
// fuzz: expect = 6 4
alphabet al = "ab"

int g(seq[al] s, index[s] i, seq[al] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else g(i - 1, j - 1) + 1

let a = "ababab"
let b = "baba"
print g(a, |a|, b, |b|)
print g(b, |b|, b, |b|)
