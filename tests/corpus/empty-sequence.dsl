// fuzz: name = empty-sequence
// fuzz: origin = seeded
// fuzz: prob-mode = direct
// fuzz: note = zero-extent data with 1-extent index dims: every backend must agree on a table of pure base cases
// fuzz: expect = 0 3
alphabet al = "ab"

int f(seq[al] s, index[s] i, seq[al] t, index[t] j) =
  if i < 1 then i + j
  else if j < 1 then i + j
  else (f(i - 1, j) min f(i, j - 1)) + 1

let e = ""
let b = "aba"
print f(e, |e|, e, |e|)
print f(e, |e|, b, |b|)
