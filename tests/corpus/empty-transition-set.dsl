// fuzz: name = empty-transition-set
// fuzz: origin = seeded
// fuzz: prob-mode = direct
// fuzz: note = the orphan state has no incoming transitions: its CSR row is empty and the probability max over it must be 0, identically on every backend
alphabet al = "ab"

hmm m [al] {
  state begin : start
  state orphan emits { a: 0.5, b: 0.5 }
  state main emits { a: 0.3, b: 0.7 }
  state fin : end
  trans begin -> main : 1.0
  trans main -> main : 0.5
  trans orphan -> main : 0.25
  trans main -> fin : 0.5
}

prob f(hmm h, state[h] s, seq[*] x, index[x] i) =
  if i == 0 then (if s.isstart then 1.0 else 0.0)
  else (if s.isend then 1.0 else s.emission[x[i - 1]])
    * max(t in s.transitionsto : t.prob * f(t.start, i - 1))

let x = "abba"
print f(m, m.end, x, |x|)
