// fuzz: name = map-batched-logspace
// fuzz: origin = seeded
// fuzz: prob-mode = logspace
// fuzz: note = a log-space forward map batch (the Figure 14 shape): the batched native rung must agree with the scalar per-member sweep through the same logaddexp chains, including a size-one member
// fuzz: map-call = f(m, m.end, _, |_|)
// fuzz: map-texts = ["acgt", "c", "ttgcaacg", "gg"]
alphabet dna = "acgt"

hmm m [dna] {
  state begin : start
  state hot emits { a: 0.1, c: 0.4, g: 0.4, t: 0.1 }
  state cold emits { a: 0.4, c: 0.1, g: 0.1, t: 0.4 }
  state fin : end
  trans begin -> hot : 0.5
  trans begin -> cold : 0.5
  trans hot -> hot : 0.8
  trans hot -> cold : 0.1
  trans hot -> fin : 0.1
  trans cold -> cold : 0.8
  trans cold -> hot : 0.1
  trans cold -> fin : 0.1
}

prob f(hmm h, state[h] s, seq[*] x, index[x] i) =
  if i == 0 then (if s.isstart then 1.0 else 0.0)
  else (if s.isend then 1.0 else s.emission[x[i - 1]])
    * sum(t in s.transitionsto : t.prob * f(t.start, i - 1))

let x = "ccgg"
print f(m, m.end, x, |x|)
