// fuzz: name = map-batched-ragged
// fuzz: origin = seeded
// fuzz: prob-mode = direct
// fuzz: note = a ragged lane batch with an empty member and a one-char member: the batched native entry pads to the widest member, so every member must still run its exact serial nest (no mask, per-member bound columns)
// fuzz: map-call = d(q, |q|, _, |_|)
// fuzz: map-texts = ["", "a", "abba", "babab", "bb"]
alphabet al = "ab"

int d(seq[al] s, index[s] i, seq[al] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i - 1] == t[j - 1] then d(i - 1, j - 1)
  else (d(i - 1, j) min d(i, j - 1) min d(i - 1, j - 1)) + 1

let q = "abab"
print d(q, |q|, q, |q|)
