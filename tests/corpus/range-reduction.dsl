// fuzz: name = range-reduction
// fuzz: origin = seeded
// fuzz: prob-mode = direct
// fuzz: note = bounded range reductions make the kernel vector-ineligible: the forced-vector replay must skip with the eligibility rule while scalar and native agree
// fuzz: expect = 3 0
alphabet rna = "acgu"

int f(seq[rna] x, index[x] i, index[x] j) =
  if j < i + 2 then 0
  else (
    f(i + 1, j)
    max f(i, j - 1)
    max (f(i + 1, j - 1) + (if x[i] == x[j - 1] then 1 else 0))
    max max(k in i + 1 .. j - 1 : f(i, k) + f(k, j))
  )

let a = "gggaaaccc"
let e = "a"
print f(a, 0, |a|)
print f(e, 0, |e|)
