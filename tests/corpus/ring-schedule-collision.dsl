// fuzz: name = ring-schedule-collision
// fuzz: origin = seeded
// fuzz: prob-mode = direct
// fuzz: note = S = i leaves j pure-space: partitions are whole rows and the native windowed entry's ring buffer must not collide across the wrap
// fuzz: expect = 16 6
alphabet al = "acgt"

int f(seq[al] s, index[s] i, seq[al] t, index[t] j) =
  if i < 2 then i + j
  else if j < 2 then i + j
  else (f(i - 1, j) max f(i - 2, j - 1)) + 1

schedule f : i

let a = "acgtacgt"
let b = "tgcatgca"
print f(a, |a|, b, |b|)
print f(a, 4, b, 2)
