// fuzz: name = size-one-domain
// fuzz: origin = seeded
// fuzz: prob-mode = direct
// fuzz: note = size-1 sequences sit far below the vector crossover; forced vector and native must still agree with scalar
// fuzz: expect = 0 1
alphabet al = "ab"

int f(seq[al] s, index[s] i, seq[al] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i - 1] == t[j - 1] then f(i - 1, j - 1)
  else (f(i - 1, j) min f(i, j - 1) min f(i - 1, j - 1)) + 1

let a = "a"
let b = "b"
print f(a, |a|, a, |a|)
print f(a, |a|, b, |b|)
