"""Tests for the HMM extension (Section 5.2)."""

import math

import numpy as np
import pytest

from repro.extensions.hmm import Hmm, HmmArrays, HmmBuilder
from repro.lang.errors import RuntimeDslError
from repro.lang.parser import parse_program
from repro.runtime.values import DNA


def toy():
    return (
        HmmBuilder("h", DNA)
        .start("b")
        .add_state("m", {"a": 0.7, "c": 0.3})
        .add_state("n", {"g": 1.0})
        .end("e")
        .transition("b", "m", 0.9)
        .transition("b", "n", 0.1)
        .transition("m", "m", 0.5)
        .transition("m", "e", 0.5)
        .transition("n", "e", 1.0)
        .build()
    )


class TestBuilder:
    def test_state_order_is_total(self):
        hmm = toy()
        assert [s.index for s in hmm.states] == [0, 1, 2, 3]

    def test_start_end_lookup(self):
        hmm = toy()
        assert hmm.start_state.name == "b"
        assert hmm.end_state.name == "e"

    def test_duplicate_state_rejected(self):
        builder = HmmBuilder("h", DNA).start("x")
        with pytest.raises(RuntimeDslError, match="duplicate"):
            builder.add_state("x")

    def test_unknown_transition_state(self):
        builder = HmmBuilder("h", DNA).start("b")
        with pytest.raises(RuntimeDslError, match="unknown state"):
            builder.transition("b", "zz", 1.0)

    def test_emission_char_validated(self):
        builder = HmmBuilder("h", DNA)
        with pytest.raises(RuntimeDslError, match="not in alphabet"):
            builder.add_state("m", {"z": 1.0})

    def test_needs_exactly_one_start_and_end(self):
        builder = HmmBuilder("h", DNA).start("b").start("b2").end("e")
        with pytest.raises(RuntimeDslError, match="exactly one"):
            builder.build()

    def test_uniform_state(self):
        hmm = (
            HmmBuilder("h", DNA).start("b").uniform_state("u").end("e")
            .transition("b", "u", 1.0).transition("u", "e", 1.0)
            .build()
        )
        assert hmm.state("u").emission("a") == pytest.approx(0.25)


class TestQueries:
    def test_transitions_to_and_from(self):
        hmm = toy()
        m = hmm.state("m")
        incoming = {t.source for t in hmm.transitions_to(m)}
        outgoing = {t.target for t in hmm.transitions_from(m)}
        assert incoming == {hmm.state("b").index, m.index}
        assert outgoing == {m.index, hmm.end_state.index}

    def test_emission_of_unlisted_char_is_zero(self):
        assert toy().state("m").emission("g") == 0.0

    def test_mean_in_degree(self):
        hmm = toy()
        assert hmm.mean_in_degree() == pytest.approx(5 / 4)

    def test_unknown_state(self):
        with pytest.raises(RuntimeDslError, match="no state"):
            toy().state("zz")


class TestDeclRoundtrip:
    def test_from_decl(self):
        program = parse_program(
            'alphabet dna = "acgt"\n'
            "hmm h [dna] {\n"
            "  state b : start\n"
            "  state m emits { a: 0.5, t: 0.5 }\n"
            "  state e : end\n"
            "  trans b -> m : 1.0\n  trans m -> e : 1.0\n}"
        )
        hmm = Hmm.from_decl(program.statements[1], {"dna": DNA})
        assert hmm.n_states == 3
        assert hmm.state("m").emission("t") == 0.5

    def test_to_dsl_roundtrip(self):
        text = toy().to_dsl()
        program = parse_program(f'alphabet dna = "acgt"\n{text}')
        again = Hmm.from_decl(program.statements[1], {"dna": DNA})
        assert again.n_states == toy().n_states
        assert again.n_transitions == toy().n_transitions


class TestArrays:
    def test_flags(self):
        arrays = toy().arrays()
        assert arrays.is_start.tolist() == [True, False, False, False]
        assert arrays.is_end.tolist() == [False, False, False, True]

    def test_emissions_table(self):
        arrays = toy().arrays()
        a_col = DNA.index("a")
        assert arrays.emissions[1, a_col] == pytest.approx(0.7)
        assert arrays.emissions[0].sum() == 0.0  # silent start

    def test_csr_incoming(self):
        hmm = toy()
        arrays = hmm.arrays()
        m = hmm.state("m").index
        ids = arrays.in_ids[
            arrays.in_offsets[m]:arrays.in_offsets[m + 1]
        ]
        assert {int(arrays.trans_source[t]) for t in ids} == {0, m}

    def test_csr_outgoing(self):
        hmm = toy()
        arrays = hmm.arrays()
        e = hmm.end_state.index
        ids = arrays.out_ids[
            arrays.out_offsets[e]:arrays.out_offsets[e + 1]
        ]
        assert len(ids) == 0

    def test_logspace_tables(self):
        arrays = toy().arrays(logspace=True)
        a_col = DNA.index("a")
        assert arrays.emissions[1, a_col] == pytest.approx(math.log(0.7))
        assert arrays.emissions[1, DNA.index("g")] == -math.inf
        assert arrays.trans_prob[0] == pytest.approx(math.log(0.9))

    def test_sym_index(self):
        arrays = toy().arrays()
        assert arrays.sym_index[ord("a")] == 0
        assert arrays.sym_index[ord("z")] == -1
