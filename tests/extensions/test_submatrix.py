"""Tests for the substitution matrix extension (Section 5.1)."""

import numpy as np
import pytest

from repro.extensions.submatrix import SubstitutionMatrix, blosum62
from repro.lang.errors import RuntimeDslError
from repro.lang.parser import parse_program
from repro.runtime.values import Alphabet, PROTEIN

AB = Alphabet("ab", "ab")


class TestConstruction:
    def test_match_mismatch(self):
        matrix = SubstitutionMatrix.match_mismatch("m", AB, 2, -1)
        assert matrix.score("a", "a") == 2
        assert matrix.score("a", "b") == -1

    def test_from_scores_symmetric(self):
        matrix = SubstitutionMatrix.from_scores(
            "m", AB, {("a", "b"): 5}, default=0
        )
        assert matrix.score("a", "b") == 5
        assert matrix.score("b", "a") == 5
        assert matrix.score("a", "a") == 0

    def test_from_scores_asymmetric(self):
        matrix = SubstitutionMatrix.from_scores(
            "m", AB, {("a", "b"): 5}, default=0, symmetric=False
        )
        assert matrix.score("b", "a") == 0

    def test_shape_validation(self):
        with pytest.raises(RuntimeDslError, match="shape"):
            SubstitutionMatrix("m", AB, AB, np.zeros((3, 2)))

    def test_from_decl(self):
        program = parse_program(
            'alphabet ab = "ab"\n'
            "matrix cost[ab, ab] {\n"
            "  header a b\n  default 9\n  row a : 0 1\n}"
        )
        decl = program.statements[1]
        matrix = SubstitutionMatrix.from_decl(decl, {"ab": AB})
        assert matrix.score("a", "b") == 1
        assert matrix.score("b", "a") == 9  # default fills missing row

    def test_to_dsl_roundtrip(self):
        matrix = SubstitutionMatrix.match_mismatch("cost", AB, 3, -2)
        text = matrix.to_dsl()
        program = parse_program(f'alphabet ab = "ab"\n{text}')
        again = SubstitutionMatrix.from_decl(
            program.statements[1], {"ab": AB}
        )
        assert (again.scores == matrix.scores).all()


class TestBlosum62:
    def test_known_values(self):
        matrix = blosum62()
        assert matrix.score("W", "W") == 11
        assert matrix.score("A", "A") == 4
        assert matrix.score("W", "A") == -3

    def test_symmetric(self):
        matrix = blosum62()
        for a in PROTEIN.chars[:8]:
            for b in PROTEIN.chars[:8]:
                assert matrix.score(a, b) == matrix.score(b, a)

    def test_diagonal_positive(self):
        matrix = blosum62()
        assert all(
            matrix.score(c, c) > 0 for c in PROTEIN.chars
        )
