"""Campaign determinism, the report formats, and the fuzz CLI."""

import json

from repro.__main__ import main
from repro.fuzz.campaign import run_campaign


class TestCampaign:
    def test_small_campaign_is_clean(self):
        report = run_campaign(seed=1, count=10)
        assert report.ok
        assert report.cases_run == 10
        assert sum(report.classifications.values()) == 10
        assert sum(report.shapes.values()) == 10

    def test_same_seed_same_report(self):
        first = run_campaign(seed=2, count=8)
        second = run_campaign(seed=2, count=8)
        assert first.render() == second.render()
        assert first.to_json() == second.to_json()

    def test_different_seed_different_programs(self):
        first = run_campaign(seed=3, count=8)
        second = run_campaign(seed=4, count=8)
        # Shape histograms almost surely differ; the reports must.
        assert (
            first.shapes != second.shapes
            or first.classifications != second.classifications
        )

    def test_budget_cutoff_recorded(self):
        report = run_campaign(seed=5, count=50, budget_seconds=1e-9)
        assert report.budget_exhausted
        assert report.cases_run < 50

    def test_report_contains_no_wallclock(self):
        rendered = run_campaign(seed=6, count=5).render()
        assert "second" not in rendered
        assert " ms" not in rendered

    def test_json_shape(self):
        payload = json.loads(run_campaign(seed=7, count=5).to_json())
        assert payload["ok"] is True
        assert payload["cases_run"] == 5
        assert set(payload["classifications"]) == {
            "crash", "service-crash", "divergence", "race-gap",
            "map-native-divergence", "service-divergence",
            "schedule-divergence", "eligibility-mismatch", "lint-gap",
            "rejected", "parity-ok",
        }
        assert payload["rules"]
        assert payload["failures"] == []


class TestCli:
    def test_fuzz_exit_zero_on_clean(self, capsys):
        assert main(["fuzz", "--seed", "8", "--count", "5"]) == 0
        out = capsys.readouterr().out
        assert "fuzz campaign: seed=8 cases=5/5" in out
        assert "failures: none" in out

    def test_fuzz_json(self, capsys):
        assert main(
            ["fuzz", "--seed", "9", "--count", "4", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["seed"] == 9
        assert payload["cases_run"] == 4

    def test_fuzz_deterministic_output(self, capsys):
        assert main(["fuzz", "--seed", "10", "--count", "5"]) == 0
        first = capsys.readouterr().out
        assert main(["fuzz", "--seed", "10", "--count", "5"]) == 0
        assert capsys.readouterr().out == first

    def test_no_native_flag(self, capsys):
        assert main(
            ["fuzz", "--seed", "11", "--count", "3", "--no-native"]
        ) == 0
        out = capsys.readouterr().out
        assert "native-unavailable" in out
