"""Corpus replay (tier-1) plus the entry format round-trip."""

import pytest

from repro.fuzz.corpus import (
    CorpusEntry,
    load_corpus,
    replay_entry,
    write_entry,
)

ENTRIES = load_corpus()
assert ENTRIES, "tests/corpus must ship seeded entries"


@pytest.mark.parametrize(
    "entry", ENTRIES, ids=[e.name for e in ENTRIES]
)
def test_corpus_entry_replays_green(entry):
    """Every checked-in reproducer agrees across every available
    backend (forced-backend ineligibility is a recorded skip)."""
    report = replay_entry(entry)
    assert report.ok, report.detail
    assert "scalar" in report.values


@pytest.mark.parametrize(
    "entry", ENTRIES, ids=[e.name for e in ENTRIES]
)
def test_corpus_entry_lints_clean(entry):
    """Reproducers for fixed bugs must pass the static verifier."""
    from repro.verify import lint_text
    from repro.verify.diagnostics import Severity

    result = lint_text(
        entry.script, entry.path, prob_mode=entry.prob_mode
    )
    assert not result.report.by_severity(Severity.ERROR)


def test_seeded_shapes_are_covered():
    names = {entry.name for entry in ENTRIES}
    assert {
        "empty-sequence",
        "size-one-domain",
        "ring-schedule-collision",
        "logspace-forward",
        "empty-transition-set",
        "range-reduction",
    } <= names


class TestFormat:
    def test_metadata_parsed(self):
        entry = next(
            e for e in ENTRIES if e.name == "logspace-forward"
        )
        assert entry.prob_mode == "logspace"
        assert entry.meta["origin"] == "seeded"

    def test_write_then_load_round_trip(self, tmp_path):
        script = (
            'alphabet al = "ab"\n\n'
            "int f(seq[al] s, index[s] i) =\n"
            "  if i < 1 then 0 else f(i - 1) + 1\n\n"
            'let a = "ab"\n'
            "print f(a, |a|)\n"
        )
        path = write_entry(
            script, "round-trip",
            meta={"origin": "seeded", "note": "smoke"},
            directory=str(tmp_path),
        )
        loaded = load_corpus(str(tmp_path))
        assert len(loaded) == 1
        entry = loaded[0]
        assert entry.path == path
        assert entry.name == "round-trip"
        assert entry.meta["note"] == "smoke"
        assert entry.script.endswith(script)
        report = replay_entry(entry)
        assert report.ok, report.detail
        assert report.values["scalar"] == [2]

    def test_expect_mismatch_fails_replay(self, tmp_path):
        script = (
            'alphabet al = "ab"\n\n'
            "int f(seq[al] s, index[s] i) =\n"
            "  if i < 1 then 0 else f(i - 1) + 1\n\n"
            'let a = "ab"\n'
            "print f(a, |a|)\n"
        )
        write_entry(
            script, "wrong-golden",
            meta={"expect": "99"}, directory=str(tmp_path),
        )
        entry = load_corpus(str(tmp_path))[0]
        report = replay_entry(entry)
        assert not report.ok
        assert "expected" in report.detail

    def test_missing_directory_is_empty(self, tmp_path):
        assert load_corpus(str(tmp_path / "nope")) == []


class TestAutotuneEntries:
    def test_autotune_key_adds_leg(self):
        (entry,) = [
            e for e in ENTRIES if e.meta.get("schedule") == "autotune"
        ]
        assert entry.name == "autotune-tie-break"
        report = replay_entry(entry)
        assert report.ok, report.detail
        assert "autotune" in report.values
        assert report.values["autotune"] == report.values["scalar"]
