"""Differential harness: classification semantics."""

import random

import pytest

from repro.fuzz.differential import (
    ALL_CLASSES,
    FAILURE_CLASSES,
    DifferentialHarness,
    LegResult,
    values_agree,
)
from repro.fuzz.generator import generate_case
from repro.fuzz.grammar import FuzzCase
from repro.lang.errors import VerificationError


@pytest.fixture(scope="module")
def harness():
    return DifferentialHarness()


def case_from_text(text, function="f", args=None, **kwargs):
    return FuzzCase(
        spec=None, text=text, function=function,
        args=args or {}, **kwargs,
    )


OOB_READ = """
alphabet al = "ab"

int f(seq[al] s, index[s] i) =
  if i < 1 then 0
  else f(i - 1) + (if s[i] == 'a' then 1 else 0)
"""


class TestTaxonomy:
    def test_failure_classes_are_classes(self):
        assert set(FAILURE_CLASSES) < set(ALL_CLASSES)
        assert "parity-ok" in ALL_CLASSES
        assert "rejected" in ALL_CLASSES

    def test_generated_cases_are_parity_ok(self, harness):
        rng = random.Random(42)
        for _ in range(12):
            outcome = harness.classify(generate_case(rng))
            assert outcome.classification == "parity-ok", (
                outcome.detail, outcome.case.text,
            )
            assert not outcome.failed

    def test_frontend_rejection_is_crash(self, harness):
        outcome = harness.classify(
            case_from_text("int f(int n) = undefined_name + 1\n")
        )
        assert outcome.classification == "crash"
        assert "frontend" in outcome.detail

    def test_consistent_static_dynamic_rejection(self, harness):
        """An out-of-bounds read that both the lint and the runtime
        refuse is a 'rejected', not a finding."""
        outcome = harness.classify(
            case_from_text(OOB_READ, args={"s": "ab", "i": 2})
        )
        assert outcome.classification == "rejected"
        assert outcome.lint_errors
        assert not outcome.failed


class TestEligibilityMismatch:
    class FakeVerdict:
        def __init__(self, ok, rule="some-rule", detail="why"):
            self.ok = ok
            self.rule = rule
            self.detail = detail

    def test_ok_verdict_but_refused(self):
        leg = LegResult("vector", "refused", error="nope")
        detail = DifferentialHarness._eligibility_mismatch(
            "vector", leg, self.FakeVerdict(True)
        )
        assert "refused" in detail

    def test_ineligible_but_ran(self):
        leg = LegResult("vector", "ok")
        detail = DifferentialHarness._eligibility_mismatch(
            "vector", leg, self.FakeVerdict(False)
        )
        assert "ran anyway" in detail

    def test_refusal_must_name_the_rule(self):
        leg = LegResult(
            "vector", "refused", error="not eligible [other]: x"
        )
        detail = DifferentialHarness._eligibility_mismatch(
            "vector", leg, self.FakeVerdict(False, rule="some-rule")
        )
        assert "[some-rule]" in detail

    def test_consistent_refusal_is_clean(self):
        leg = LegResult(
            "vector", "refused",
            error="not eligible [some-rule]: because",
        )
        detail = DifferentialHarness._eligibility_mismatch(
            "vector", leg, self.FakeVerdict(False)
        )
        assert detail == ""

    def test_consistent_run_is_clean(self):
        leg = LegResult("vector", "ok")
        detail = DifferentialHarness._eligibility_mismatch(
            "vector", leg, self.FakeVerdict(True)
        )
        assert detail == ""


class TestValueAgreement:
    def test_ints_exact(self):
        assert values_agree(3, 3)
        assert not values_agree(3, 4)

    def test_floats_tolerant(self):
        assert values_agree(1.0, 1.0 + 1e-12)
        assert not values_agree(1.0, 1.001)

    def test_none_only_agrees_with_none(self):
        assert values_agree(None, None)
        assert not values_agree(None, 1)

    def test_zero(self):
        assert values_agree(0.0, 0.0)
        assert not values_agree(0.0, 1e-3)


class TestServiceAdmission:
    def test_admission_rejects_what_the_fuzzer_rejects(self):
        """The service's lint gate refuses the same out-of-bounds
        shape the harness classifies as 'rejected' — a fuzzer-found
        admission case pinned at the service layer."""
        from repro.service.programs import ServiceProgram

        with pytest.raises(VerificationError):
            ServiceProgram(OOB_READ)

    def test_harness_binds_through_the_service_path(self, harness):
        case = generate_case(7)
        outcome = harness.classify(case)
        assert outcome.classification == "parity-ok"
        assert "scalar" in outcome.legs
        assert outcome.legs["scalar"].status == "ok"


EDIT_CASE = """
alphabet en = "abcdefghijklmnopqrstuvwxyz"

int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1
"""

EDIT_ARGS = {"s": "kitten", "i": 6, "t": "sitting", "j": 7}


class TestAutotuneLeg:
    """The autotuned-schedule differential rung."""

    def test_schedule_divergence_in_taxonomy(self):
        assert "schedule-divergence" in FAILURE_CLASSES
        assert "schedule-divergence" in ALL_CLASSES

    def test_leg_runs_and_agrees(self, harness):
        outcome = harness.classify(
            case_from_text(EDIT_CASE, function="d", args=EDIT_ARGS)
        )
        assert outcome.classification == "parity-ok", outcome.detail
        leg = outcome.legs["autotune"]
        assert leg.status == "ok"
        assert leg.value == outcome.legs["scalar"].value == 3

    def test_user_schedule_suppresses_leg(self, harness):
        """An explicit ``schedule`` clause overrides the autotuner,
        so there is nothing to compare."""
        text = EDIT_CASE.rstrip() + "\n\nschedule d : i + j\n"
        outcome = harness.classify(
            case_from_text(text, function="d", args=EDIT_ARGS)
        )
        assert outcome.classification == "parity-ok", outcome.detail
        assert "autotune" not in outcome.legs

    def test_generated_cases_keep_parity_with_autotune(self, harness):
        """The leg rides along on generator output: no generated
        program may diverge under the autotuned schedule."""
        import random

        from repro.fuzz.generator import generate_case

        rng = random.Random(7)
        for _ in range(6):
            outcome = harness.classify(generate_case(rng))
            assert outcome.classification == "parity-ok", (
                outcome.detail, outcome.case.text,
            )
            if "autotune" in outcome.legs:
                assert outcome.legs["autotune"].status == "ok"
