"""Generator properties: determinism, validity, coverage."""

import random

from repro.fuzz.generator import generate_case, generate_spec
from repro.fuzz.grammar import render, render_script
from repro.lang.parser import parse_program
from repro.lang.typecheck import check_program

DRAWS = 60


def draw_specs(seed, count=DRAWS):
    rng = random.Random(seed)
    return [generate_spec(rng) for _ in range(count)]


class TestDeterminism:
    def test_same_seed_same_specs(self):
        assert draw_specs(0) == draw_specs(0)

    def test_same_seed_same_rendered_text(self):
        first = [render(s).text for s in draw_specs(7)]
        second = [render(s).text for s in draw_specs(7)]
        assert first == second

    def test_different_seeds_differ(self):
        assert draw_specs(0) != draw_specs(1)

    def test_render_is_pure(self):
        for spec in draw_specs(3, 20):
            assert render(spec).text == render(spec).text


class TestValidity:
    def test_every_program_typechecks(self):
        for spec in draw_specs(11):
            case = render(spec)
            checked = check_program(parse_program(case.text))
            assert case.function in checked.functions

    def test_every_script_typechecks(self):
        for spec in draw_specs(13):
            script = render_script(spec)
            check_program(parse_program(script))

    def test_declaration_text_is_service_admissible_shape(self):
        # The declaration text must carry no imperative statements —
        # that is what lets the harness bind it through the service.
        for spec in draw_specs(17):
            text = render(spec).text
            assert "print" not in text
            assert "let " not in text


class TestCoverage:
    def test_all_shapes_appear(self):
        shapes = {spec.shape for spec in draw_specs(0, 200)}
        assert shapes == {
            "seq2d", "range2d", "range1d", "hmm", "intdim"
        }

    def test_edge_features_appear(self):
        cases = [render(s) for s in draw_specs(0, 200)]
        assert any(case.map_texts for case in cases)
        assert any(case.prob_mode == "logspace" for case in cases)
        assert any(case.reduce for case in cases)
        assert any("schedule" in case.text for case in cases)
        # Empty and size-1 data domains below the vector crossover.
        assert any(
            not case.args.get("s", "x") for case in cases
        ) or any(not case.args.get("x", "y") for case in cases)

    def test_generate_case_accepts_plain_seed(self):
        assert generate_case(5).text == generate_case(5).text
