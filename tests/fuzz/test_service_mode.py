"""Fuzz service round-trip mode: every case replayed through HTTP.

A second leg of differential testing: each generated case's scalar
oracle value is compared against what a live in-process compute
service returns over HTTP — with optional chaos (sandbox kills,
launch faults) injected underneath. Degraded-but-correct replies
(503 shed, 504 deadline) are *not* findings; wrong values and dead
services are.
"""

import json

import pytest

from repro.__main__ import main
from repro.fuzz.campaign import run_campaign
from repro.fuzz.differential import FAILURE_CLASSES
from repro.fuzz.service_mode import SERVICE_FAILURE_CLASSES


class TestServiceRoundTrip:
    def test_clean_campaign_through_http(self):
        report = run_campaign(seed=41, count=6, service_mode=True)
        assert report.ok
        assert report.cases_run == 6

    def test_chaos_campaign_stays_clean(self):
        """Sandbox kills and launch faults under the service must
        never surface as findings — the fault-tolerance machinery is
        supposed to absorb them."""
        report = run_campaign(
            seed=42, count=6, service_mode=True, chaos_rate=0.3
        )
        assert report.ok, report.render()

    def test_same_seed_same_report(self):
        first = run_campaign(
            seed=43, count=5, service_mode=True, chaos_rate=0.2
        )
        second = run_campaign(
            seed=43, count=5, service_mode=True, chaos_rate=0.2
        )
        assert first.render() == second.render()

    def test_service_classes_registered(self):
        for cls in SERVICE_FAILURE_CLASSES:
            assert cls in FAILURE_CLASSES


class TestCli:
    def test_service_flag(self, capsys):
        assert main(
            ["fuzz", "--seed", "44", "--count", "3", "--service"]
        ) == 0
        out = capsys.readouterr().out
        assert "failures: none" in out

    def test_chaos_rate_requires_service(self, capsys):
        with pytest.raises(SystemExit):
            main(["fuzz", "--seed", "45", "--count", "3",
                  "--chaos-rate", "0.3"])
        assert "--chaos-rate requires --service" in (
            capsys.readouterr().err
        )

    def test_service_chaos_json(self, capsys):
        assert main(
            ["fuzz", "--seed", "46", "--count", "3", "--service",
             "--chaos-rate", "0.25", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cases_run"] == 3
        assert payload["failures"] == []
