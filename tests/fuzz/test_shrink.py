"""Shrinker properties: monotone candidates, idempotence, class
preservation."""

import random

import pytest

from repro.fuzz.generator import generate_spec
from repro.fuzz.grammar import render, render_script
from repro.fuzz.shrink import shrink, shrink_candidates, spec_size
from repro.lang.parser import parse_program
from repro.lang.typecheck import check_program


def specs(seed, count=40):
    rng = random.Random(seed)
    return [generate_spec(rng) for _ in range(count)]


class TestCandidates:
    def test_every_candidate_strictly_smaller(self):
        for spec in specs(0):
            size = spec_size(spec)
            for candidate in shrink_candidates(spec):
                assert spec_size(candidate) < size

    def test_every_candidate_renders_valid(self):
        for spec in specs(1, 25):
            for candidate in shrink_candidates(spec):
                script = render_script(candidate)
                check_program(parse_program(script))

    def test_candidate_order_deterministic(self):
        for spec in specs(2, 15):
            first = list(shrink_candidates(spec))
            second = list(shrink_candidates(spec))
            assert first == second


class TestShrinkLoop:
    def test_idempotent_on_minimal_specs(self):
        """Shrinking an already-minimal spec is a no-op."""
        for spec in specs(3, 15):
            predicate = lambda s: True  # noqa: E731
            minimal, _steps = shrink(spec, predicate)
            again, steps = shrink(minimal, predicate)
            assert steps == 0
            assert again == minimal

    def test_every_step_preserves_the_predicate(self):
        """The failure class (here: a structural stand-in) holds at
        every adopted intermediate, not just at the end."""
        for spec in specs(4, 20):
            marker = "max"
            if marker not in render(spec).text:
                continue
            trail = []

            def predicate(candidate):
                keep = marker in render(candidate).text
                if keep:
                    trail.append(candidate)
                return keep

            minimal, steps = shrink(spec, predicate)
            assert marker in render(minimal).text
            assert len(trail) >= steps
            for adopted in trail:
                assert marker in render(adopted).text

    def test_shrinks_to_a_fixpoint(self):
        """No candidate of the result still satisfies the predicate."""
        for spec in specs(5, 10):
            predicate = lambda s: True  # noqa: E731
            minimal, _steps = shrink(spec, predicate)
            assert not any(True for _ in shrink_candidates(minimal))

    def test_predicate_exception_counts_as_false(self):
        spec = specs(6, 1)[0]

        def explosive(candidate):
            raise RuntimeError("classification blew up")

        minimal, steps = shrink(spec, explosive)
        assert steps == 0
        assert minimal == spec

    def test_step_budget_respected(self):
        spec = max(specs(7, 20), key=spec_size)
        _minimal, steps = shrink(spec, lambda s: True, max_steps=3)
        assert steps == 3


class TestSizeMetric:
    def test_size_positive(self):
        for spec in specs(8):
            assert spec_size(spec) >= 0

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError):
            spec_size(object())
