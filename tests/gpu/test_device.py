"""Tests for the simulated device's placement and accounting."""

import pytest

from repro.gpu.device import (
    LaunchReport,
    ProblemCost,
    SimulatedDevice,
    greedy_makespan,
)
from repro.gpu.spec import DeviceSpec


class TestLaunch:
    def test_single_problem(self):
        device = SimulatedDevice(DeviceSpec(sm_count=4))
        report = device.launch([ProblemCost(1.0)])
        assert report.kernel_seconds == 1.0
        assert report.problems == 1

    def test_parallel_problems_overlap(self):
        """15 equal problems on 15 SMs take one problem's time."""
        device = SimulatedDevice(DeviceSpec(sm_count=15))
        report = device.launch([ProblemCost(0.5)] * 15)
        assert report.kernel_seconds == pytest.approx(0.5)

    def test_oversubscription_queues(self):
        device = SimulatedDevice(DeviceSpec(sm_count=2))
        report = device.launch([ProblemCost(1.0)] * 4)
        assert report.kernel_seconds == pytest.approx(2.0)

    def test_functional_callback_runs_for_every_problem(self):
        device = SimulatedDevice(DeviceSpec(sm_count=2))
        seen = []
        device.launch(
            [ProblemCost(0.1)] * 5, run=lambda k: seen.append(k)
        )
        assert seen == [0, 1, 2, 3, 4]

    def test_transfer_time_scales_with_bytes(self):
        device = SimulatedDevice()
        small = device.launch([ProblemCost(0.0, bytes_in=1e3)])
        large = device.launch([ProblemCost(0.0, bytes_in=1e9)])
        assert large.transfer_seconds > small.transfer_seconds

    def test_empty_launch(self):
        device = SimulatedDevice()
        report = device.launch([])
        assert report.kernel_seconds == 0.0
        assert report.transfer_seconds == 0.0

    def test_total_includes_overhead(self):
        device = SimulatedDevice()
        report = device.launch([ProblemCost(1.0)])
        assert report.total_seconds > report.kernel_seconds

    def test_utilisation_full_when_balanced(self):
        device = SimulatedDevice(DeviceSpec(sm_count=3))
        report = device.launch([ProblemCost(1.0)] * 3)
        assert report.sm_utilisation == pytest.approx(1.0)

    def test_utilisation_low_when_single(self):
        device = SimulatedDevice(DeviceSpec(sm_count=10))
        report = device.launch([ProblemCost(1.0)])
        assert report.sm_utilisation == pytest.approx(0.1)

    def test_utilisation_empty(self):
        assert LaunchReport("x", 0, 0.0, 0.0, 0.0).sm_utilisation == 0.0


class TestGreedyMakespan:
    def test_balances(self):
        makespan, loads = greedy_makespan([3.0, 3.0, 2.0, 2.0], 2)
        assert makespan == pytest.approx(5.0)
        assert sorted(loads) == [5.0, 5.0]

    def test_empty(self):
        makespan, _ = greedy_makespan([], 4)
        assert makespan == 0.0

    def test_single_machine(self):
        makespan, _ = greedy_makespan([1.0, 2.0, 3.0], 1)
        assert makespan == pytest.approx(6.0)
