"""Tests for the lock-step executor: barriers and race detection."""

import pytest

from repro.analysis.domain import Domain
from repro.gpu.executor import LockStepExecutor, RaceError
from repro.lang.parser import parse_function
from repro.lang.typecheck import check_function
from repro.runtime.interpreter import memoised
from repro.runtime.values import Bindings, ENGLISH, Sequence
from repro.schedule.schedule import Schedule

EN = {"en": ENGLISH.chars}

EDIT_DISTANCE = """
int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1
"""


def setup(s_text="abcab", t_text="bcab"):
    func = check_function(parse_function(EDIT_DISTANCE.strip()), EN)
    s = Sequence(s_text, ENGLISH)
    t = Sequence(t_text, ENGLISH)
    bindings = Bindings({"s": s, "t": t})
    domain = Domain.of(i=len(s) + 1, j=len(t) + 1)
    return func, bindings, domain


class TestValidSchedules:
    def test_diagonal_executes_cleanly(self):
        func, bindings, domain = setup()
        executor = LockStepExecutor(
            func, Schedule.of(i=1, j=1), bindings, domain
        )
        table = executor.run()
        oracle = memoised(func, bindings)
        for point in domain.points():
            assert table[point] == oracle(point)

    def test_skewed_schedule_also_valid(self):
        func, bindings, domain = setup()
        executor = LockStepExecutor(
            func, Schedule.of(i=2, j=1), bindings, domain
        )
        table = executor.run()
        oracle = memoised(func, bindings)
        assert table[domain.extents[0] - 1, domain.extents[1] - 1] == (
            oracle((domain.extents[0] - 1, domain.extents[1] - 1))
        )


class TestInvalidSchedules:
    def test_single_axis_races(self):
        """S = i puts d(i, j-1) in the same partition as (i, j)."""
        func, bindings, domain = setup()
        executor = LockStepExecutor(
            func, Schedule.of(i=1, j=0), bindings, domain
        )
        with pytest.raises(RaceError):
            executor.run()

    def test_reversed_schedule_reads_unwritten(self):
        """S = -(i+j) runs the partitions backwards."""
        func, bindings, domain = setup()
        executor = LockStepExecutor(
            func, Schedule.of(i=-1, j=-1), bindings, domain
        )
        with pytest.raises(RaceError):
            executor.run()

    def test_agreement_with_algebraic_criteria(self):
        """Lock-step acceptance == criteria satisfaction, across many
        candidate schedules (the paper's condition (1) made
        executable)."""
        from repro.analysis.criteria import schedule_criteria

        func, bindings, domain = setup("abc", "cba")
        criteria = schedule_criteria(func)
        for coeffs in [
            (1, 1), (1, 2), (2, 1), (3, 1), (1, 0), (0, 1),
            (1, -1), (-1, 1), (2, 2),
        ]:
            schedule = Schedule(("i", "j"), coeffs)
            executor = LockStepExecutor(func, schedule, bindings, domain)
            algebraic = schedule.is_valid(criteria)
            try:
                executor.run()
                executed = True
            except RaceError:
                executed = False
            assert executed == algebraic, coeffs
