"""Tests for the device/CPU specifications."""

import pytest

from repro.gpu.spec import (
    CpuSpec,
    DeviceSpec,
    GTX480,
    XEON_E5520,
    XEON_E5520_SSE,
)


class TestDeviceSpec:
    def test_gtx480_shape(self):
        assert GTX480.sm_count == 15
        assert GTX480.warp_size == 32
        assert GTX480.shared_memory_bytes == 48 * 1024

    def test_transfer_seconds_has_latency_floor(self):
        tiny = GTX480.transfer_seconds(1)
        assert tiny >= GTX480.transfer_latency_s

    def test_transfer_seconds_scales(self):
        one_mb = GTX480.transfer_seconds(1e6)
        ten_mb = GTX480.transfer_seconds(1e7)
        assert ten_mb > one_mb
        assert ten_mb - one_mb == pytest.approx(9e6 / GTX480.transfer_bandwidth)

    def test_memory_hierarchy_ordering(self):
        assert GTX480.shared_read_cycles < GTX480.global_read_cycles
        assert GTX480.shared_write_cycles < GTX480.global_write_cycles

    def test_custom_spec(self):
        spec = DeviceSpec(sm_count=2, warp_size=16)
        assert spec.sm_count == 2


class TestCpuSpec:
    def test_scalar_speedup_is_one(self):
        assert XEON_E5520.effective_speedup() == 1.0

    def test_sse_configuration_speedup(self):
        assert XEON_E5520_SSE.effective_speedup() > 10

    def test_speedup_floor(self):
        spec = CpuSpec(simd_width=1, threads=1)
        assert spec.effective_speedup() == 1.0

    def test_clock_rates_match_testbed(self):
        assert GTX480.clock_hz == pytest.approx(1.40e9)
        assert XEON_E5520.clock_hz == pytest.approx(2.26e9)
