"""Tests for the analytic device timing model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.domain import Domain
from repro.gpu.spec import DeviceSpec, GTX480, XEON_E5520, XEON_E5520_SSE
from repro.gpu.timing import (
    batched_launch_cost,
    cpu_cost_seconds,
    kernel_cost,
    partition_sizes,
    window_fits_shared,
)
from repro.ir.kernel import build_kernel
from repro.lang.parser import parse_function
from repro.lang.typecheck import check_function
from repro.schedule.schedule import Schedule

EN = {"en": "abcdefghijklmnopqrstuvwxyz"}

EDIT_DISTANCE = """
int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1
"""


def edit_kernel(coeffs=(1, 1)):
    func = check_function(parse_function(EDIT_DISTANCE.strip()), EN)
    return build_kernel(func, Schedule(("i", "j"), coeffs))


class TestPartitionSizes:
    def test_diagonal_profile(self):
        sizes = partition_sizes(Schedule.of(i=1, j=1), Domain.of(i=3, j=3))
        assert list(sizes) == [1, 2, 3, 2, 1]

    def test_total_is_domain_size(self):
        sizes = partition_sizes(Schedule.of(i=2, j=1), Domain.of(i=5, j=7))
        assert sizes.sum() == 35

    def test_zero_coefficient_dim_multiplies(self):
        sizes = partition_sizes(Schedule.of(i=0, j=1), Domain.of(i=4, j=3))
        assert list(sizes) == [4, 4, 4]

    @settings(deadline=None, max_examples=40)
    @given(
        coeffs=st.tuples(st.integers(-3, 3), st.integers(-3, 3)),
        extents=st.tuples(st.integers(1, 6), st.integers(1, 6)),
    )
    def test_matches_enumeration(self, coeffs, extents):
        schedule = Schedule(("i", "j"), coeffs)
        domain = Domain(("i", "j"), extents)
        sizes = partition_sizes(schedule, domain)
        from collections import Counter

        counted = Counter(
            schedule.partition_of(p) for p in domain.points()
        )
        expected = [
            counted.get(p, 0)
            for p in range(min(counted), max(counted) + 1)
        ]
        assert [int(s) for s in sizes] == expected


class TestKernelCost:
    def test_more_partitions_cost_more(self):
        domain = Domain.of(i=101, j=101)
        diag = kernel_cost(edit_kernel((1, 1)), domain, GTX480)
        skew = kernel_cost(edit_kernel((2, 1)), domain, GTX480)
        assert skew.partitions > diag.partitions
        assert skew.seconds > diag.seconds

    def test_window_uses_shared_memory(self):
        domain = Domain.of(i=201, j=201)
        kernel = edit_kernel()
        with_window = kernel_cost(kernel, domain, GTX480,
                                  use_window=True)
        without = kernel_cost(kernel, domain, GTX480, use_window=False)
        assert with_window.window_in_shared
        assert not without.window_in_shared
        assert with_window.seconds < without.seconds

    def test_window_overflows_shared_memory(self):
        # 3 rows x ~40k cells x 8B far exceeds 48 KiB.
        domain = Domain.of(i=40001, j=40001)
        kernel = edit_kernel()
        assert not window_fits_shared(
            kernel, kernel.schedule, domain, GTX480
        )

    def test_cost_scales_with_cells(self):
        kernel = edit_kernel()
        small = kernel_cost(kernel, Domain.of(i=51, j=51), GTX480)
        large = kernel_cost(kernel, Domain.of(i=401, j=401), GTX480)
        assert large.seconds > small.seconds * 20

    def test_breakdown_sums_to_total(self):
        kernel = edit_kernel()
        cost = kernel_cost(kernel, Domain.of(i=64, j=64), GTX480)
        assert cost.cycles == pytest.approx(
            cost.compute_cycles + cost.memory_cycles + cost.sync_cycles
        )

    def test_cells_per_second_positive(self):
        cost = kernel_cost(edit_kernel(), Domain.of(i=64, j=64), GTX480)
        assert cost.cells_per_second > 0


class TestBatchedLaunchCost:
    def test_sync_amortised_across_batch(self):
        """One barrier per *global* partition: the batch pays the
        span's syncs once, not once per member."""
        kernel = edit_kernel()
        domains = [Domain.of(i=33, j=33) for _ in range(8)]
        batched = batched_launch_cost(kernel, domains, GTX480)
        singles = [
            kernel_cost(kernel, d, GTX480, use_window=False)
            for d in domains
        ]
        assert batched.sync_cycles == singles[0].sync_cycles
        assert batched.sync_cycles < sum(
            c.sync_cycles for c in singles
        )
        assert batched.seconds < sum(c.seconds for c in singles)

    def test_cells_conserved(self):
        kernel = edit_kernel()
        domains = [
            Domain.of(i=9, j=9),
            Domain.of(i=17, j=5),
            Domain.of(i=5, j=21),
        ]
        cost = batched_launch_cost(kernel, domains, GTX480)
        assert cost.cells == sum(d.size for d in domains)
        assert not cost.window_in_shared  # padded table, global mem

    def test_span_is_largest_member(self):
        kernel = edit_kernel()
        small = Domain.of(i=5, j=5)
        large = Domain.of(i=33, j=17)
        cost = batched_launch_cost(kernel, [small, large], GTX480)
        assert cost.partitions == len(
            partition_sizes(kernel.schedule, large)
        )

    def test_breakdown_sums_to_total(self):
        kernel = edit_kernel()
        cost = batched_launch_cost(
            kernel, [Domain.of(i=12, j=12)] * 4, GTX480
        )
        assert cost.cycles == pytest.approx(
            cost.compute_cycles + cost.memory_cycles + cost.sync_cycles
        )


class TestCpuCost:
    def test_cpu_slower_than_gpu_at_scale(self):
        """The headline claim: big problems favour the device."""
        kernel = edit_kernel()
        domain = Domain.of(i=1001, j=1001)
        gpu = kernel_cost(kernel, domain, GTX480)
        cpu = cpu_cost_seconds(kernel, domain, XEON_E5520)
        assert cpu > gpu.seconds * 5

    def test_simd_configuration_faster(self):
        kernel = edit_kernel()
        domain = Domain.of(i=301, j=301)
        plain = cpu_cost_seconds(kernel, domain, XEON_E5520)
        simd = cpu_cost_seconds(kernel, domain, XEON_E5520_SSE)
        assert simd < plain

    def test_linear_in_cells(self):
        kernel = edit_kernel()
        one = cpu_cost_seconds(kernel, Domain.of(i=101, j=101),
                               XEON_E5520)
        four = cpu_cost_seconds(kernel, Domain.of(i=201, j=201),
                                XEON_E5520)
        assert four == pytest.approx(one * 4, rel=0.05)
