"""Tests for the analytic device timing model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.domain import Domain
from repro.gpu.spec import DeviceSpec, GTX480, XEON_E5520, XEON_E5520_SSE
from repro.gpu.timing import (
    batched_launch_cost,
    cost_lower_bound,
    cpu_cost_seconds,
    kernel_cost,
    partition_sizes,
    window_fits_shared,
)
from repro.ir.kernel import build_kernel
from repro.lang.parser import parse_function
from repro.lang.typecheck import check_function
from repro.schedule.schedule import Schedule

EN = {"en": "abcdefghijklmnopqrstuvwxyz"}

EDIT_DISTANCE = """
int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1
"""


def edit_kernel(coeffs=(1, 1)):
    func = check_function(parse_function(EDIT_DISTANCE.strip()), EN)
    return build_kernel(func, Schedule(("i", "j"), coeffs))


class TestPartitionSizes:
    def test_diagonal_profile(self):
        sizes = partition_sizes(Schedule.of(i=1, j=1), Domain.of(i=3, j=3))
        assert list(sizes) == [1, 2, 3, 2, 1]

    def test_total_is_domain_size(self):
        sizes = partition_sizes(Schedule.of(i=2, j=1), Domain.of(i=5, j=7))
        assert sizes.sum() == 35

    def test_zero_coefficient_dim_multiplies(self):
        sizes = partition_sizes(Schedule.of(i=0, j=1), Domain.of(i=4, j=3))
        assert list(sizes) == [4, 4, 4]

    @settings(deadline=None, max_examples=40)
    @given(
        coeffs=st.tuples(st.integers(-3, 3), st.integers(-3, 3)),
        extents=st.tuples(st.integers(1, 6), st.integers(1, 6)),
    )
    def test_matches_enumeration(self, coeffs, extents):
        schedule = Schedule(("i", "j"), coeffs)
        domain = Domain(("i", "j"), extents)
        sizes = partition_sizes(schedule, domain)
        from collections import Counter

        counted = Counter(
            schedule.partition_of(p) for p in domain.points()
        )
        expected = [
            counted.get(p, 0)
            for p in range(min(counted), max(counted) + 1)
        ]
        assert [int(s) for s in sizes] == expected


class TestKernelCost:
    def test_more_partitions_cost_more(self):
        domain = Domain.of(i=101, j=101)
        diag = kernel_cost(edit_kernel((1, 1)), domain, GTX480)
        skew = kernel_cost(edit_kernel((2, 1)), domain, GTX480)
        assert skew.partitions > diag.partitions
        assert skew.seconds > diag.seconds

    def test_window_uses_shared_memory(self):
        domain = Domain.of(i=201, j=201)
        kernel = edit_kernel()
        with_window = kernel_cost(kernel, domain, GTX480,
                                  use_window=True)
        without = kernel_cost(kernel, domain, GTX480, use_window=False)
        assert with_window.window_in_shared
        assert not without.window_in_shared
        assert with_window.seconds < without.seconds

    def test_window_overflows_shared_memory(self):
        # 3 rows x ~40k cells x 8B far exceeds 48 KiB.
        domain = Domain.of(i=40001, j=40001)
        kernel = edit_kernel()
        assert not window_fits_shared(
            kernel, kernel.schedule, domain, GTX480
        )

    def test_cost_scales_with_cells(self):
        kernel = edit_kernel()
        small = kernel_cost(kernel, Domain.of(i=51, j=51), GTX480)
        large = kernel_cost(kernel, Domain.of(i=401, j=401), GTX480)
        assert large.seconds > small.seconds * 20

    def test_breakdown_sums_to_total(self):
        kernel = edit_kernel()
        cost = kernel_cost(kernel, Domain.of(i=64, j=64), GTX480)
        assert cost.cycles == pytest.approx(
            cost.compute_cycles + cost.memory_cycles + cost.sync_cycles
        )

    def test_cells_per_second_positive(self):
        cost = kernel_cost(edit_kernel(), Domain.of(i=64, j=64), GTX480)
        assert cost.cells_per_second > 0


class TestBatchedLaunchCost:
    def test_sync_amortised_across_batch(self):
        """One barrier per *global* partition: the batch pays the
        span's syncs once, not once per member."""
        kernel = edit_kernel()
        domains = [Domain.of(i=33, j=33) for _ in range(8)]
        batched = batched_launch_cost(kernel, domains, GTX480)
        singles = [
            kernel_cost(kernel, d, GTX480, use_window=False)
            for d in domains
        ]
        assert batched.sync_cycles == singles[0].sync_cycles
        assert batched.sync_cycles < sum(
            c.sync_cycles for c in singles
        )
        assert batched.seconds < sum(c.seconds for c in singles)

    def test_cells_conserved(self):
        kernel = edit_kernel()
        domains = [
            Domain.of(i=9, j=9),
            Domain.of(i=17, j=5),
            Domain.of(i=5, j=21),
        ]
        cost = batched_launch_cost(kernel, domains, GTX480)
        assert cost.cells == sum(d.size for d in domains)
        assert not cost.window_in_shared  # padded table, global mem

    def test_span_is_largest_member(self):
        kernel = edit_kernel()
        small = Domain.of(i=5, j=5)
        large = Domain.of(i=33, j=17)
        cost = batched_launch_cost(kernel, [small, large], GTX480)
        assert cost.partitions == len(
            partition_sizes(kernel.schedule, large)
        )

    def test_breakdown_sums_to_total(self):
        kernel = edit_kernel()
        cost = batched_launch_cost(
            kernel, [Domain.of(i=12, j=12)] * 4, GTX480
        )
        assert cost.cycles == pytest.approx(
            cost.compute_cycles + cost.memory_cycles + cost.sync_cycles
        )


class TestCostLowerBound:
    """The autotuner's branch-and-bound floor must be sound."""

    @settings(deadline=None, max_examples=60)
    @given(
        coeffs=st.tuples(st.integers(-4, 4), st.integers(-4, 4)),
        extents=st.tuples(st.integers(1, 40), st.integers(1, 40)),
    )
    def test_never_exceeds_true_cost(self, coeffs, extents):
        kernel = edit_kernel()
        schedule = Schedule(("i", "j"), coeffs)
        domain = Domain(("i", "j"), extents)
        cost = kernel_cost(kernel, domain, GTX480, schedule=schedule)
        floor = cost_lower_bound(
            kernel, domain, GTX480, cost.partitions
        )
        assert floor <= cost.cycles

    def test_holds_at_global_memory_pricing_too(self):
        """The floor prices memory at the shared rate; a schedule
        whose window spills to global memory clears it by a wide
        margin — exactly the gap the autotuner exploits."""
        kernel = edit_kernel()
        domain = Domain.of(i=64, j=64)
        spilled = kernel_cost(
            kernel, domain, GTX480, use_window=False
        )
        floor = cost_lower_bound(
            kernel, domain, GTX480, spilled.partitions
        )
        assert floor < spilled.cycles

    def test_monotone_in_partitions(self):
        """A partial coefficient vector's span only grows as more
        dimensions are assigned, so the bound must grow with it."""
        kernel = edit_kernel()
        domain = Domain.of(i=64, j=64)
        floors = [
            cost_lower_bound(kernel, domain, GTX480, p)
            for p in range(1, 300, 25)
        ]
        assert floors == sorted(floors)
        assert floors[0] < floors[-1]

    def test_single_cell_domain(self):
        kernel = edit_kernel()
        domain = Domain.of(i=1, j=1)
        floor = cost_lower_bound(kernel, domain, GTX480, 1)
        cost = kernel_cost(kernel, domain, GTX480)
        assert 0 < floor <= cost.cycles


class TestCostModelProperties:
    """Monotonicity facts the autotuner's pruning relies on."""

    def test_sync_term_linear_in_partitions(self):
        kernel = edit_kernel()
        domain = Domain.of(i=64, j=48)
        for coeffs in [(1, 1), (1, 2), (2, 1), (0, 1)]:
            schedule = Schedule(("i", "j"), coeffs)
            cost = kernel_cost(
                kernel, domain, GTX480, schedule=schedule
            )
            assert cost.sync_cycles == (
                cost.partitions * GTX480.sync_cycles
            )

    def test_memory_traffic_monotone_shared_vs_global(self):
        """Swapping the table between shared and global rates moves
        memory cycles in the right direction, compute untouched."""
        kernel = edit_kernel()
        domain = Domain.of(i=128, j=128)
        shared = kernel_cost(kernel, domain, GTX480, use_window=True)
        spilled = kernel_cost(
            kernel, domain, GTX480, use_window=False
        )
        assert shared.window_in_shared
        assert shared.memory_cycles < spilled.memory_cycles
        assert shared.compute_cycles == spilled.compute_cycles
        assert shared.sync_cycles == spilled.sync_cycles

    @settings(deadline=None, max_examples=30)
    @given(
        extents=st.tuples(st.integers(2, 30), st.integers(2, 30)),
    )
    def test_more_memory_ops_cost_more(self, extents):
        """A kernel with strictly more table reads per cell never
        prices cheaper on the same schedule and domain."""
        lean = edit_kernel()
        # The lean recursion plus two extra table reads in the
        # min-chain: identical sequence traffic, strictly more table
        # traffic.
        rich_src = """
int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)
        min d(i-1, j-1) min d(i-1, j-1)) + 1
"""
        func = check_function(parse_function(rich_src.strip()), EN)
        rich = build_kernel(func, Schedule(("i", "j"), (1, 1)))
        assert rich.counts.table_reads > lean.counts.table_reads
        assert rich.counts.seq_reads == lean.counts.seq_reads
        domain = Domain(("i", "j"), extents)
        assert (
            kernel_cost(rich, domain, GTX480).memory_cycles
            >= kernel_cost(lean, domain, GTX480).memory_cycles
        )

    def test_threads_divide_cell_work_not_sync(self):
        """``batched_launch_cost(threads=N)`` models the OpenMP
        problem loop: compute and memory split across cores, barriers
        stay serial."""
        kernel = edit_kernel()
        domains = [Domain.of(i=33, j=33) for _ in range(8)]
        serial = batched_launch_cost(kernel, domains, GTX480)
        threaded = batched_launch_cost(
            kernel, domains, GTX480, threads=4
        )
        assert threaded.compute_cycles == pytest.approx(
            serial.compute_cycles / 4
        )
        assert threaded.memory_cycles == pytest.approx(
            serial.memory_cycles / 4
        )
        assert threaded.sync_cycles == serial.sync_cycles
        assert threaded.cycles < serial.cycles

    def test_threads_floor_at_one(self):
        kernel = edit_kernel()
        domains = [Domain.of(i=9, j=9)]
        base = batched_launch_cost(kernel, domains, GTX480)
        clamped = batched_launch_cost(
            kernel, domains, GTX480, threads=0
        )
        assert clamped.cycles == base.cycles

    def test_zero_coefficient_schedule_degenerate(self):
        """``S = j`` runs whole columns as partitions: partition
        count equals the j extent, and the model still decomposes."""
        kernel = edit_kernel()
        domain = Domain.of(i=16, j=9)
        cost = kernel_cost(
            kernel, domain, GTX480, schedule=Schedule.of(i=0, j=1)
        )
        assert cost.partitions == 9
        assert cost.cells == domain.size
        assert cost.cycles == pytest.approx(
            cost.compute_cycles + cost.memory_cycles + cost.sync_cycles
        )

    def test_size_one_domain(self):
        kernel = edit_kernel()
        cost = kernel_cost(kernel, Domain.of(i=1, j=1), GTX480)
        assert cost.partitions == 1
        assert cost.cells == 1
        assert cost.cycles > 0


class TestCpuCost:
    def test_cpu_slower_than_gpu_at_scale(self):
        """The headline claim: big problems favour the device."""
        kernel = edit_kernel()
        domain = Domain.of(i=1001, j=1001)
        gpu = kernel_cost(kernel, domain, GTX480)
        cpu = cpu_cost_seconds(kernel, domain, XEON_E5520)
        assert cpu > gpu.seconds * 5

    def test_simd_configuration_faster(self):
        kernel = edit_kernel()
        domain = Domain.of(i=301, j=301)
        plain = cpu_cost_seconds(kernel, domain, XEON_E5520)
        simd = cpu_cost_seconds(kernel, domain, XEON_E5520_SSE)
        assert simd < plain

    def test_linear_in_cells(self):
        kernel = edit_kernel()
        one = cpu_cost_seconds(kernel, Domain.of(i=101, j=101),
                               XEON_E5520)
        four = cpu_cost_seconds(kernel, Domain.of(i=201, j=201),
                                XEON_E5520)
        assert four == pytest.approx(one * 4, rel=0.05)
