"""Autotune smoke: the five paper applications under
``Engine(verify="full", schedule="autotune")``.

The CI ``autotune-smoke`` job runs exactly this module. Three
guarantees per app:

* the autotuned run agrees with the min-partition baseline (a valid
  schedule only reorders the sweep);
* every adopted schedule clears the full verifier stack —
  ``verify="full"`` re-proves the winner at compile time on top of
  the autotuner's own gate;
* a warm process (fresh engines over the same persistent cache
  directory) reuses every cached winner with **zero** re-searches.
"""

import pytest

from repro import check_function, parse_function
from repro.apps.profile_hmm import ProfileSearch, tk_model
from repro.apps.rna_folding import RNA, RnaFolding
from repro.apps.smith_waterman import SmithWaterman
from repro.apps.viterbi_decode import ViterbiDecoder
from repro.extensions.hmm import HmmBuilder
from repro.runtime.engine import Engine
from repro.runtime.sequences import random_dna, random_protein
from repro.runtime.values import DNA, ENGLISH, Sequence
from repro.service.cache import PersistentKernelCache

EDIT_SRC = (
    "int d(seq[en] s, index[s] i, seq[en] t, index[t] j) = "
    "if i == 0 then j else if j == 0 then i "
    "else if s[i-1] == t[j-1] then d(i-1, j-1) "
    "else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1"
)


@pytest.fixture(scope="module")
def edit_func():
    return check_function(
        parse_function(EDIT_SRC), {"en": ENGLISH.chars}
    )


@pytest.fixture(scope="module")
def two_state_hmm():
    return (
        HmmBuilder("h", DNA)
        .start("b")
        .add_state("at", {"a": 0.45, "c": 0.05, "g": 0.05, "t": 0.45})
        .add_state("gc", {"a": 0.05, "c": 0.45, "g": 0.45, "t": 0.05})
        .end("e")
        .transition("b", "at", 0.5)
        .transition("b", "gc", 0.5)
        .transition("at", "at", 0.85)
        .transition("at", "gc", 0.1)
        .transition("at", "e", 0.05)
        .transition("gc", "gc", 0.85)
        .transition("gc", "at", 0.1)
        .transition("gc", "e", 0.05)
        .build()
    )


def run_apps(engine_factory, edit_func, hmm):
    """One pass over the five paper apps; returns the per-app values
    and the engines that produced them."""
    engines = {}

    def engine(prob_mode="direct"):
        e = engine_factory(prob_mode)
        return e

    values = {}
    engines["smith-waterman"] = e = engine()
    values["smith-waterman"] = (
        SmithWaterman(engine=e)
        .align(random_protein(40, seed=1), random_protein(48, seed=2))
        .value
    )
    engines["edit-distance"] = e = engine()
    values["edit-distance"] = e.run(
        edit_func,
        {
            "s": Sequence("kitten", ENGLISH),
            "t": Sequence("sitting", ENGLISH),
        },
    ).value
    engines["profile-forward"] = e = engine("logspace")
    values["profile-forward"] = ProfileSearch(
        tk_model(), engine=e
    ).likelihood(random_protein(24, seed=3))
    engines["viterbi"] = e = engine()
    values["viterbi"] = (
        ViterbiDecoder(hmm, engine=e)
        .decode(random_dna(20, seed=4))
        .probability
    )
    engines["nussinov"] = e = engine()
    values["nussinov"] = (
        RnaFolding(engine=e)
        .fold(Sequence("gggaaacccaugcu", RNA))
        .score
    )
    return values, engines


class TestAutotuneSmoke:
    @pytest.fixture(scope="class")
    def cache_dir(self, tmp_path_factory):
        return str(tmp_path_factory.mktemp("autotune-cache"))

    @pytest.fixture(scope="class")
    def cold(self, cache_dir, edit_func, two_state_hmm):
        return run_apps(
            lambda prob: Engine(
                verify="full",
                schedule="autotune",
                prob_mode=prob,
                kernel_cache=PersistentKernelCache(cache_dir),
            ),
            edit_func,
            two_state_hmm,
        )

    def test_matches_min_partition_baseline(
        self, cold, edit_func, two_state_hmm
    ):
        baseline, _ = run_apps(
            lambda prob: Engine(verify="full", prob_mode=prob),
            edit_func,
            two_state_hmm,
        )
        values, _ = cold
        assert values["edit-distance"] == baseline["edit-distance"] == 3
        assert values["smith-waterman"] == baseline["smith-waterman"]
        assert values["nussinov"] == baseline["nussinov"]
        assert values["profile-forward"] == pytest.approx(
            baseline["profile-forward"]
        )
        assert values["viterbi"] == pytest.approx(baseline["viterbi"])

    def test_every_app_searched_once_and_verified(self, cold):
        _, engines = cold
        for name, engine in engines.items():
            assert engine.autotune_searches == 1, name
            # verify="full" re-proved every compiled schedule on top
            # of the autotuner's own winner gate.
            assert engine.verified_schedules >= 1, name
            assert engine.verify_failures == 0, name
            result = engine.last_autotune
            assert result is not None, name
            assert result.predicted.cycles <= (
                result.default_predicted.cycles
            ), name

    def test_warm_process_reuses_every_winner(
        self, cold, cache_dir, edit_func, two_state_hmm
    ):
        """Fresh engines over the warm directory: zero re-searches,
        identical answers."""
        values, engines = run_apps(
            lambda prob: Engine(
                verify="full",
                schedule="autotune",
                prob_mode=prob,
                kernel_cache=PersistentKernelCache(cache_dir),
            ),
            edit_func,
            two_state_hmm,
        )
        cold_values, _ = cold
        assert values == cold_values
        for name, engine in engines.items():
            assert engine.autotune_searches == 0, name
            assert engine.autotune_hits >= 1, name
            info = engine.cache_info()
            assert info.autotune_searches == 0, name
            assert info.autotune_hits >= 1, name


class TestAutotuneMapPath:
    def test_profile_search_database_sweep(self):
        """The lane-batched ``map`` path autotunes once for the
        whole batch (per extents), not once per member."""
        engine = Engine(
            verify="full", schedule="autotune", prob_mode="logspace"
        )
        search = ProfileSearch(tk_model(), engine=engine)
        database = [random_protein(24, seed=s) for s in range(6)]
        autotuned = search.search(database)
        baseline = ProfileSearch(
            tk_model(),
            engine=Engine(verify="full", prob_mode="logspace"),
        ).search(database)
        assert autotuned.likelihoods == pytest.approx(
            baseline.likelihoods
        )
        assert 1 <= engine.autotune_searches <= len(database)
