"""Documentation stays runnable: execute the README code blocks."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]


def python_blocks(markdown: str):
    pattern = re.compile(r"```python\n(.*?)```", re.DOTALL)
    return pattern.findall(markdown)


class TestReadme:
    @pytest.fixture(scope="class")
    def readme(self):
        return (ROOT / "README.md").read_text()

    def test_quickstart_block_runs(self, readme):
        blocks = python_blocks(readme)
        assert blocks, "README lost its quickstart block"
        quickstart = blocks[0]
        namespace: dict = {}
        exec(compile(quickstart, "README.md", "exec"), namespace)
        result = namespace["result"]
        assert result.value == 3
        assert str(result.schedule) == "S = i + j"

    def test_mentioned_files_exist(self, readme):
        for match in re.findall(r"`(\w+\.py)`", readme):
            candidates = (
                ROOT / "examples" / match,
                ROOT / "benchmarks" / match,
                ROOT / match,
            )
            assert any(c.exists() for c in candidates), match

    def test_mentioned_benches_exist(self, readme):
        for match in re.findall(r"`(bench_\w+\.py)`", readme):
            assert (ROOT / "benchmarks" / match).exists(), match


class TestDesignDoc:
    def test_experiment_benches_exist(self):
        design = (ROOT / "DESIGN.md").read_text()
        for match in re.findall(r"benchmarks/(bench_\w+\.py)", design):
            assert (ROOT / "benchmarks" / match).exists(), match

    def test_module_inventory_importable(self):
        import importlib

        for module in (
            "repro.lang", "repro.analysis", "repro.schedule",
            "repro.polyhedral", "repro.ir", "repro.gpu",
            "repro.runtime", "repro.extensions", "repro.apps",
            "repro.apps.baselines",
        ):
            importlib.import_module(module)


class TestPackageSurface:
    def test_top_level_all_resolves(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_all_resolves(self):
        import importlib

        for module_name in (
            "repro.lang", "repro.analysis", "repro.schedule",
            "repro.polyhedral", "repro.ir", "repro.gpu",
            "repro.runtime", "repro.extensions", "repro.apps",
            "repro.apps.baselines",
        ):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", ()):
                assert hasattr(module, name), (module_name, name)

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"
