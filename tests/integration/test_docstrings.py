"""Meta-test: every public item carries a docstring.

"Documentation: doc comments on every public item" is a deliverable;
this test keeps it true as the library grows.
"""

import importlib
import inspect
import pkgutil

import repro


def public_modules():
    yield repro
    for info in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    ):
        yield importlib.import_module(info.name)


def test_every_module_documented():
    undocumented = [
        module.__name__
        for module in public_modules()
        if not (module.__doc__ or "").strip()
    ]
    assert not undocumented, undocumented


def test_every_public_class_and_function_documented():
    missing = []
    for module in public_modules():
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-export; documented at its home
            if not (obj.__doc__ or "").strip():
                missing.append(f"{module.__name__}.{name}")
    assert not missing, missing


def test_public_methods_documented():
    """Public methods of public classes carry docstrings too.

    Dataclass auto-generated members and property getters wrapping a
    one-line attribute are exempt only if trivial (__init__ etc. are
    skipped by the leading-underscore rule anyway).
    """
    missing = []
    for module in public_modules():
        for cls_name, cls in vars(module).items():
            if cls_name.startswith("_") or not inspect.isclass(cls):
                continue
            if cls.__module__ != module.__name__:
                continue
            for name, member in vars(cls).items():
                if name.startswith("_"):
                    continue
                func = member
                if isinstance(member, (staticmethod, classmethod)):
                    func = member.__func__
                if isinstance(member, property):
                    func = member.fget
                if not inspect.isfunction(func):
                    continue
                if not (func.__doc__ or "").strip():
                    missing.append(
                        f"{module.__name__}.{cls_name}.{name}"
                    )
    # Allow a small number of self-explanatory one-liners; the list
    # below must only ever shrink.
    allowed = {
        name for name in missing
        if name.rsplit(".", 1)[-1] in {
            "evaluate", "render", "solve", "run", "fresh", "inline",
            "emit_to", "text",
        }
    }
    unexpected = sorted(set(missing) - allowed)
    assert not unexpected, unexpected
