"""Every shipped example stays runnable, end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "example", EXAMPLES, ids=[e.stem for e in EXAMPLES]
)
def test_example_runs_cleanly(example):
    completed = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples must narrate"
    # Examples self-check against references; any mismatch marker in
    # their output is a failure even if they exited 0.
    for marker in ("MISMATCH", "BAD", "Traceback"):
        assert marker not in completed.stdout, completed.stdout


def test_expected_examples_present():
    names = {e.stem for e in EXAMPLES}
    assert {
        "quickstart",
        "smith_waterman_search",
        "gene_finding",
        "profile_search",
        "codegen_tour",
        "dsl_script",
        "rna_folding",
        "mutual_recursion",
        "posterior_decoding",
    } <= names
