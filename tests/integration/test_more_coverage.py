"""Additional cross-cutting coverage: coupled HMM groups, cost-model
properties, script-level conveniences."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.domain import Domain
from repro.extensions.hmm import HmmBuilder
from repro.gpu.spec import GTX480
from repro.gpu.timing import kernel_cost, partition_sizes
from repro.ir.kernel import build_kernel
from repro.lang.parser import parse_program
from repro.lang.typecheck import check_program
from repro.runtime.mutual import solve_mutual
from repro.runtime.values import Bindings, DNA, Sequence
from repro.schedule.schedule import Schedule


class TestCoupledHmmGroup:
    """A mutual group whose cross-descents include free (HMM-field)
    components: two coupled forward-style recursions that hand control
    to each other every position."""

    SRC = '''
alphabet dna = "acgt"

prob fa(hmm h, state[h] s, seq[*] x, index[x] i) =
  if i == 0 then (if s.isstart then 1.0 else 0.0)
  else (if s.isend then 1.0 else s.emission[x[i-1]])
    * sum(t in s.transitionsto : t.prob * fb(t.start, i - 1))

prob fb(hmm h, state[h] s, seq[*] x, index[x] i) =
  if i == 0 then (if s.isstart then 1.0 else 0.0)
  else (if s.isend then 1.0 else s.emission[x[i-1]])
    * sum(t in s.transitionsto : t.prob * fa(t.start, i - 1))
'''

    @pytest.fixture(scope="class")
    def setup(self):
        checked = check_program(parse_program(self.SRC))
        funcs = {n: checked.function(n) for n in ("fa", "fb")}
        hmm = (
            HmmBuilder("h", DNA)
            .start("b")
            .add_state("m", {"a": 0.5, "c": 0.2, "g": 0.2, "t": 0.1})
            .end("e")
            .transition("b", "m", 1.0)
            .transition("m", "m", 0.9)
            .transition("m", "e", 0.1)
            .build()
        )
        x = Sequence("acgta", DNA)
        bindings = {
            n: Bindings({"h": hmm, "x": x}) for n in funcs
        }
        return funcs, bindings, hmm, x

    def test_schedules_found_and_race_free(self, setup):
        funcs, bindings, hmm, x = setup
        result = solve_mutual(funcs, bindings, engine="lockstep")
        # Free state components force zero state coefficients; both
        # functions schedule on the position.
        for name in funcs:
            coeffs = result.mutual[name].schedule.coefficient_map()
            assert coeffs["s"] == 0
            assert coeffs["i"] != 0

    def test_alternation_semantics(self, setup):
        """fa at even depth uses fb's values: since both recursions
        are symmetric here, fa == fb cell for cell."""
        funcs, bindings, hmm, x = setup
        result = solve_mutual(funcs, bindings, engine="serial")
        assert np.allclose(result.tables["fa"], result.tables["fb"])

    def test_matches_single_function_forward(self, setup):
        """The symmetric coupled pair equals the plain forward."""
        from repro.apps.hmm_algorithms import forward_function
        from repro.runtime.interpreter import memoised

        funcs, bindings, hmm, x = setup
        result = solve_mutual(funcs, bindings, engine="serial")
        oracle = memoised(
            forward_function(), Bindings({"h": hmm, "x": x})
        )
        for s in range(hmm.n_states):
            for i in range(len(x) + 1):
                assert result.tables["fa"][s, i] == pytest.approx(
                    oracle((s, i))
                )


class TestCostModelProperties:
    @pytest.fixture(scope="class")
    def kernel(self):
        from repro.apps.smith_waterman import smith_waterman_function

        return build_kernel(
            smith_waterman_function(), Schedule.of(i=1, j=1)
        )

    @settings(deadline=None, max_examples=25)
    @given(
        n=st.integers(8, 300),
        grow=st.integers(1, 100),
    )
    def test_cost_monotone_in_domain(self, kernel, n, grow):
        small = kernel_cost(
            kernel, Domain.of(i=n, j=n), GTX480
        ).seconds
        large = kernel_cost(
            kernel, Domain.of(i=n + grow, j=n + grow), GTX480
        ).seconds
        assert large > small

    @settings(deadline=None, max_examples=25)
    @given(
        coeffs=st.tuples(st.integers(-3, 3), st.integers(-3, 3)),
        extents=st.tuples(st.integers(1, 20), st.integers(1, 20)),
    )
    def test_partition_sizes_conserve_cells(self, coeffs, extents):
        schedule = Schedule(("i", "j"), coeffs)
        domain = Domain(("i", "j"), extents)
        sizes = partition_sizes(schedule, domain)
        assert int(sizes.sum()) == domain.size

    def test_sync_cost_proportional_to_partitions(self, kernel):
        domain = Domain.of(i=65, j=65)
        diag = kernel_cost(kernel, domain, GTX480)
        assert diag.sync_cycles == pytest.approx(
            diag.partitions * GTX480.sync_cycles
        )


class TestScriptConveniences:
    def test_print_map_result_variable(self, tmp_path):
        from repro.runtime.program import run_script
        from repro.runtime.sequences import random_database, write_fasta

        db = random_database(3, 10, alphabet=DNA, seed=8)
        path = tmp_path / "db.fa"
        write_fasta(path, db)
        script = (
            'alphabet dna = "acgt"\n'
            "int d(seq[dna] s, index[s] i, seq[dna] t, index[t] j) =\n"
            "  if i == 0 then j else if j == 0 then i\n"
            "  else if s[i-1] == t[j-1] then d(i-1, j-1)\n"
            "  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1\n"
            f'load db = fasta("{path}")\n'
            'let q = "acgt"\n'
            "map scores = d(q, |q|, _, |_|) over db\n"
            "print scores\n"
        )
        result = run_script(script)
        assert isinstance(result.last, list)
        assert len(result.last) == 3

    def test_len_of_loaded_collection(self, tmp_path):
        from repro.runtime.program import run_script
        from repro.runtime.sequences import random_database, write_fasta

        db = random_database(4, 10, alphabet=DNA, seed=9)
        path = tmp_path / "db.fa"
        write_fasta(path, db)
        script = (
            'alphabet dna = "acgt"\n'
            f'load db = fasta("{path}")\n'
            "print |db|\n"
        )
        assert run_script(script).last == 4
