"""Integration: every execution path agrees on every program.

For a battery of DSL programs the four evaluation routes must agree:

1. the memoised recursive interpreter (oracle);
2. serial bottom-up tabulation in schedule order;
3. the compiled Python kernel on the simulated device;
4. the lock-step executor (barrier semantics).
"""

import math

import numpy as np
import pytest

from repro.analysis.domain import Domain
from repro.extensions.hmm import HmmBuilder
from repro.gpu.executor import LockStepExecutor
from repro.lang.parser import parse_function
from repro.lang.typecheck import check_function
from repro.runtime.engine import Engine
from repro.runtime.interpreter import domain_extents, memoised
from repro.runtime.tabulate import tabulate
from repro.runtime.values import Bindings, DNA, ENGLISH, Sequence

EN = {"en": ENGLISH.chars}


def agree_everywhere(func, bindings, initial=None, rel=1e-9):
    """Assert all four routes produce the same table."""
    engine = Engine()
    bound = Bindings(dict(bindings))
    domain = Domain(
        func.dim_names, domain_extents(func, bound, initial)
    )
    run = engine.run(func, bindings, initial=initial)
    schedule = run.schedule

    oracle = memoised(func, bound)
    serial = tabulate(func, bound, schedule, initial=initial)
    lockstep = LockStepExecutor(func, schedule, bound, domain).run()

    for point in domain.points():
        want = oracle(point)
        assert serial[point] == pytest.approx(want, rel=rel)
        assert run.table[point] == pytest.approx(want, rel=rel)
        assert lockstep[point] == pytest.approx(want, rel=rel)
    return run


EDIT_DISTANCE = """
int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1
"""

LCS = """
int lcs(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then 0
  else if j == 0 then 0
  else if s[i-1] == t[j-1] then lcs(i-1, j-1) + 1
  else lcs(i-1, j) max lcs(i, j-1)
"""

NEEDLEMAN = """
int nw(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then 0 - j
  else if j == 0 then 0 - i
  else (nw(i-1, j-1) + (if s[i-1] == t[j-1] then 1 else 0 - 1))
       max (nw(i-1, j) - 1)
       max (nw(i, j-1) - 1)
"""

FORWARD = """
prob forward(hmm h, state[h] s, seq[*] x, index[x] i) =
  if i == 0 then (if s.isstart then 1.0 else 0.0)
  else (if s.isend then 1.0 else s.emission[x[i-1]])
    * sum(t in s.transitionsto : t.prob * forward(t.start, i - 1))
"""

VITERBI = """
prob viterbi(hmm h, state[h] s, seq[*] x, index[x] i) =
  if i == 0 then (if s.isstart then 1.0 else 0.0)
  else (if s.isend then 1.0 else s.emission[x[i-1]])
    * max(t in s.transitionsto : t.prob * viterbi(t.start, i - 1))
"""


def checked(src, alphabets=EN):
    return check_function(parse_function(src.strip()), alphabets)


def toy_hmm():
    return (
        HmmBuilder("h", DNA)
        .start("b")
        .add_state("p", {"a": 0.5, "c": 0.2, "g": 0.2, "t": 0.1})
        .add_state("q", {"a": 0.1, "c": 0.3, "g": 0.3, "t": 0.3})
        .end("e")
        .transition("b", "p", 0.7)
        .transition("b", "q", 0.3)
        .transition("p", "p", 0.6)
        .transition("p", "q", 0.3)
        .transition("p", "e", 0.1)
        .transition("q", "q", 0.5)
        .transition("q", "p", 0.4)
        .transition("q", "e", 0.1)
        .build()
    )


class TestStringRecursions:
    def test_edit_distance(self):
        run = agree_everywhere(
            checked(EDIT_DISTANCE),
            {"s": Sequence("kitten", ENGLISH),
             "t": Sequence("sitting", ENGLISH)},
        )
        assert run.value == 3

    def test_lcs(self):
        run = agree_everywhere(
            checked(LCS),
            {"s": Sequence("nematode", ENGLISH),
             "t": Sequence("empty", ENGLISH)},
        )
        assert run.value == 3  # e, m, t

    def test_needleman_wunsch(self):
        run = agree_everywhere(
            checked(NEEDLEMAN),
            {"s": Sequence("gattaca", ENGLISH),
             "t": Sequence("gcatgcu", ENGLISH)},
        )
        assert run.value == 0

    def test_degenerate_empty_inputs(self):
        agree_everywhere(
            checked(EDIT_DISTANCE),
            {"s": Sequence("", ENGLISH), "t": Sequence("", ENGLISH)},
        )

    def test_one_dimensional(self):
        func = checked(
            "int tri(int n) = if n == 0 then 0 else tri(n-1) + n"
        )
        run = agree_everywhere(func, {}, initial={"n": 12})
        assert run.value == 78


class TestHmmRecursions:
    def test_forward(self):
        hmm = toy_hmm()
        agree_everywhere(
            checked(FORWARD, {"dna": DNA.chars}),
            {"h": hmm, "x": Sequence("acgtac", DNA)},
        )

    def test_viterbi(self):
        hmm = toy_hmm()
        agree_everywhere(
            checked(VITERBI, {"dna": DNA.chars}),
            {"h": hmm, "x": Sequence("gacgta", DNA)},
        )

    def test_viterbi_bounded_by_forward(self):
        """max over paths <= sum over paths, cell by cell."""
        hmm = toy_hmm()
        x = Sequence("acgt", DNA)
        engine = Engine()
        fwd = engine.run(
            checked(FORWARD, {"dna": DNA.chars}), {"h": hmm, "x": x}
        )
        vit = engine.run(
            checked(VITERBI, {"dna": DNA.chars}), {"h": hmm, "x": x}
        )
        assert (vit.table <= fwd.table + 1e-12).all()


class TestCrossBackendProbability:
    def test_direct_and_logspace_tables_correspond(self):
        hmm = toy_hmm()
        x = Sequence("acgtgca", DNA)
        func = checked(FORWARD, {"dna": DNA.chars})
        direct = Engine(prob_mode="direct").run(
            func, {"h": hmm, "x": x}
        )
        logged = Engine(prob_mode="logspace").run(
            func, {"h": hmm, "x": x}
        )
        with np.errstate(divide="ignore"):
            expected = np.log(direct.table)
        assert np.allclose(
            logged.table, expected, atol=1e-9, equal_nan=False
        )
