"""Property-based integration: random uniform recursions.

Hypothesis generates random 2-D uniform recurrences (random descent
offsets, random combinators); for each one the whole pipeline must

* find a schedule the brute-force checker accepts, or prove none
  exists in bound;
* produce a compiled kernel whose table equals the memoised oracle;
* survive the lock-step barrier check.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.domain import Domain
from repro.gpu.executor import LockStepExecutor
from repro.lang.errors import ScheduleError
from repro.lang.parser import parse_function
from repro.lang.typecheck import check_function
from repro.runtime.engine import Engine
from repro.runtime.interpreter import domain_extents, memoised
from repro.runtime.values import Bindings, ENGLISH, Sequence

EN = {"en": ENGLISH.chars}


def offset_text(var: str, offset: int) -> str:
    if offset == 0:
        return var
    sign = "+" if offset > 0 else "-"
    return f"{var} {sign} {abs(offset)}"


@st.composite
def recursion_programs(draw):
    """A random guarded 2-D recurrence over two sequences."""
    n_calls = draw(st.integers(1, 3))
    combiner = draw(st.sampled_from(["+", "min", "max"]))
    calls = []
    for _ in range(n_calls):
        di = draw(st.integers(-2, 0))
        dj = draw(st.integers(-2, 0))
        if di == 0 and dj == 0:
            di = -1
        calls.append(f"f({offset_text('i', di)}, {offset_text('j', dj)})")
    body = f" {combiner} ".join(calls)
    # Guard far enough from the boundary that every descent stays in
    # the domain (offsets reach -2).
    src = (
        "int f(seq[en] s, index[s] i, seq[en] t, index[t] j) =\n"
        "  if i < 2 then i + j\n"
        "  else if j < 2 then i + j\n"
        f"  else ({body}) + 1"
    )
    return src


@settings(deadline=None, max_examples=25)
@given(
    src=recursion_programs(),
    s_text=st.text(alphabet="abc", min_size=2, max_size=6),
    t_text=st.text(alphabet="abc", min_size=2, max_size=6),
)
def test_random_recurrences_agree(src, s_text, t_text):
    func = check_function(parse_function(src), EN)
    bindings = {"s": Sequence(s_text, ENGLISH),
                "t": Sequence(t_text, ENGLISH)}
    bound = Bindings(dict(bindings))
    domain = Domain(func.dim_names, domain_extents(func, bound))

    engine = Engine()
    try:
        run = engine.run(func, bindings)
    except ScheduleError:
        # If the solver says no schedule exists, the enumerative
        # solver must agree.
        from repro.schedule.solver import find_schedule

        with pytest.raises(ScheduleError):
            find_schedule(func, domain, solver="enumerative")
        return

    oracle = memoised(func, bound)
    for point in domain.points():
        assert run.table[point] == oracle(point), (src, point)

    # Lock-step execution must pass the barrier check too.
    LockStepExecutor(func, run.schedule, bound, domain).run()


@settings(deadline=None, max_examples=15)
@given(
    s_text=st.text(alphabet="ab", min_size=0, max_size=8),
    t_text=st.text(alphabet="ab", min_size=0, max_size=8),
)
def test_edit_distance_metric_properties(s_text, t_text):
    """The synthesised edit distance is a genuine metric."""
    src = (
        "int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =\n"
        "  if i == 0 then j else if j == 0 then i\n"
        "  else if s[i-1] == t[j-1] then d(i-1, j-1)\n"
        "  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1"
    )
    func = check_function(parse_function(src), EN)
    engine = Engine()

    def distance(a, b):
        return engine.run(
            func,
            {"s": Sequence(a, ENGLISH), "t": Sequence(b, ENGLISH)},
        ).value

    d_st = distance(s_text, t_text)
    assert d_st >= 0
    assert (d_st == 0) == (s_text == t_text)
    assert d_st == distance(t_text, s_text)
    assert abs(len(s_text) - len(t_text)) <= d_st
    assert d_st <= max(len(s_text), len(t_text))
