"""Paper-scale functional validation (vector backend).

The figure benchmarks price paper-scale workloads analytically; this
suite *computes* mid-scale instances end to end and checks them
against the independent NumPy references, so the functional path is
trusted well beyond toy sizes.
"""

import numpy as np
import pytest

from repro.apps.baselines.hmm_tools import forward_reference
from repro.apps.baselines.ssearch import sw_table
from repro.apps.gene_finder import GeneFinder
from repro.apps.smith_waterman import SmithWaterman
from repro.runtime.engine import Engine
from repro.runtime.sequences import random_dna, random_protein


class TestSmithWatermanAtScale:
    @pytest.mark.parametrize("size", [300, 600])
    def test_full_table_matches_reference(self, size):
        sw = SmithWaterman(engine=Engine(backend="vector"))
        query = random_protein(size, seed=41)
        target = random_protein(size, seed=42)
        result = sw.align(query, target)
        reference = sw_table(
            query,
            target,
            sw.matrix.scores,
            sw.matrix.row_alphabet.index_table(),
            sw.matrix.col_alphabet.index_table(),
            sw.gap,
        )
        assert (result.table == reference).all()
        assert result.value == reference.max()

    def test_asymmetric_shapes(self):
        sw = SmithWaterman(engine=Engine(backend="vector"))
        query = random_protein(80, seed=43)
        target = random_protein(700, seed=44)
        result = sw.align(query, target)
        reference = sw_table(
            query, target, sw.matrix.scores,
            sw.matrix.row_alphabet.index_table(),
            sw.matrix.col_alphabet.index_table(), sw.gap,
        )
        assert result.value == reference.max()


class TestForwardAtScale:
    def test_kilobase_log_likelihood(self):
        finder = GeneFinder()
        read = random_dna(2_000, seed=45)
        ours = finder.log_likelihood(read)
        reference = forward_reference(finder.hmm, read)
        # The direct-space reference underflows to 0 around this
        # length; compare in log space against a scaled recomputation.
        import math

        assert math.isfinite(ours)
        if reference > 0:
            assert ours == pytest.approx(math.log(reference), rel=1e-9)
        else:
            # Underflow in the linear reference confirms why the
            # log-space representation exists (Section 3.2).
            assert ours < math.log(5e-324)

    def test_long_scan_values_finite(self):
        finder = GeneFinder()
        reads = [random_dna(800, seed=k) for k in range(3)]
        result = finder.scan(reads)
        for value in result.likelihoods:
            assert value >= 0.0
