"""Tests for the native C99 emitter (the compiled backend's source)."""

import pytest

from repro.ir.cbackend import (
    batched_eligibility,
    emit_native_source,
    entry_symbol,
    native_batched_param_spec,
    native_eligibility,
    native_param_spec,
    supports_window,
    value_ctype,
)
from repro.lang.errors import CodegenError
from repro.ir.kernel import build_kernel
from repro.lang.parser import parse_function
from repro.lang.typecheck import check_function
from repro.schedule.schedule import Schedule

EN = {"en": "abcdefghijklmnopqrstuvwxyz"}

EDIT_DISTANCE = """
int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1
"""

FORWARD = """
prob forward(hmm h, state[h] s, seq[*] x, index[x] i) =
  if i == 0 then (if s.isstart then 1.0 else 0.0)
  else (if s.isend then 1.0 else s.emission[x[i-1]])
    * sum(t in s.transitionsto : t.prob * forward(t.start, i - 1))
"""

ROW_MAJOR = """
int f(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i < 2 then i + j
  else if j < 2 then i + j
  else f(i-1, j) + 1
"""


def kernel_for(src, schedule, alphabets=EN):
    func = check_function(parse_function(src.strip()), alphabets)
    return build_kernel(func, schedule)


@pytest.fixture(scope="module")
def edit_kernel():
    return kernel_for(EDIT_DISTANCE, Schedule.of(i=1, j=1))


class TestEmission:
    def test_plain_entry_present(self, edit_kernel):
        text = emit_native_source(edit_kernel)
        assert f"void {entry_symbol(edit_kernel)}(" in text
        assert entry_symbol(edit_kernel) == "repro_d"

    def test_windowed_entry_for_diagonal(self, edit_kernel):
        """S = i + j gives window 2 on a rank-2 nest: the ring-buffer
        variant must be emitted alongside the plain entry."""
        assert supports_window(edit_kernel)
        text = emit_native_source(edit_kernel)
        assert "void repro_d_windowed(" in text
        assert "swin[" in text
        # window + 1 = 3 rows resident.
        assert "swin[3 * win_cols]" in text

    def test_partition_clamps_emitted(self, edit_kernel):
        """Replay support: both entries honour part_lo/part_hi."""
        text = emit_native_source(edit_kernel)
        assert "if (part_lo > _plo) _plo = part_lo;" in text
        assert "if (part_hi < _phi) _phi = part_hi;" in text

    def test_windowed_preload_for_mid_schedule_replay(self, edit_kernel):
        """A replay starting at part_lo > 0 must find its look-back
        rows in the ring: the emitter preloads them from the table."""
        text = emit_native_source(edit_kernel)
        assert "_pre" in text
        assert "_plo - 2" in text  # window partitions preloaded

    def test_table_type_matches_kind(self, edit_kernel):
        assert value_ctype(edit_kernel) == "long"
        forward = kernel_for(FORWARD, Schedule.of(s=0, i=1), {})
        assert value_ctype(forward) == "double"

    def test_openmp_pragma_is_opt_in(self, edit_kernel):
        plain = emit_native_source(edit_kernel)
        omp = emit_native_source(edit_kernel, openmp=True)
        assert "#pragma omp parallel for" not in plain
        assert "#pragma omp parallel for" in omp

    def test_helpers_match_scalar_prelude(self, edit_kernel):
        """The C helpers spell the exact formulas of the scalar
        backend's prelude, the basis of bitwise native/scalar parity."""
        text = emit_native_source(edit_kernel)
        assert "m + log(exp(a - m) + exp(b - m))" in text
        assert "x > 0.0 ? log(x) : -INFINITY" in text


class TestWindowColumn:
    def test_diagonal_ring_uses_first_dim(self, edit_kernel):
        """Under S = i + j the partition determines j from i, so the
        first dimension is a valid injective ring column."""
        text = emit_native_source(edit_kernel)
        assert "const long win_cols = ub_j + 1;" not in text
        assert "const long win_cols = ub_i + 1;" in text

    def test_row_major_ring_uses_space_dim(self):
        """Under S = i the i coordinate is constant within a
        partition — using it as the ring column would collide every
        cell of a row into one slot. The column must be the pure space
        dimension j (schedule coefficient zero)."""
        kernel = kernel_for(ROW_MAJOR, Schedule.of(i=1, j=0))
        assert kernel.window == 1
        assert supports_window(kernel)
        text = emit_native_source(kernel)
        assert "const long win_cols = ub_j + 1;" in text
        assert "swin[2 * win_cols]" in text


class TestEligibility:
    def test_edit_distance_eligible(self, edit_kernel):
        verdict = native_eligibility(edit_kernel)
        assert verdict.ok
        assert verdict.rule == "ok"
        assert "sliding window of 2" in verdict.detail

    def test_hmm_forward_eligible_without_window(self):
        kernel = kernel_for(FORWARD, Schedule.of(s=0, i=1), {})
        verdict = native_eligibility(kernel)
        assert verdict.ok
        assert not supports_window(kernel)
        assert "sliding window" not in verdict.detail

    def test_mutual_group_member_rejected(self):
        """Cross-table reads have no single-kernel C rendering."""
        from repro.ir import expr as ir
        import dataclasses

        kernel = kernel_for(EDIT_DISTANCE, Schedule.of(i=1, j=1))
        cross = ir.TableRead(
            indices=(ir.DimRef("i"), ir.DimRef("j")),
            table="other",
        )
        body = dataclasses.replace(kernel.body, cell=cross)
        kernel = dataclasses.replace(kernel, body=body)
        verdict = native_eligibility(kernel)
        assert not verdict.ok
        assert verdict.rule == "cross-table-read"


class TestParamSpec:
    def test_fixed_prefix(self, edit_kernel):
        params = native_param_spec(edit_kernel)
        names = [p.name for p in params]
        assert names[:3] == ["farr", "part_lo", "part_hi"]
        assert "ub_i" in names and "ub_j" in names

    def test_sequences_marshalled_as_i64(self, edit_kernel):
        params = {p.name: p for p in native_param_spec(edit_kernel)}
        assert params["seq_s"].kind == "i64[]"
        assert params["seq_s"].key == "seq_s"

    def test_hmm_context_arrays_present(self):
        kernel = kernel_for(FORWARD, Schedule.of(s=0, i=1), {})
        names = {p.name for p in native_param_spec(kernel)}
        assert {
            "hmm_h_tprob", "hmm_h_inoff", "hmm_h_inids",
            "hmm_h_emis", "hmm_h_symidx",
        } <= names

    def test_declaration_order_matches_spec(self, edit_kernel):
        """The C signature is rendered from the same spec the ctypes
        dispatcher marshals from; the emitted text must list the
        parameters in spec order."""
        text = emit_native_source(edit_kernel)
        params = native_param_spec(edit_kernel)
        decl = ", ".join(f"{p.ctext} {p.name}" for p in params)
        assert f"void repro_d({decl})" in text


class TestBatchedEmission:
    def test_batched_entry_present(self, edit_kernel):
        text = emit_native_source(edit_kernel)
        symbol = entry_symbol(edit_kernel, batched=True)
        assert symbol == "repro_d_batched"
        assert f"void {symbol}(" in text

    def test_windowed_batched_refused(self, edit_kernel):
        """The ring buffer is a per-problem residency optimisation;
        there is no windowed batched entry to name."""
        with pytest.raises(CodegenError):
            entry_symbol(edit_kernel, windowed=True, batched=True)

    def test_windowed_kernel_batches_via_plain_body(self, edit_kernel):
        assert supports_window(edit_kernel)
        verdict = batched_eligibility(edit_kernel)
        assert verdict.ok
        assert verdict.rule == "ok-plain-body"

    def test_plain_kernel_rule(self):
        kernel = kernel_for(FORWARD, Schedule.of(s=0, i=1), {})
        verdict = batched_eligibility(kernel)
        assert verdict.ok
        assert verdict.rule == "ok-batched"

    def test_cross_table_read_refused(self):
        from repro.ir import expr as ir
        import dataclasses

        kernel = kernel_for(EDIT_DISTANCE, Schedule.of(i=1, j=1))
        cross = ir.TableRead(
            indices=(ir.DimRef("i"), ir.DimRef("j")),
            table="other",
        )
        body = dataclasses.replace(kernel.body, cell=cross)
        kernel = dataclasses.replace(kernel, body=body)
        verdict = batched_eligibility(kernel)
        assert not verdict.ok
        assert verdict.rule == "cross-table-read"

    def test_ragged_tails_index_by_pad_strides(self, edit_kernel):
        """Members narrower than the padded batch table must stride
        by the pad extents, not their own ``ub + 1`` — otherwise a
        ragged member reads its neighbour's rows."""
        text = emit_native_source(edit_kernel)
        body = text[text.index("repro_d_batched"):]
        assert "long* farr = btab + _b * _tsz;" in body
        assert "* (pad_j) +" in body
        assert "* (ub_j + 1) +" not in body

    def test_per_member_bound_columns(self, edit_kernel):
        """Each batch member shadows its own bounds and sequences
        from the (B,)-shaped columns before running its exact nest."""
        text = emit_native_source(edit_kernel)
        body = text[text.index("repro_d_batched"):]
        assert "const long ub_i = b_ub_i[_b];" in body
        assert "const long ub_j = b_ub_j[_b];" in body
        assert "const long* seq_s = b_seq_s + _b * b_seq_s_cols;" in body

    def test_openmp_outer_loop_only(self, edit_kernel):
        """With OpenMP on, the batched entry parallelises the problem
        loop; the member nests inside stay serial (determinism: each
        member's cells execute in exact serial order)."""
        omp = emit_native_source(edit_kernel, openmp=True)
        batched = omp[omp.index("repro_d_batched"):]
        assert (
            "#pragma omp parallel for schedule(static)\n"
            "  for (long _b = 0; _b < nprob; _b++)" in batched
        )
        # exactly one pragma in the batched entry
        assert batched.count("#pragma omp parallel for") == 1
        serial = emit_native_source(edit_kernel)
        assert "#pragma omp" not in serial[
            serial.index("repro_d_batched"):
        ]

    def test_thread_helpers_emitted(self, edit_kernel):
        """repro_set_threads/repro_max_threads ship in every TU, with
        serial stubs when the TU compiles without OpenMP."""
        text = emit_native_source(edit_kernel)
        assert "void repro_set_threads(long n)" in text
        assert "long repro_max_threads(void)" in text
        assert "#ifdef _OPENMP" in text

    def test_batched_spec_matches_declaration(self, edit_kernel):
        text = emit_native_source(edit_kernel)
        params = native_batched_param_spec(edit_kernel)
        decl = ", ".join(f"{p.ctext} {p.name}" for p in params)
        assert f"void repro_d_batched({decl})" in text

    def test_batched_spec_kinds(self, edit_kernel):
        params = native_batched_param_spec(edit_kernel)
        kinds = [p.kind for p in params]
        assert kinds[:2] == ["table", "nprob"]
        by_name = {p.name: p for p in params}
        assert by_name["pad_i"].kind == "pad"
        assert by_name["pad_j"].kind == "pad"
        assert by_name["b_ub_i"].key == "ub_i"
        assert by_name["b_seq_s"].key == "seq_s"
        assert by_name["b_seq_s_cols"].kind == "cols"
