"""Tests for the CUDA C emitter (Figure 10's template)."""

import pytest

from repro.ir.cuda import emit_cuda
from repro.ir.kernel import build_kernel
from repro.lang.parser import parse_function
from repro.lang.typecheck import check_function
from repro.schedule.schedule import Schedule

EN = {"en": "abcdefghijklmnopqrstuvwxyz"}
DNA = {"dna": "acgt"}

EDIT_DISTANCE = """
int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1
"""

FORWARD = """
prob forward(hmm h, state[h] s, seq[*] x, index[x] i) =
  if i == 0 then (if s.isstart then 1.0 else 0.0)
  else (if s.isend then 1.0 else s.emission[x[i-1]])
    * sum(t in s.transitionsto : t.prob * forward(t.start, i - 1))
"""


def cuda_for(src, schedule, alphabets=EN):
    func = check_function(parse_function(src.strip()), alphabets)
    return emit_cuda(build_kernel(func, schedule))


class TestTemplate:
    def test_global_kernel_signature(self):
        text = cuda_for(EDIT_DISTANCE, Schedule.of(i=1, j=1))
        assert "__global__ void d_kernel(" in text
        assert "long* farr" in text

    def test_thread_identity_preamble(self):
        """Figure 10: parfor threads t in 0..tn."""
        text = cuda_for(EDIT_DISTANCE, Schedule.of(i=1, j=1))
        assert "const int t = threadIdx.x;" in text
        assert "const int tn = blockDim.x;" in text

    def test_outer_space_loop_thread_strided(self):
        """Figure 10: i starts at lower+t and strides by tn."""
        text = cuda_for(EDIT_DISTANCE, Schedule.of(i=1, j=1))
        assert "+ t;" in text
        assert "i += tn" in text

    def test_sync_after_each_partition(self):
        text = cuda_for(EDIT_DISTANCE, Schedule.of(i=1, j=1))
        assert "__syncthreads();" in text
        # The sync is inside the time loop, once.
        assert text.count("__syncthreads();") == 1

    def test_time_loop_not_strided(self):
        text = cuda_for(EDIT_DISTANCE, Schedule.of(i=1, j=1))
        assert "p++" in text

    def test_table_linearised_row_major(self):
        text = cuda_for(EDIT_DISTANCE, Schedule.of(i=1, j=1))
        assert "(ub_j + 1)" in text

    def test_sequences_as_pointer_params(self):
        text = cuda_for(EDIT_DISTANCE, Schedule.of(i=1, j=1))
        assert "const long* seq_s" in text
        assert "const long* seq_t" in text


class TestHmmKernel:
    def test_reduce_loop_emitted(self):
        text = cuda_for(FORWARD, Schedule.of(s=0, i=1), DNA)
        assert "for (int _e = hmm_h_inoff[" in text
        assert "hmm_h_inids[_e];" in text

    def test_model_arrays_in_signature(self):
        text = cuda_for(FORWARD, Schedule.of(s=0, i=1), DNA)
        for piece in ("emis", "tprob", "tsrc", "inoff", "inids"):
            assert f"hmm_h_{piece}" in text

    def test_prob_table_is_double(self):
        text = cuda_for(FORWARD, Schedule.of(s=0, i=1), DNA)
        assert "double* farr" in text

    def test_state_loop_strided_for_forward(self):
        # With S = i, the space loop over states takes the threads.
        text = cuda_for(FORWARD, Schedule.of(s=0, i=1), DNA)
        assert "s += tn" in text


class TestHelpers:
    def test_ceild_floord_defined(self):
        text = cuda_for(EDIT_DISTANCE, Schedule.of(i=1, j=1))
        assert "#define ceild" in text
        assert "#define floord" in text

    def test_divisibility_guard_for_nonunit_pinned(self):
        text = cuda_for(EDIT_DISTANCE, Schedule.of(i=1, j=2))
        assert "% 2 == 0" in text
        assert "floord(" in text


class TestWindowedVariant:
    """Section 4.8's shared-memory ring buffer, as emitted CUDA."""

    def test_shared_ring_buffer_declared(self):
        from repro.ir.cuda import emit_cuda
        from repro.ir.kernel import build_kernel

        func = check_function(parse_function(EDIT_DISTANCE.strip()), EN)
        kernel = build_kernel(func, Schedule.of(i=1, j=1))
        text = emit_cuda(kernel, windowed=True)
        assert "extern __shared__" in text
        assert "swin[" in text
        assert "win_cols" in text
        assert "_kernel_windowed(" in text

    def test_reads_go_through_the_window(self):
        from repro.ir.cuda import emit_cuda
        from repro.ir.kernel import build_kernel

        func = check_function(parse_function(EDIT_DISTANCE.strip()), EN)
        kernel = build_kernel(func, Schedule.of(i=1, j=1))
        text = emit_cuda(kernel, windowed=True)
        # Ring of window + 1 = 3 rows; no global reads of farr remain.
        assert "% 3" in text
        assert "farr[(" not in text.split("swin")[0]

    def test_results_written_back_to_global(self):
        from repro.ir.cuda import emit_cuda
        from repro.ir.kernel import build_kernel

        func = check_function(parse_function(EDIT_DISTANCE.strip()), EN)
        kernel = build_kernel(func, Schedule.of(i=1, j=1))
        text = emit_cuda(kernel, windowed=True)
        assert "farr[" in text  # the write-back of the final window

    def test_windowed_rejected_without_uniform_descents(self):
        from repro.apps.rna_folding import nussinov_function
        from repro.ir.cuda import emit_cuda
        from repro.ir.kernel import build_kernel
        from repro.lang.errors import CodegenError

        kernel = build_kernel(nussinov_function(),
                              Schedule.of(i=-1, j=1))
        assert kernel.window is None
        with pytest.raises(CodegenError, match="uniform"):
            emit_cuda(kernel, windowed=True)

    def test_plain_variant_unchanged(self):
        from repro.ir.cuda import emit_cuda
        from repro.ir.kernel import build_kernel

        func = check_function(parse_function(EDIT_DISTANCE.strip()), EN)
        kernel = build_kernel(func, Schedule.of(i=1, j=1))
        text = emit_cuda(kernel)
        assert "swin" not in text
        assert "__global__ void d_kernel(" in text
