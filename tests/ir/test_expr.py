"""Tests for the IR node utilities: traversal and operation counts."""

import pytest

from repro.ir import expr as ir


def sample_tree():
    """(T[i-1,j] + s[i]) guarded by a select."""
    read = ir.TableRead((
        ir.Binary("-", ir.DimRef("i"), ir.Const(1, "int"), "int"),
        ir.DimRef("j"),
    ))
    seq = ir.SeqRead("s", ir.DimRef("i"))
    add = ir.Binary("+", read, seq, "int")
    cond = ir.Binary("==", ir.DimRef("i"), ir.Const(0, "int"), "bool")
    return ir.Select(cond, ir.Const(0, "int"), add)


class TestTraversal:
    def test_children_of_select(self):
        node = sample_tree()
        assert len(ir.children(node)) == 3

    def test_walk_visits_all(self):
        kinds = [type(n).__name__ for n in ir.walk(sample_tree())]
        assert "TableRead" in kinds
        assert "SeqRead" in kinds
        assert kinds[0] == "Select"  # pre-order

    def test_leaf_has_no_children(self):
        assert ir.children(ir.Const(1, "int")) == ()
        assert ir.children(ir.DimRef("i")) == ()

    def test_range_reduce_children(self):
        node = ir.RangeReduce(
            "max", "k", ir.DimRef("i"), ir.DimRef("j"),
            ir.VarRef("k"),
        )
        assert ir.children(node) == (
            ir.DimRef("i"), ir.DimRef("j"), ir.VarRef("k")
        )


class TestOpCounts:
    def test_sample_tree_counts(self):
        counts = ir.count_ops(sample_tree())
        assert counts.table_reads == 1
        assert counts.seq_reads == 1
        assert counts.select == 1
        assert counts.compare == 1
        assert counts.arith == 2  # the '-' in the index and the '+'

    def test_reduce_body_counted_separately(self):
        body = ir.Binary(
            "*", ir.TransField("prob", "h", ir.VarRef("t")),
            ir.TableRead((ir.VarRef("t"), ir.DimRef("i"))), "prob",
        )
        node = ir.ReduceLoop("sum", "t", "to", "h",
                             ir.DimRef("s"), body)
        counts = ir.count_ops(node)
        assert counts.reduce_count == 1
        assert counts.table_reads == 0  # outside the loop body
        assert counts.reduce_body.table_reads == 1
        assert counts.reduce_body.hmm_reads == 1

    def test_scaled_total_multiplies_iterations(self):
        body = ir.TableRead((ir.VarRef("k"),))
        node = ir.RangeReduce(
            "sum", "k", ir.Const(0, "int"), ir.DimRef("n"), body
        )
        counts = ir.count_ops(node)
        four = counts.scaled_total(4.0)
        ten = counts.scaled_total(10.0)
        assert four["table_reads"] == pytest.approx(4.0)
        assert ten["table_reads"] == pytest.approx(10.0)
        # Accumulator update counted once per iteration.
        assert ten["arith"] == pytest.approx(10.0)

    def test_logaddexp_counts_as_special(self):
        node = ir.Binary(
            "logaddexp", ir.Const(0.0, "float"),
            ir.Const(0.0, "float"), "prob",
        )
        assert ir.count_ops(node).special == 1

    def test_log_counts_as_special(self):
        assert ir.count_ops(ir.Log(ir.DimRef("i"))).special == 1


class TestStr:
    def test_readable_rendering(self):
        text = str(sample_tree())
        assert "farr[" in text
        assert "?" in text

    def test_range_reduce_str(self):
        node = ir.RangeReduce(
            "max", "k", ir.DimRef("i"), ir.DimRef("j"),
            ir.VarRef("k"),
        )
        assert "k in i .. j" in str(node)
