"""Tests for the compiled mutual-group backend."""

import numpy as np
import pytest

from repro.lang.errors import RuntimeDslError
from repro.lang.parser import parse_program
from repro.lang.typecheck import check_program
from repro.runtime.mutual import solve_mutual
from repro.runtime.values import Bindings

PING_PONG = """
int f(int n) = if n == 0 then 0 else g(n - 1) + 1
int g(int n) = if n == 0 then 0 else f(n - 1) + 2
"""


def funcs_of(src, names):
    checked = check_program(parse_program(src))
    return {name: checked.function(name) for name in names}


class TestCompiledGroup:
    def test_matches_interpreted_engines(self):
        funcs = funcs_of(PING_PONG, ("f", "g"))
        bindings = {"f": Bindings({}), "g": Bindings({})}
        initial = {"f": {"n": 15}, "g": {"n": 15}}
        by_engine = {
            engine: solve_mutual(
                funcs, bindings, initial=initial, engine=engine
            )
            for engine in ("compiled", "lockstep", "serial")
        }
        reference = by_engine["serial"].tables
        for engine, result in by_engine.items():
            for name in funcs:
                assert (result.tables[name] == reference[name]).all(), (
                    engine, name
                )

    def test_generated_source_structure(self):
        from repro.ir.groupbackend import emit_group_source
        from repro.ir.kernel import build_kernel
        from repro.analysis.domain import Domain
        from repro.schedule.mutual_rec import find_mutual_schedules

        funcs = funcs_of(PING_PONG, ("f", "g"))
        domains = {"f": Domain.of(n=8), "g": Domain.of(n=8)}
        mutual = find_mutual_schedules(funcs, domains)
        kernels = {
            name: build_kernel(
                func, mutual[name].schedule, compute_window=False
            )
            for name, func in funcs.items()
        }
        source = emit_group_source(kernels, mutual)
        assert "def _step_f(" in source
        assert "def _step_g(" in source
        assert "T_g[" in source  # f's cross-read of g's table
        assert "for _gp in range(global_lo, global_hi + 1):" in source

    def test_cross_table_reads_tagged(self):
        from repro.ir import expr as ir
        from repro.ir.lower import lower_function

        funcs = funcs_of(PING_PONG, ("f", "g"))
        body = lower_function(funcs["f"])
        tagged = [
            n for n in ir.walk(body.cell)
            if isinstance(n, ir.TableRead) and n.table
        ]
        assert len(tagged) == 1
        assert tagged[0].table == "g"

    def test_unknown_engine_rejected(self):
        funcs = funcs_of(PING_PONG, ("f", "g"))
        bindings = {"f": Bindings({}), "g": Bindings({})}
        with pytest.raises(RuntimeDslError, match="unknown mutual"):
            solve_mutual(
                funcs, bindings,
                initial={"f": {"n": 3}, "g": {"n": 3}},
                engine="quantum",
            )

    def test_gotoh_compiled_at_scale(self):
        """The compiled path handles sizes the interpreters cannot."""
        from repro.apps.gotoh import GotohAligner, gotoh_reference
        from repro.runtime.values import ENGLISH, Sequence

        aligner = GotohAligner()
        a = Sequence("gattaca" * 8, ENGLISH)
        b = Sequence("gcatgcu" * 8, ENGLISH)
        bindings = {
            name: Bindings({"s": a, "t": b})
            for name in aligner.funcs
        }
        result = solve_mutual(
            aligner.funcs, bindings,
            coeff_bound=1, offset_bound=1, engine="compiled",
        )
        score = max(
            int(result.value(name, (len(a), len(b))))
            for name in aligner.funcs
        )
        assert score == gotoh_reference(a, b)
