"""Tests for lowering DSL bodies to the kernel IR."""

import math

import pytest

from repro.ir import expr as ir
from repro.ir.lower import lower_function
from repro.lang.errors import AnalysisError
from repro.lang.parser import parse_function
from repro.lang.typecheck import check_function

EN = {"en": "abcdefghijklmnopqrstuvwxyz"}
DNA = {"dna": "acgt"}

EDIT_DISTANCE = """
int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1
"""

FORWARD = """
prob forward(hmm h, state[h] s, seq[*] x, index[x] i) =
  if i == 0 then (if s.isstart then 1.0 else 0.0)
  else (if s.isend then 1.0 else s.emission[x[i-1]])
    * sum(t in s.transitionsto : t.prob * forward(t.start, i - 1))
"""


def lowered(src, alphabets=EN, mode="direct"):
    func = check_function(parse_function(src.strip()), alphabets)
    return lower_function(func, prob_mode=mode)


class TestStructure:
    def test_calls_become_table_reads(self):
        body = lowered(EDIT_DISTANCE)
        reads = [
            n for n in ir.walk(body.cell) if isinstance(n, ir.TableRead)
        ]
        assert len(reads) == 4

    def test_branches_become_selects(self):
        body = lowered(EDIT_DISTANCE)
        selects = [
            n for n in ir.walk(body.cell) if isinstance(n, ir.Select)
        ]
        assert len(selects) == 3

    def test_char_literals_become_codes(self):
        body = lowered(
            "int f(seq[en] s, index[s] i) = "
            "if s[i] == 'a' then 1 else 0"
        )
        consts = [
            n.value
            for n in ir.walk(body.cell)
            if isinstance(n, ir.Const)
        ]
        assert ord("a") in consts

    def test_return_kind(self):
        assert lowered(EDIT_DISTANCE).return_kind == "int"
        assert lowered(FORWARD, DNA).return_kind == "prob"

    def test_reduce_becomes_loop(self):
        body = lowered(FORWARD, DNA)
        loops = [
            n for n in ir.walk(body.cell)
            if isinstance(n, ir.ReduceLoop)
        ]
        assert len(loops) == 1
        assert loops[0].source == "to"
        assert loops[0].kind == "sum"

    def test_scalar_param_becomes_argref(self):
        body = lowered("float f(float g, seq[en] s, index[s] i) = g")
        assert isinstance(body.cell, ir.ArgRef)

    def test_int_division_kind(self):
        body = lowered("int f(int n) = n / 2")
        assert isinstance(body.cell, ir.Binary)
        assert body.cell.kind == "int"


class TestLogspace:
    def test_prob_literal_becomes_log(self):
        body = lowered(FORWARD, DNA, mode="logspace")
        consts = [
            n.value
            for n in ir.walk(body.cell)
            if isinstance(n, ir.Const) and isinstance(n.value, float)
        ]
        assert 0.0 in consts            # log(1.0)
        assert float("-inf") in consts  # log(0.0)

    def test_multiplication_becomes_addition(self):
        body = lowered(FORWARD, DNA, mode="logspace")
        ops = [
            n.op for n in ir.walk(body.cell) if isinstance(n, ir.Binary)
        ]
        assert "+" in ops
        assert "*" not in ops

    def test_sum_reduce_is_logspace(self):
        body = lowered(FORWARD, DNA, mode="logspace")
        (loop,) = [
            n for n in ir.walk(body.cell)
            if isinstance(n, ir.ReduceLoop)
        ]
        assert loop.logspace

    def test_direct_sum_reduce_is_linear(self):
        body = lowered(FORWARD, DNA, mode="direct")
        (loop,) = [
            n for n in ir.walk(body.cell)
            if isinstance(n, ir.ReduceLoop)
        ]
        assert not loop.logspace

    def test_prob_addition_becomes_logaddexp(self):
        body = lowered(
            "prob f(hmm h, state[h] s, seq[*] x, index[x] i) = "
            "s.emission[x[i]] + s.emission[x[i]]",
            DNA,
            mode="logspace",
        )
        assert isinstance(body.cell, ir.Binary)
        assert body.cell.op == "logaddexp"

    def test_prob_subtraction_rejected_in_logspace(self):
        with pytest.raises(AnalysisError, match="log space"):
            lowered(
                "prob f(hmm h, state[h] s, seq[*] x, index[x] i) = "
                "s.emission[x[i]] - s.emission[x[i]]",
                DNA,
                mode="logspace",
            )

    def test_unknown_mode_rejected(self):
        func = check_function(
            parse_function("int f(int n) = n"), {}
        )
        from repro.ir.lower import lower_function as lf

        with pytest.raises(ValueError, match="unknown probability"):
            lf(func, prob_mode="nope")


class TestOpCounts:
    def test_edit_distance_counts(self):
        counts = lowered(EDIT_DISTANCE).counts
        assert counts.table_reads == 4
        assert counts.seq_reads == 2
        assert counts.select == 3
        assert counts.compare == 3

    def test_forward_reduce_counts(self):
        counts = lowered(FORWARD, DNA).counts
        assert counts.reduce_count == 1
        assert counts.reduce_body is not None
        assert counts.reduce_body.table_reads == 1

    def test_scaled_total_weights_reduce(self):
        counts = lowered(FORWARD, DNA).counts
        light = counts.scaled_total(1.0)
        heavy = counts.scaled_total(4.0)
        assert heavy["table_reads"] > light["table_reads"]

    def test_scaled_total_without_reduce(self):
        counts = lowered(EDIT_DISTANCE).counts
        totals = counts.scaled_total(10.0)
        assert totals["table_reads"] == 4
