"""Tests for the vectorised NumPy backend."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ir.kernel import build_kernel
from repro.ir.npbackend import (
    compile_vector_kernel,
    eligibility,
    eligible,
    emit_vector_source,
)
from repro.ir.pybackend import compile_kernel
from repro.lang.errors import CodegenError
from repro.lang.parser import parse_function
from repro.lang.typecheck import check_function
from repro.runtime.engine import Engine
from repro.runtime.values import ENGLISH, DNA, Sequence
from repro.schedule.schedule import Schedule

EN = {"en": ENGLISH.chars}

EDIT_DISTANCE = """
int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1
"""

FORWARD = """
prob forward(hmm h, state[h] s, seq[*] x, index[x] i) =
  if i == 0 then (if s.isstart then 1.0 else 0.0)
  else (if s.isend then 1.0 else s.emission[x[i-1]])
    * sum(t in s.transitionsto : t.prob * forward(t.start, i - 1))
"""


def checked(src, alphabets=EN):
    return check_function(parse_function(src.strip()), alphabets)


class TestEligibility:
    def test_edit_distance_eligible(self):
        kernel = build_kernel(checked(EDIT_DISTANCE),
                              Schedule.of(i=1, j=1))
        assert eligible(kernel)

    def test_reduce_kernels_eligible(self):
        """Reductions vectorise as masked lane-uniform loops."""
        kernel = build_kernel(
            checked(FORWARD, {"dna": DNA.chars}), Schedule.of(s=0, i=1)
        )
        assert eligible(kernel)
        verdict = eligibility(kernel)
        assert verdict.rule == "ok"
        assert "masked lane-uniform" in verdict.detail

    def test_one_dimensional_not_eligible(self):
        kernel = build_kernel(
            checked("int f(int n) = if n == 0 then 0 else f(n-1) + 1"),
            Schedule.of(n=1),
        )
        assert not eligible(kernel)

    def test_non_unit_pin_not_eligible(self):
        kernel = build_kernel(checked(EDIT_DISTANCE),
                              Schedule.of(i=1, j=2))
        assert not eligible(kernel)

    def test_ineligible_emit_raises(self):
        kernel = build_kernel(
            checked("int f(int n) = if n == 0 then 0 else f(n-1) + 1"),
            Schedule.of(n=1),
        )
        with pytest.raises(CodegenError, match="not eligible"):
            emit_vector_source(kernel)


class TestAgreement:
    def _run_both(self, func, schedule, ctx, extents, dtype=np.int64):
        kernel = build_kernel(func, schedule)
        scalar_fn, _ = compile_kernel(kernel)
        vector_fn, _ = compile_vector_kernel(kernel)
        a = np.zeros(extents, dtype=dtype)
        b = np.zeros(extents, dtype=dtype)
        scalar_fn(a, dict(ctx))
        vector_fn(b, dict(ctx))
        return a, b

    def test_edit_distance_tables_identical(self):
        func = checked(EDIT_DISTANCE)
        s = Sequence("kitten", ENGLISH)
        t = Sequence("sitting", ENGLISH)
        ctx = {"ub_i": 6, "ub_j": 7, "seq_s": s.codes,
               "seq_t": t.codes}
        a, b = self._run_both(func, Schedule.of(i=1, j=1), ctx, (7, 8))
        assert (a == b).all()

    def test_row_schedule_agrees(self):
        """S = i pins nothing vectorisable... S=(0,1) pins j."""
        func = checked(
            "int f(seq[en] s, index[s] i, seq[en] t, index[t] j) = "
            "if j == 0 then i else f(i, j-1) + 1"
        )
        s = Sequence("abc", ENGLISH)
        t = Sequence("abcd", ENGLISH)
        ctx = {"ub_i": 3, "ub_j": 4, "seq_s": s.codes,
               "seq_t": t.codes}
        a, b = self._run_both(func, Schedule.of(i=0, j=1), ctx, (4, 5))
        assert (a == b).all()

    @settings(deadline=None, max_examples=15)
    @given(
        s_text=st.text(alphabet="abc", min_size=1, max_size=8),
        t_text=st.text(alphabet="abc", min_size=1, max_size=8),
    )
    def test_random_strings(self, s_text, t_text):
        func = checked(EDIT_DISTANCE)
        s = Sequence(s_text, ENGLISH)
        t = Sequence(t_text, ENGLISH)
        ctx = {
            "ub_i": len(s), "ub_j": len(t),
            "seq_s": s.codes, "seq_t": t.codes,
        }
        a, b = self._run_both(
            func, Schedule.of(i=1, j=1), ctx,
            (len(s) + 1, len(t) + 1),
        )
        assert (a == b).all()

    def test_positive_offset_descent_clamped(self):
        """Descents towards larger indices stress the index clamp."""
        func = checked(
            "int f(seq[en] s, index[s] i, seq[en] t, index[t] j) = "
            "if i >= 3 then j else if j == 0 then i "
            "else f(i+1, j-1) + 1"
        )
        s = Sequence("abc", ENGLISH)
        t = Sequence("abcd", ENGLISH)
        ctx = {"ub_i": 3, "ub_j": 4, "seq_s": s.codes,
               "seq_t": t.codes}
        a, b = self._run_both(
            func, Schedule.of(i=-1, j=1), ctx, (4, 5)
        )
        assert (a == b).all()


class TestClampHelpers:
    """The prelude's clamped index/gather helpers.

    ``np.where`` evaluates both arms eagerly, so the emitter clamps
    every gather index into range; a clamped read is only ever fed to
    lanes a guard discards. These pin the helpers' edge cases.
    """

    @pytest.fixture(scope="class")
    def prelude(self):
        from repro.ir import npbackend

        namespace = {}
        exec(npbackend._PRELUDE, namespace)
        exec(npbackend._BATCH_PRELUDE, namespace)
        return namespace

    def test_ix_clamps_both_ends(self, prelude):
        index = np.array([-5, -1, 0, 3, 7, 99])
        clamped = prelude["_ix"](index, 7)
        assert clamped.tolist() == [0, 0, 0, 3, 7, 7]

    def test_gather_negative_indices_clamp_to_first(self, prelude):
        arr = np.array([10, 20, 30])
        out = prelude["_gather"](arr, np.array([-3, -1, 0, 2, 9]))
        assert out.tolist() == [10, 10, 10, 30, 30]

    def test_gather_empty_sequence_yields_zeros(self, prelude):
        out = prelude["_gather"](
            np.array([], dtype=np.int64), np.array([-1, 0, 4])
        )
        assert out.tolist() == [0, 0, 0]
        assert out.shape == (3,)

    def test_bgather_pads_and_clamps(self, prelude):
        arr = np.array([[1, 2, 3], [4, 0, 0]])  # row 1 has length 1
        b = np.array([0, 1, 1])
        out = prelude["_bgather"](arr, b, np.array([2, -1, 9]))
        assert out.tolist() == [3, 4, 0]

    def test_bgather_empty_padded_array(self, prelude):
        arr = np.zeros((2, 0), dtype=np.int64)
        out = prelude["_bgather"](
            arr, np.array([0, 1]), np.array([0, 5])
        )
        assert out.tolist() == [0, 0]

    def test_bstore_skips_invalid_lanes(self, prelude):
        table = np.zeros((2, 3, 3), dtype=np.int64)
        b = np.array([0, 0, 1, 1])
        i0 = np.array([1, 2, 1, 2])
        i1 = np.array([1, 2, 1, 2])
        valid = np.array([True, False, True, False])
        prelude["_bstore"](table, b, i0, i1, valid, 7)
        assert table[0, 1, 1] == 7 and table[1, 1, 1] == 7
        assert table.sum() == 14  # the invalid lanes stayed zero

    def test_clamped_reads_only_feed_discarded_lanes(self):
        """Empty-sequence end to end: every gather is clamped, yet
        the vector table matches scalar bitwise because clamp output
        only reaches guard-discarded lanes."""
        func = checked(EDIT_DISTANCE)
        empty = Sequence("", ENGLISH)
        t = Sequence("abc", ENGLISH)
        a = Engine(backend="scalar").run(func, {"s": empty, "t": t})
        b = Engine(backend="vector").run(func, {"s": empty, "t": t})
        assert a.value == b.value == 3
        assert a.table.tobytes() == b.table.tobytes()


VITERBI = """
prob viterbi(hmm h, state[h] s, seq[*] x, index[x] i) =
  if i == 0 then (if s.isstart then 1.0 else 0.0)
  else (if s.isend then 1.0 else s.emission[x[i-1]])
    * max(t in s.transitionsto : t.prob * viterbi(t.start, i - 1))
"""


class TestReductionAgreement:
    """Scalar vs vector on reduction kernels, both probability modes."""

    @pytest.fixture(scope="class")
    def hmm(self):
        from repro.apps.profile_hmm import tk_model

        return tk_model()

    @pytest.fixture(scope="class")
    def sequence(self):
        from repro.runtime.sequences import random_protein

        return random_protein(12, seed=5)

    @pytest.mark.parametrize("source", [FORWARD, VITERBI],
                             ids=["forward", "viterbi"])
    @pytest.mark.parametrize("mode", ["direct", "logspace"])
    def test_scalar_vector_agree(self, hmm, sequence, source, mode):
        func = checked(source, {})
        bindings = {"h": hmm, "x": sequence}
        a = Engine(backend="scalar", prob_mode=mode).run(
            func, dict(bindings)
        )
        b = Engine(backend="vector", prob_mode=mode).run(
            func, dict(bindings)
        )
        if mode == "direct":
            assert a.table.tobytes() == b.table.tobytes()
        else:
            assert np.allclose(
                a.table, b.table, rtol=1e-9, atol=1e-12,
                equal_nan=True,
            )
        assert np.isclose(a.value, b.value, rtol=1e-9, atol=1e-12)

    def test_range_reduce_agrees(self):
        """Nussinov-style range reductions take the vector path."""
        from repro.apps.rna_folding import RNA, RnaFolding

        scalar = RnaFolding(engine=Engine(backend="scalar"))
        vector = RnaFolding(engine=Engine(backend="vector"))
        rna = Sequence("gcaucgauggcua", RNA)
        a = scalar.fold(rna)
        b = vector.fold(rna)
        assert a.score == b.score
        assert a.pairs == b.pairs
        assert a.run.table.tobytes() == b.run.table.tobytes()


class TestEngineIntegration:
    def test_auto_uses_vector_for_eligible(self, monkeypatch):
        # Without a C toolchain the auto ladder's next rung is vector.
        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        engine = Engine(backend="auto")
        func = checked(EDIT_DISTANCE)
        compiled = engine.compile(func, Schedule.of(i=1, j=1))
        assert "np.arange" in compiled.source

    def test_auto_vectorises_hmm(self, monkeypatch):
        """Reduction kernels now take the vector path under auto."""
        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        engine = Engine(backend="auto")
        func = checked(FORWARD, {"dna": DNA.chars})
        compiled = engine.compile(func, Schedule.of(s=0, i=1))
        assert compiled.backend == "vector"
        assert "np.arange" in compiled.source
        assert "np.where" in compiled.source  # masked accumulation

    def test_scalar_forced(self):
        engine = Engine(backend="scalar")
        func = checked(EDIT_DISTANCE)
        compiled = engine.compile(func, Schedule.of(i=1, j=1))
        assert "np.arange" not in compiled.source

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            Engine(backend="simd")

    def test_backends_cached_separately(self):
        func = checked(EDIT_DISTANCE)
        scalar = Engine(backend="scalar")
        scalar.compile(func, Schedule.of(i=1, j=1))
        vector = Engine(backend="vector")
        vector.compile(func, Schedule.of(i=1, j=1))
        assert scalar.cache_misses == vector.cache_misses == 1

    def test_forced_vector_on_ineligible_raises_with_rule(self):
        """The bugfix: forcing backend='vector' fails up front with
        the eligibility rule, not later with a crash mid-execution."""
        engine = Engine(backend="vector")
        func = checked(
            "int f(int n) = if n == 0 then 0 else f(n-1) + 1"
        )
        with pytest.raises(CodegenError, match=r"\[rank\]"):
            engine.compile(func, Schedule.of(n=1))

    def test_compiled_kernel_surfaces_eligibility(self):
        engine = Engine(backend="auto")
        compiled = engine.compile(
            checked(EDIT_DISTANCE), Schedule.of(i=1, j=1)
        )
        verdict = compiled.eligibility
        assert verdict.ok and verdict.rule == "ok"

    def test_scalar_fallback_surfaces_reason(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        engine = Engine(backend="auto")
        func = checked(
            "int f(int n) = if n == 0 then 0 else f(n-1) + 1"
        )
        compiled = engine.compile(func, Schedule.of(n=1))
        assert compiled.backend == "scalar"
        verdict = compiled.eligibility
        assert not verdict.ok
        assert verdict.rule == "rank"
        assert verdict.detail

    def test_results_identical_across_backends(self):
        func = checked(EDIT_DISTANCE)
        s = Sequence("saturday", ENGLISH)
        t = Sequence("sunday", ENGLISH)
        a = Engine(backend="scalar").run(func, {"s": s, "t": t})
        b = Engine(backend="vector").run(func, {"s": s, "t": t})
        assert a.value == b.value == 3
        assert (a.table == b.table).all()
