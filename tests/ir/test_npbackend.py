"""Tests for the vectorised NumPy backend."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ir.kernel import build_kernel
from repro.ir.npbackend import (
    compile_vector_kernel,
    eligible,
    emit_vector_source,
)
from repro.ir.pybackend import compile_kernel
from repro.lang.errors import CodegenError
from repro.lang.parser import parse_function
from repro.lang.typecheck import check_function
from repro.runtime.engine import Engine
from repro.runtime.values import ENGLISH, DNA, Sequence
from repro.schedule.schedule import Schedule

EN = {"en": ENGLISH.chars}

EDIT_DISTANCE = """
int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1
"""

FORWARD = """
prob forward(hmm h, state[h] s, seq[*] x, index[x] i) =
  if i == 0 then (if s.isstart then 1.0 else 0.0)
  else (if s.isend then 1.0 else s.emission[x[i-1]])
    * sum(t in s.transitionsto : t.prob * forward(t.start, i - 1))
"""


def checked(src, alphabets=EN):
    return check_function(parse_function(src.strip()), alphabets)


class TestEligibility:
    def test_edit_distance_eligible(self):
        kernel = build_kernel(checked(EDIT_DISTANCE),
                              Schedule.of(i=1, j=1))
        assert eligible(kernel)

    def test_reduce_kernels_not_eligible(self):
        kernel = build_kernel(
            checked(FORWARD, {"dna": DNA.chars}), Schedule.of(s=0, i=1)
        )
        assert not eligible(kernel)

    def test_one_dimensional_not_eligible(self):
        kernel = build_kernel(
            checked("int f(int n) = if n == 0 then 0 else f(n-1) + 1"),
            Schedule.of(n=1),
        )
        assert not eligible(kernel)

    def test_non_unit_pin_not_eligible(self):
        kernel = build_kernel(checked(EDIT_DISTANCE),
                              Schedule.of(i=1, j=2))
        assert not eligible(kernel)

    def test_ineligible_emit_raises(self):
        kernel = build_kernel(
            checked("int f(int n) = if n == 0 then 0 else f(n-1) + 1"),
            Schedule.of(n=1),
        )
        with pytest.raises(CodegenError, match="not eligible"):
            emit_vector_source(kernel)


class TestAgreement:
    def _run_both(self, func, schedule, ctx, extents, dtype=np.int64):
        kernel = build_kernel(func, schedule)
        scalar_fn, _ = compile_kernel(kernel)
        vector_fn, _ = compile_vector_kernel(kernel)
        a = np.zeros(extents, dtype=dtype)
        b = np.zeros(extents, dtype=dtype)
        scalar_fn(a, dict(ctx))
        vector_fn(b, dict(ctx))
        return a, b

    def test_edit_distance_tables_identical(self):
        func = checked(EDIT_DISTANCE)
        s = Sequence("kitten", ENGLISH)
        t = Sequence("sitting", ENGLISH)
        ctx = {"ub_i": 6, "ub_j": 7, "seq_s": s.codes,
               "seq_t": t.codes}
        a, b = self._run_both(func, Schedule.of(i=1, j=1), ctx, (7, 8))
        assert (a == b).all()

    def test_row_schedule_agrees(self):
        """S = i pins nothing vectorisable... S=(0,1) pins j."""
        func = checked(
            "int f(seq[en] s, index[s] i, seq[en] t, index[t] j) = "
            "if j == 0 then i else f(i, j-1) + 1"
        )
        s = Sequence("abc", ENGLISH)
        t = Sequence("abcd", ENGLISH)
        ctx = {"ub_i": 3, "ub_j": 4, "seq_s": s.codes,
               "seq_t": t.codes}
        a, b = self._run_both(func, Schedule.of(i=0, j=1), ctx, (4, 5))
        assert (a == b).all()

    @settings(deadline=None, max_examples=15)
    @given(
        s_text=st.text(alphabet="abc", min_size=1, max_size=8),
        t_text=st.text(alphabet="abc", min_size=1, max_size=8),
    )
    def test_random_strings(self, s_text, t_text):
        func = checked(EDIT_DISTANCE)
        s = Sequence(s_text, ENGLISH)
        t = Sequence(t_text, ENGLISH)
        ctx = {
            "ub_i": len(s), "ub_j": len(t),
            "seq_s": s.codes, "seq_t": t.codes,
        }
        a, b = self._run_both(
            func, Schedule.of(i=1, j=1), ctx,
            (len(s) + 1, len(t) + 1),
        )
        assert (a == b).all()

    def test_positive_offset_descent_clamped(self):
        """Descents towards larger indices stress the index clamp."""
        func = checked(
            "int f(seq[en] s, index[s] i, seq[en] t, index[t] j) = "
            "if i >= 3 then j else if j == 0 then i "
            "else f(i+1, j-1) + 1"
        )
        s = Sequence("abc", ENGLISH)
        t = Sequence("abcd", ENGLISH)
        ctx = {"ub_i": 3, "ub_j": 4, "seq_s": s.codes,
               "seq_t": t.codes}
        a, b = self._run_both(
            func, Schedule.of(i=-1, j=1), ctx, (4, 5)
        )
        assert (a == b).all()


class TestEngineIntegration:
    def test_auto_uses_vector_for_eligible(self):
        engine = Engine(backend="auto")
        func = checked(EDIT_DISTANCE)
        compiled = engine.compile(func, Schedule.of(i=1, j=1))
        assert "np.arange" in compiled.source

    def test_auto_falls_back_for_hmm(self):
        engine = Engine(backend="auto")
        func = checked(FORWARD, {"dna": DNA.chars})
        compiled = engine.compile(func, Schedule.of(s=0, i=1))
        assert "np.arange" not in compiled.source

    def test_scalar_forced(self):
        engine = Engine(backend="scalar")
        func = checked(EDIT_DISTANCE)
        compiled = engine.compile(func, Schedule.of(i=1, j=1))
        assert "np.arange" not in compiled.source

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            Engine(backend="simd")

    def test_backends_cached_separately(self):
        func = checked(EDIT_DISTANCE)
        scalar = Engine(backend="scalar")
        scalar.compile(func, Schedule.of(i=1, j=1))
        vector = Engine(backend="vector")
        vector.compile(func, Schedule.of(i=1, j=1))
        assert scalar.cache_misses == vector.cache_misses == 1

    def test_results_identical_across_backends(self):
        func = checked(EDIT_DISTANCE)
        s = Sequence("saturday", ENGLISH)
        t = Sequence("sunday", ENGLISH)
        a = Engine(backend="scalar").run(func, {"s": s, "t": t})
        b = Engine(backend="vector").run(func, {"s": s, "t": t})
        assert a.value == b.value == 3
        assert (a.table == b.table).all()
