"""Tests for the Python backend against the memoised oracle."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.domain import Domain
from repro.extensions.hmm import HmmBuilder
from repro.ir.kernel import build_kernel
from repro.ir.pybackend import compile_kernel, emit_kernel_source
from repro.lang.parser import parse_function
from repro.lang.typecheck import check_function
from repro.runtime.interpreter import memoised
from repro.runtime.values import Bindings, DNA, ENGLISH, Sequence
from repro.schedule.schedule import Schedule
from repro.schedule.solver import find_schedule

EN = {"en": ENGLISH.chars}

EDIT_DISTANCE = """
int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1
"""

FORWARD = """
prob forward(hmm h, state[h] s, seq[*] x, index[x] i) =
  if i == 0 then (if s.isstart then 1.0 else 0.0)
  else (if s.isend then 1.0 else s.emission[x[i-1]])
    * sum(t in s.transitionsto : t.prob * forward(t.start, i - 1))
"""


def checked(src, alphabets=EN):
    return check_function(parse_function(src.strip()), alphabets)


def run_kernel(func, schedule, ctx, extents, kind="int",
               prob_mode="direct"):
    kernel = build_kernel(func, schedule, prob_mode)
    fn, source = compile_kernel(kernel)
    dtype = np.int64 if kind == "int" else np.float64
    table = np.zeros(extents, dtype=dtype)
    fn(table, ctx)
    return table, source


def toy_hmm():
    return (
        HmmBuilder("h", DNA)
        .start("begin")
        .add_state("a_rich", {"a": 0.6, "c": 0.1, "g": 0.1, "t": 0.2})
        .add_state("g_rich", {"a": 0.1, "c": 0.2, "g": 0.6, "t": 0.1})
        .end("fin")
        .transition("begin", "a_rich", 0.6)
        .transition("begin", "g_rich", 0.4)
        .transition("a_rich", "a_rich", 0.7)
        .transition("a_rich", "g_rich", 0.2)
        .transition("a_rich", "fin", 0.1)
        .transition("g_rich", "g_rich", 0.6)
        .transition("g_rich", "a_rich", 0.3)
        .transition("g_rich", "fin", 0.1)
        .build()
    )


class TestEditDistance:
    def test_matches_oracle(self):
        func = checked(EDIT_DISTANCE)
        s = Sequence("kitten", ENGLISH)
        t = Sequence("sitting", ENGLISH)
        ctx = {
            "ub_i": len(s), "ub_j": len(t),
            "seq_s": s.codes, "seq_t": t.codes,
        }
        table, _ = run_kernel(
            func, Schedule.of(i=1, j=1), ctx, (len(s) + 1, len(t) + 1)
        )
        oracle = memoised(func, Bindings({"s": s, "t": t}))
        for i in range(len(s) + 1):
            for j in range(len(t) + 1):
                assert table[i, j] == oracle((i, j))

    def test_generated_source_is_deterministic(self):
        func = checked(EDIT_DISTANCE)
        kernel = build_kernel(func, Schedule.of(i=1, j=1))
        assert emit_kernel_source(kernel) == emit_kernel_source(kernel)

    @settings(deadline=None, max_examples=20)
    @given(
        s_text=st.text(alphabet="ab", min_size=0, max_size=6),
        t_text=st.text(alphabet="ab", min_size=0, max_size=6),
        coeffs=st.sampled_from([(1, 1), (2, 1), (1, 2)]),
    )
    def test_random_strings_any_valid_schedule(
        self, s_text, t_text, coeffs
    ):
        func = checked(EDIT_DISTANCE)
        s = Sequence(s_text, ENGLISH)
        t = Sequence(t_text, ENGLISH)
        ctx = {
            "ub_i": len(s), "ub_j": len(t),
            "seq_s": s.codes, "seq_t": t.codes,
        }
        table, _ = run_kernel(
            func, Schedule(("i", "j"), coeffs), ctx,
            (len(s) + 1, len(t) + 1),
        )
        oracle = memoised(func, Bindings({"s": s, "t": t}))
        assert table[len(s), len(t)] == oracle((len(s), len(t)))


class TestForward:
    def _context(self, hmm, x, logspace):
        arrays = hmm.arrays(logspace=logspace)
        return {
            "ub_s": hmm.n_states - 1,
            "ub_i": len(x),
            "seq_x": x.codes,
            "hmm_h_isstart": arrays.is_start,
            "hmm_h_isend": arrays.is_end,
            "hmm_h_emis": arrays.emissions,
            "hmm_h_symidx": arrays.sym_index,
            "hmm_h_tprob": arrays.trans_prob,
            "hmm_h_tsrc": arrays.trans_source,
            "hmm_h_ttgt": arrays.trans_target,
            "hmm_h_inoff": arrays.in_offsets,
            "hmm_h_inids": arrays.in_ids,
            "hmm_h_outoff": arrays.out_offsets,
            "hmm_h_outids": arrays.out_ids,
        }

    def test_direct_matches_oracle(self):
        func = checked(FORWARD, {"dna": DNA.chars})
        hmm = toy_hmm()
        x = Sequence("acgtgact", DNA)
        table, _ = run_kernel(
            func,
            Schedule.of(s=0, i=1),
            self._context(hmm, x, False),
            (hmm.n_states, len(x) + 1),
            kind="prob",
        )
        oracle = memoised(func, Bindings({"h": hmm, "x": x}))
        for s in range(hmm.n_states):
            for i in range(len(x) + 1):
                assert table[s, i] == pytest.approx(oracle((s, i)))

    def test_logspace_matches_direct(self):
        func = checked(FORWARD, {"dna": DNA.chars})
        hmm = toy_hmm()
        x = Sequence("acgtgactacgt", DNA)
        direct, _ = run_kernel(
            func, Schedule.of(s=0, i=1),
            self._context(hmm, x, False),
            (hmm.n_states, len(x) + 1), kind="prob",
        )
        logged, _ = run_kernel(
            func, Schedule.of(s=0, i=1),
            self._context(hmm, x, True),
            (hmm.n_states, len(x) + 1), kind="prob",
            prob_mode="logspace",
        )
        for s in range(hmm.n_states):
            for i in range(len(x) + 1):
                expected = direct[s, i]
                got = math.exp(logged[s, i]) if logged[s, i] != -math.inf \
                    else 0.0
                assert got == pytest.approx(expected, abs=1e-12)

    def test_logspace_survives_underflow(self):
        """Long sequences underflow doubles; log space does not."""
        func = checked(FORWARD, {"dna": DNA.chars})
        hmm = toy_hmm()
        x = Sequence("acgt" * 300, DNA)  # 1200 symbols
        logged, _ = run_kernel(
            func, Schedule.of(s=0, i=1),
            self._context(hmm, x, True),
            (hmm.n_states, len(x) + 1), kind="prob",
            prob_mode="logspace",
        )
        final = logged[hmm.end_state.index, len(x)]
        assert final < -1000.0           # deeply underflowed as prob
        assert final != -math.inf        # but perfectly representable


class TestGeneratedSource:
    def test_source_unpacks_only_referenced_names(self):
        func = checked(EDIT_DISTANCE)
        kernel = build_kernel(func, Schedule.of(i=1, j=1))
        source = emit_kernel_source(kernel)
        assert "seq_s" in source
        assert "hmm_" not in source
        assert "mat_" not in source

    def test_source_compiles(self):
        func = checked(EDIT_DISTANCE)
        kernel = build_kernel(func, Schedule.of(i=1, j=1))
        fn, source = compile_kernel(kernel)
        assert callable(fn)
        compile(source, "<check>", "exec")

    def test_scalar_args_threaded(self):
        func = checked("float f(float g, seq[en] s, index[s] i) = g")
        schedule = find_schedule(func, Domain.of(i=4))
        kernel = build_kernel(func, schedule)
        fn, _ = compile_kernel(kernel)
        table = np.zeros(4, dtype=np.float64)
        fn(table, {"ub_i": 3, "arg_g": 2.5})
        assert (table == 2.5).all()

    def test_guard_emitted_for_nonunit_pinned(self):
        func = checked(EDIT_DISTANCE)
        kernel = build_kernel(func, Schedule.of(i=1, j=2))
        source = emit_kernel_source(kernel)
        assert "% 2 == 0" in source
