"""Tests for the DSL tokeniser."""

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import Token, TokenKind, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)][:-1]  # drop EOF


def texts(text):
    return [t.text for t in tokenize(text)][:-1]


class TestBasics:
    def test_empty_input_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == TokenKind.EOF

    def test_integer(self):
        (tok,) = tokenize("42")[:-1]
        assert tok.kind == TokenKind.INT
        assert tok.text == "42"

    def test_float(self):
        (tok,) = tokenize("0.25")[:-1]
        assert tok.kind == TokenKind.FLOAT
        assert tok.text == "0.25"

    def test_float_with_exponent(self):
        (tok,) = tokenize("1.5e-3")[:-1]
        assert tok.kind == TokenKind.FLOAT
        assert tok.text == "1.5e-3"

    def test_int_then_dot_is_not_float(self):
        # 's.start' style accesses must not glue digits and dots.
        toks = texts("1 .start")
        assert toks == ["1", ".", "start"]

    def test_name(self):
        (tok,) = tokenize("forward")[:-1]
        assert tok.kind == TokenKind.NAME

    def test_name_with_underscore_and_digits(self):
        (tok,) = tokenize("x_1")[:-1]
        assert tok.kind == TokenKind.NAME
        assert tok.text == "x_1"

    def test_keyword(self):
        (tok,) = tokenize("if")[:-1]
        assert tok.kind == TokenKind.KEYWORD

    def test_string(self):
        (tok,) = tokenize('"kitten"')[:-1]
        assert tok.kind == TokenKind.STRING
        assert tok.text == "kitten"

    def test_char_literal(self):
        (tok,) = tokenize("'a'")[:-1]
        assert tok.kind == TokenKind.CHAR
        assert tok.text == "a"

    def test_two_char_symbols(self):
        assert texts("== != <= >= ->") == ["==", "!=", "<=", ">=", "->"]

    def test_maximal_munch_of_arrow(self):
        assert texts("a->b") == ["a", "->", "b"]

    def test_single_char_symbols(self):
        assert texts("( ) [ ] { } + - * / < > = , : . | _") == [
            "(", ")", "[", "]", "{", "}", "+", "-", "*", "/",
            "<", ">", "=", ",", ":", ".", "|", "_",
        ]


class TestTrivia:
    def test_line_comment_slash(self):
        assert texts("1 // comment\n2") == ["1", "2"]

    def test_line_comment_hash(self):
        assert texts("1 # comment\n2") == ["1", "2"]

    def test_whitespace_and_newlines(self):
        assert texts("a\n\t b") == ["a", "b"]

    def test_comment_at_end_of_input(self):
        assert texts("x // trailing") == ["x"]


class TestSpans:
    def test_line_and_column_tracking(self):
        tokens = tokenize("ab\n  cd")
        assert tokens[0].span.start.line == 1
        assert tokens[0].span.start.column == 1
        assert tokens[1].span.start.line == 2
        assert tokens[1].span.start.column == 3

    def test_span_end_is_exclusive(self):
        (tok,) = tokenize("abc")[:-1]
        assert tok.span.end.column == 4


class TestErrors:
    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_unterminated_string_at_newline(self):
        with pytest.raises(LexError):
            tokenize('"abc\ndef"')

    def test_bad_char_literal(self):
        with pytest.raises(LexError):
            tokenize("'ab'")

    def test_empty_char_literal(self):
        with pytest.raises(LexError):
            tokenize("''")


class TestHelpers:
    def test_is_symbol(self):
        (tok,) = tokenize("+")[:-1]
        assert tok.is_symbol("+")
        assert not tok.is_symbol("-")

    def test_is_keyword(self):
        (tok,) = tokenize("min")[:-1]
        assert tok.is_keyword("min")
        assert not tok.is_symbol("min")

    def test_str_of_eof(self):
        assert str(tokenize("")[-1]) == "end of input"


class TestFuzz:
    """The lexer is total over ASCII: tokens or LexError, nothing else."""

    def test_arbitrary_ascii_never_crashes(self):
        from hypothesis import given, settings, strategies as st

        @settings(deadline=None, max_examples=300)
        @given(st.text(
            alphabet=st.characters(min_codepoint=9, max_codepoint=126),
            max_size=40,
        ))
        def run(text):
            try:
                tokens = tokenize(text)
            except LexError:
                return
            assert tokens[-1].kind == TokenKind.EOF

        run()

    def test_token_texts_reassemble(self):
        from hypothesis import given, settings, strategies as st

        @settings(deadline=None, max_examples=200)
        @given(st.text(alphabet="abij+-*/()[]<>=:,. 0123456789",
                       max_size=30))
        def run(text):
            try:
                tokens = tokenize(text)
            except LexError:
                return
            # Space-joined token texts always re-lex cleanly (the
            # kinds may differ — '=' '=' re-lexes as '==').
            joined = " ".join(t.text for t in tokens[:-1])
            again = tokenize(joined)
            assert again[-1].kind == TokenKind.EOF

        run()
