"""Tests for the DSL parser."""

import pytest

from repro.lang import ast
from repro.lang.ast import BinOpKind
from repro.lang.errors import ParseError
from repro.lang.parser import parse_expr, parse_function, parse_program

EDIT_DISTANCE = """
alphabet en = "abcdefghijklmnopqrstuvwxyz"
int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1
"""


class TestExpressions:
    def test_integer_literal(self):
        expr = parse_expr("42")
        assert isinstance(expr, ast.IntLit)
        assert expr.value == 42

    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert isinstance(expr, ast.BinOp)
        assert expr.op == BinOpKind.ADD
        assert isinstance(expr.right, ast.BinOp)
        assert expr.right.op == BinOpKind.MUL

    def test_precedence_add_over_min(self):
        # Figure 7 parenthesises (a min b) + 1, so min binds looser.
        expr = parse_expr("a min b + 1")
        assert isinstance(expr, ast.BinOp)
        assert expr.op == BinOpKind.MIN
        assert isinstance(expr.right, ast.BinOp)
        assert expr.right.op == BinOpKind.ADD

    def test_min_left_associative(self):
        expr = parse_expr("a min b min c")
        assert expr.op == BinOpKind.MIN
        assert isinstance(expr.left, ast.BinOp)
        assert expr.left.op == BinOpKind.MIN

    def test_comparison_looser_than_arithmetic(self):
        expr = parse_expr("a + 1 == b * 2")
        assert expr.op == BinOpKind.EQ
        assert expr.left.op == BinOpKind.ADD
        assert expr.right.op == BinOpKind.MUL

    def test_unary_minus_desugars_to_subtraction(self):
        expr = parse_expr("-x")
        assert isinstance(expr, ast.BinOp)
        assert expr.op == BinOpKind.SUB
        assert isinstance(expr.left, ast.IntLit)
        assert expr.left.value == 0

    def test_if_then_else(self):
        expr = parse_expr("if a == 0 then 1 else 2")
        assert isinstance(expr, ast.If)
        assert isinstance(expr.cond, ast.BinOp)

    def test_nested_if_in_else(self):
        expr = parse_expr("if a == 0 then 1 else if b == 0 then 2 else 3")
        assert isinstance(expr.else_branch, ast.If)

    def test_call(self):
        expr = parse_expr("d(i - 1, j)")
        assert isinstance(expr, ast.Call)
        assert expr.func == "d"
        assert len(expr.args) == 2

    def test_call_no_args(self):
        expr = parse_expr("f()")
        assert isinstance(expr, ast.Call)
        assert expr.args == ()

    def test_sequence_index(self):
        expr = parse_expr("s[i - 1]")
        assert isinstance(expr, ast.SeqIndex)
        assert expr.seq == "s"

    def test_matrix_index(self):
        expr = parse_expr("m[s[i-1], t[j-1]]")
        assert isinstance(expr, ast.MatrixIndex)
        assert isinstance(expr.row, ast.SeqIndex)
        assert isinstance(expr.col, ast.SeqIndex)

    def test_field_access(self):
        expr = parse_expr("t.start")
        assert isinstance(expr, ast.Field)
        assert expr.name == "start"

    def test_chained_field_access(self):
        expr = parse_expr("t.start.isend")
        assert isinstance(expr, ast.Field)
        assert expr.name == "isend"
        assert isinstance(expr.subject, ast.Field)

    def test_emission(self):
        expr = parse_expr("s.emission[x[i-1]]")
        assert isinstance(expr, ast.Emission)
        assert isinstance(expr.symbol, ast.SeqIndex)

    def test_unknown_field_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("t.nonsense")

    def test_sum_reduction(self):
        expr = parse_expr("sum(t in s.transitionsto : t.prob)")
        assert isinstance(expr, ast.Reduce)
        assert expr.kind == ast.ReduceKind.SUM
        assert expr.var == "t"

    def test_min_reduction_vs_infix_min(self):
        reduction = parse_expr("min(t in s.transitionsto : t.prob)")
        assert isinstance(reduction, ast.Reduce)
        infix = parse_expr("a min (b + c)")
        assert isinstance(infix, ast.BinOp)
        assert infix.op == BinOpKind.MIN

    def test_max_reduction(self):
        expr = parse_expr("max(t in s.transitionsfrom : t.prob)")
        assert isinstance(expr, ast.Reduce)
        assert expr.kind == ast.ReduceKind.MAX

    def test_length_bars(self):
        expr = parse_expr("|s|")
        assert isinstance(expr, ast.Len)
        assert expr.seq == "s"

    def test_placeholder(self):
        expr = parse_expr("_")
        assert isinstance(expr, ast.Placeholder)

    def test_char_literal(self):
        expr = parse_expr("'a'")
        assert isinstance(expr, ast.CharLit)

    def test_bool_literals(self):
        assert parse_expr("true").value is True
        assert parse_expr("false").value is False

    def test_float_literal(self):
        expr = parse_expr("0.25")
        assert isinstance(expr, ast.FloatLit)

    def test_trailing_input_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("1 2")

    def test_missing_operand(self):
        with pytest.raises(ParseError):
            parse_expr("1 +")


class TestFunctionDefs:
    def test_edit_distance_shape(self):
        program = parse_program(EDIT_DISTANCE)
        func = program.function("d")
        assert func.name == "d"
        assert [p.name for p in func.params] == ["s", "i", "t", "j"]
        assert str(func.params[1].type) == "index[s]"
        assert isinstance(func.body, ast.If)

    def test_star_alphabet(self):
        func = parse_function("prob f(seq[*] x, index[x] i) = 1.0")
        assert func.params[0].type.args == ("*",)

    def test_hmm_param(self):
        func = parse_function(
            "prob f(hmm h, state[h] s, seq[*] x, index[x] i) = 1.0"
        )
        assert func.params[0].type.name == "hmm"
        assert func.params[1].type.name == "state"

    def test_matrix_param(self):
        func = parse_function(
            "int f(matrix[en, en] m, seq[en] s, index[s] i) = 0"
        )
        assert func.params[0].type.args == ("en", "en")

    def test_find_calls(self):
        program = parse_program(EDIT_DISTANCE)
        calls = ast.find_calls(program.function("d").body, "d")
        assert len(calls) == 4


class TestDeclarations:
    def test_alphabet(self):
        program = parse_program('alphabet dna = "acgt"')
        decl = program.statements[0]
        assert isinstance(decl, ast.AlphabetDecl)
        assert decl.chars == "acgt"

    def test_alphabet_duplicate_chars_rejected(self):
        with pytest.raises(ParseError):
            parse_program('alphabet bad = "aa"')

    def test_matrix(self):
        program = parse_program(
            """
            alphabet ab = "ab"
            matrix cost[ab, ab] {
              header a b
              default 1
              row a : 0 1
              row b : 1 0
            }
            """
        )
        decl = program.statements[1]
        assert isinstance(decl, ast.MatrixDecl)
        assert decl.header == ("a", "b")
        assert decl.default == 1
        assert decl.rows[0].values == (0, 1)

    def test_matrix_negative_values(self):
        program = parse_program(
            """
            alphabet ab = "ab"
            matrix cost[ab, ab] { header a b row a : -1 -2 row b : 3 -4 }
            """
        )
        decl = program.statements[1]
        assert decl.rows[0].values == (-1, -2)
        assert decl.rows[1].values == (3, -4)

    def test_hmm(self):
        program = parse_program(
            """
            alphabet dna = "acgt"
            hmm h [dna] {
              state begin : start
              state exon emits { a: 0.3, c: 0.2, g: 0.2, t: 0.3 }
              state fin : end
              trans begin -> exon : 1.0
              trans exon -> exon : 0.9
              trans exon -> fin : 0.1
            }
            """
        )
        decl = program.statements[1]
        assert isinstance(decl, ast.HmmDecl)
        assert len(decl.states) == 3
        assert decl.states[1].kind == "emit"
        assert dict(decl.states[1].emissions)["a"] == 0.3
        assert decl.transitions[0].prob == 1.0

    def test_schedule_decl(self):
        program = parse_program(
            EDIT_DISTANCE + "\nschedule d : i + j"
        )
        decl = program.statements[-1]
        assert isinstance(decl, ast.ScheduleDecl)
        assert decl.func == "d"


class TestScriptStatements:
    def test_let(self):
        program = parse_program('let s = "kitten"')
        stmt = program.statements[0]
        assert isinstance(stmt, ast.LetStmt)
        assert isinstance(stmt.value, ast.StrLit)

    def test_load(self):
        program = parse_program('load db = fasta("seqs.fa")')
        stmt = program.statements[0]
        assert isinstance(stmt, ast.LoadStmt)
        assert stmt.format == "fasta"
        assert stmt.path == "seqs.fa"

    def test_print(self):
        program = parse_program(EDIT_DISTANCE + '\nprint d("ab", 2, "ba", 2)')
        stmt = program.statements[-1]
        assert isinstance(stmt, ast.PrintStmt)
        assert isinstance(stmt.value, ast.Call)

    def test_map(self):
        program = parse_program(
            EDIT_DISTANCE + "\nlet q = \"abc\"\nmap out = d(q, |q|, _, |_|) over db"
        )
        stmt = program.statements[-1]
        assert isinstance(stmt, ast.MapStmt)
        assert stmt.over == "db"
        assert isinstance(stmt.template.args[2], ast.Placeholder)
        assert stmt.template.args[3].seq == "_"

    def test_parse_error_has_span(self):
        try:
            parse_program("int f( = 1")
        except ParseError as err:
            assert err.span is not None
        else:
            pytest.fail("expected ParseError")
