"""Tests for the range-reduction looping extension (Section 5)."""

import pytest

from repro.lang import ast
from repro.lang.errors import TypeCheckError
from repro.lang.parser import parse_expr, parse_function
from repro.lang.typecheck import check_function

EN = {"en": "abcdefghijklmnopqrstuvwxyz"}


class TestParsing:
    def test_range_reduction(self):
        expr = parse_expr("max(k in i+1 .. j-1 : k)")
        assert isinstance(expr, ast.Reduce)
        assert isinstance(expr.source, ast.RangeExpr)

    def test_range_bounds_are_expressions(self):
        expr = parse_expr("sum(k in 2*i .. j : k)")
        assert isinstance(expr.source.lo, ast.BinOp)

    def test_dots_lex_as_one_token(self):
        expr = parse_expr("sum(k in 1..3 : k)")
        assert isinstance(expr.source, ast.RangeExpr)
        assert expr.source.lo.value == 1
        assert expr.source.hi.value == 3

    def test_range_str(self):
        expr = parse_expr("sum(k in 1 .. 3 : k)")
        assert ".." in str(expr)


class TestTypechecking:
    def test_binder_is_int(self):
        func = check_function(
            parse_function("int f(int n) = sum(k in 0 .. n : k)")
        )
        assert func.return_type.is_numeric

    def test_non_integer_bounds_rejected(self):
        with pytest.raises(TypeCheckError, match="integers"):
            check_function(
                parse_function(
                    "int f(int n) = sum(k in 0 .. 1.5 : k)"
                )
            )

    def test_binder_usable_in_indexing(self):
        func = check_function(
            parse_function(
                "int f(seq[en] s, index[s] i) = "
                "sum(k in 0 .. i - 1 : if s[k] == 'a' then 1 else 0)"
            ),
            EN,
        )
        assert func.dim_names == ("i",)

    def test_range_binder_shadowing_rejected(self):
        with pytest.raises(TypeCheckError, match="shadows"):
            check_function(
                parse_function("int f(int n) = sum(n in 0 .. 3 : n)")
            )


class TestDescentAnalysis:
    def test_ranged_component(self):
        from repro.analysis.descent import extract_descents

        func = check_function(
            parse_function(
                "int f(int i, int j) = if j < i + 2 then 0 else "
                "max(k in i+1 .. j-1 : f(i, k) + f(k, j))"
            )
        )
        descents = extract_descents(func)
        assert len(descents) == 2
        first, second = descents
        assert first.component("j").is_ranged
        assert second.component("i").is_ranged
        assert not first.is_uniform
        (binder,) = first.binders
        assert binder.name == "k"
        assert str(binder.lo) == "i + 1"
        assert str(binder.hi) == "j - 1"

    def test_unused_binders_dropped(self):
        from repro.analysis.descent import extract_descents

        func = check_function(
            parse_function(
                "int f(int i) = if i == 0 then 0 else "
                "sum(k in 0 .. 3 : f(i - 1))"
            )
        )
        (descent,) = extract_descents(func)
        assert descent.binders == ()
        assert descent.is_uniform

    def test_interval_schedule_derived(self):
        from repro.analysis.domain import Domain
        from repro.schedule.schedule import Schedule, brute_force_valid
        from repro.schedule.solver import find_schedule

        func = check_function(
            parse_function(
                "int f(int i, int j) = if j < i + 2 then 0 else "
                "f(i+1, j) max f(i, j-1) max "
                "max(k in i+1 .. j-1 : f(i, k) + f(k, j))"
            )
        )
        domain = Domain.of(i=10, j=10)
        schedule = find_schedule(func, domain, solver="enumerative")
        assert schedule == Schedule.of(i=-1, j=1)
        assert brute_force_valid(schedule, func, domain)

    def test_invalid_schedule_detected_with_ranges(self):
        from repro.analysis.criteria import schedule_criteria
        from repro.analysis.domain import Domain
        from repro.schedule.schedule import Schedule

        func = check_function(
            parse_function(
                "int f(int i, int j) = if j < i + 2 then 0 else "
                "max(k in i+1 .. j-1 : f(i, k) + f(k, j))"
            )
        )
        criteria = schedule_criteria(func)
        domain = Domain.of(i=10, j=10)
        assert Schedule.of(i=-1, j=1).is_valid(criteria, domain)
        # S = i + j breaks the f(k, j) dependence: k > i raises the
        # partition of the callee above the caller's.
        assert not Schedule.of(i=1, j=1).is_valid(criteria, domain)

    def test_vacuous_range_criterion(self):
        """A range that is empty over the whole box never constrains."""
        from repro.analysis.criteria import schedule_criteria
        from repro.analysis.domain import Domain
        from repro.schedule.schedule import Schedule

        func = check_function(
            parse_function(
                "int f(int i, int j) = if i == 0 then 0 else "
                "f(i - 1, j) + sum(k in j + 5 .. j + 2 : f(i, k))"
            )
        )
        criteria = schedule_criteria(func)
        domain = Domain.of(i=6, j=6)
        # Only the f(i-1, j) dependence bites; S = i is fine even
        # though the (never-executed) range call mentions dimension j.
        assert Schedule.of(i=1, j=0).is_valid(criteria, domain)


class TestEvaluation:
    def test_interpreter_sum(self):
        from repro.runtime.interpreter import memoised
        from repro.runtime.values import Bindings

        func = check_function(
            parse_function("int f(int n) = sum(k in 1 .. n : k)")
        )
        call = memoised(func, Bindings({}))
        assert call((10,)) == 55

    def test_interpreter_empty_sum_is_zero(self):
        from repro.runtime.interpreter import memoised
        from repro.runtime.values import Bindings

        func = check_function(
            parse_function("int f(int n) = sum(k in 1 .. 0 - 1 : k)")
        )
        call = memoised(func, Bindings({}))
        assert call((0,)) == 0

    def test_compiled_kernel_matches_oracle(self):
        import numpy as np

        from repro.ir.kernel import build_kernel
        from repro.ir.pybackend import compile_kernel
        from repro.runtime.interpreter import memoised
        from repro.runtime.values import Bindings
        from repro.schedule.schedule import Schedule

        func = check_function(
            parse_function(
                "int f(int i, int j) = if j < i + 2 then 0 else "
                "1 + max(k in i+1 .. j-1 : f(i, k) + f(k, j))"
            )
        )
        kernel = build_kernel(func, Schedule.of(i=-1, j=1))
        fn, source = compile_kernel(kernel)
        assert "range(" in source
        table = np.zeros((8, 8), dtype=np.int64)
        fn(table, {"ub_i": 7, "ub_j": 7})
        oracle = memoised(func, Bindings({}))
        for i in range(8):
            for j in range(8):
                assert table[i, j] == oracle((i, j))

    def test_cuda_emits_range_loop(self):
        from repro.ir.cuda import emit_cuda
        from repro.ir.kernel import build_kernel
        from repro.schedule.schedule import Schedule

        func = check_function(
            parse_function(
                "int f(int i, int j) = if j < i + 2 then 0 else "
                "max(k in i+1 .. j-1 : f(i, k) + f(k, j))"
            )
        )
        text = emit_cuda(build_kernel(func, Schedule.of(i=-1, j=1)))
        assert "for (long k =" in text
