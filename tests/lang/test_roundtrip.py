"""Property: pretty-printed expressions re-parse to the same tree.

Every AST node has a readable ``__str__``; this suite checks the
renderings are *faithful* — ``parse(str(e))`` reproduces ``e`` up to
source spans — over randomly generated expression trees.
"""

from hypothesis import given, settings, strategies as st

from repro.lang import ast
from repro.lang.parser import parse_expr


def strip(expr: ast.Expr):
    """A span-free structural summary for comparison."""
    if isinstance(expr, ast.IntLit):
        return ("int", expr.value)
    if isinstance(expr, ast.BoolLit):
        return ("bool", expr.value)
    if isinstance(expr, ast.CharLit):
        return ("char", expr.value)
    if isinstance(expr, ast.Var):
        return ("var", expr.name)
    if isinstance(expr, ast.BinOp):
        return ("binop", expr.op, strip(expr.left), strip(expr.right))
    if isinstance(expr, ast.If):
        return (
            "if",
            strip(expr.cond),
            strip(expr.then_branch),
            strip(expr.else_branch),
        )
    if isinstance(expr, ast.Call):
        return ("call", expr.func, tuple(strip(a) for a in expr.args))
    if isinstance(expr, ast.SeqIndex):
        return ("seqindex", expr.seq, strip(expr.index))
    if isinstance(expr, ast.MatrixIndex):
        return ("matindex", expr.matrix, strip(expr.row),
                strip(expr.col))
    if isinstance(expr, ast.Field):
        return ("field", strip(expr.subject), expr.name)
    if isinstance(expr, ast.Emission):
        return ("emission", strip(expr.state), strip(expr.symbol))
    if isinstance(expr, ast.Reduce):
        return ("reduce", expr.kind, expr.var, strip(expr.source),
                strip(expr.body))
    if isinstance(expr, ast.RangeExpr):
        return ("range", strip(expr.lo), strip(expr.hi))
    raise TypeError(expr)


_ARITH = [
    ast.BinOpKind.ADD,
    ast.BinOpKind.SUB,
    ast.BinOpKind.MUL,
    ast.BinOpKind.DIV,
    ast.BinOpKind.MIN,
    ast.BinOpKind.MAX,
]
_COMPARE = [
    ast.BinOpKind.EQ,
    ast.BinOpKind.NE,
    ast.BinOpKind.LT,
    ast.BinOpKind.GT,
    ast.BinOpKind.LE,
    ast.BinOpKind.GE,
]

names = st.sampled_from(["i", "j", "n", "acc", "x1"])


@st.composite
def expressions(draw, depth=3, allow_if=True):
    """Random expression trees mirroring the grammar's value forms."""
    if depth == 0:
        leaf = draw(st.integers(0, 3))
        if leaf == 0:
            return ast.IntLit(draw(st.integers(0, 99)))
        if leaf == 1:
            return ast.Var(draw(names))
        if leaf == 2:
            return ast.SeqIndex(
                draw(st.sampled_from(["s", "t"])),
                ast.Var(draw(names)),
            )
        return ast.CharLit(draw(st.sampled_from("abc")))
    kind = draw(st.integers(0, 3 if allow_if else 2))
    if kind == 0:
        # BinOp str always parenthesises, so nesting is safe.
        op = draw(st.sampled_from(_ARITH))
        return ast.BinOp(
            op,
            draw(expressions(depth=depth - 1, allow_if=allow_if)),
            draw(expressions(depth=depth - 1, allow_if=allow_if)),
        )
    if kind == 1:
        return ast.Call(
            "f",
            tuple(
                draw(
                    st.lists(
                        expressions(depth=depth - 1, allow_if=False),
                        min_size=1,
                        max_size=3,
                    )
                )
            ),
        )
    if kind == 2:
        op = draw(st.sampled_from(_COMPARE))
        return ast.BinOp(
            op,
            draw(expressions(depth=depth - 1, allow_if=False)),
            draw(expressions(depth=depth - 1, allow_if=False)),
        )
    # if-then-else: the unparenthesised else-branch would swallow a
    # following if, so only generate If at the outermost position of
    # its branch (matching how the grammar associates).
    return ast.If(
        draw(expressions(depth=depth - 1, allow_if=False)),
        draw(expressions(depth=depth - 1, allow_if=False)),
        draw(expressions(depth=depth - 1, allow_if=True)),
    )


class TestRoundTrip:
    @settings(deadline=None, max_examples=150)
    @given(expressions())
    def test_parse_of_str_is_identity(self, expr):
        assert strip(parse_expr(str(expr))) == strip(expr)

    def test_reduce_roundtrip(self):
        text = "sum(t in s.transitionsto : (t.prob * f(t.start, i)))"
        expr = parse_expr(text)
        assert strip(parse_expr(str(expr))) == strip(expr)

    def test_range_reduce_roundtrip(self):
        text = "max(k in (i + 1) .. (j - 1) : f(i, k))"
        expr = parse_expr(text)
        assert strip(parse_expr(str(expr))) == strip(expr)

    def test_emission_roundtrip(self):
        expr = parse_expr("s.emission[x[i - 1]]")
        assert strip(parse_expr(str(expr))) == strip(expr)

    def test_matrix_roundtrip(self):
        expr = parse_expr("m[s[i-1], t[j-1]]")
        assert strip(parse_expr(str(expr))) == strip(expr)
