"""Tests for source spans and caret diagnostics."""

from repro.lang.errors import DslError, TypeCheckError
from repro.lang.source import Position, SourceText, Span


class TestSpan:
    def test_point(self):
        span = Span.point(3, 7, 42)
        assert span.start == span.end
        assert span.start.line == 3

    def test_merge(self):
        first = Span(Position(1, 1, 0), Position(1, 4, 3))
        last = Span(Position(2, 1, 10), Position(2, 6, 15))
        merged = Span.merge(first, last)
        assert merged.start == first.start
        assert merged.end == last.end

    def test_str(self):
        assert str(Span.point(2, 5, 9)) == "2:5"


class TestSourceText:
    TEXT = "int f(int n) =\n  if n == 0 then 0\n  else f(n - 1)\n"

    def test_line_lookup(self):
        src = SourceText(self.TEXT)
        assert src.line(1) == "int f(int n) ="
        assert src.line(3) == "  else f(n - 1)"

    def test_line_out_of_range(self):
        src = SourceText(self.TEXT)
        assert src.line(0) == ""
        assert src.line(99) == ""

    def test_render_points_at_span(self):
        src = SourceText(self.TEXT, name="prog.dsl")
        span = Span(Position(2, 6, 21), Position(2, 7, 22))
        rendered = src.render(span, "boom")
        lines = rendered.splitlines()
        assert lines[0] == "prog.dsl:2:6: boom"
        assert lines[1].strip() == "if n == 0 then 0"
        caret_col = lines[2].index("^")
        assert lines[1][caret_col] == "n"

    def test_render_multichar_span(self):
        src = SourceText("abcdef")
        span = Span(Position(1, 2, 1), Position(1, 5, 4))
        rendered = src.render(span, "x")
        assert "^^^" in rendered

    def test_render_synthetic_span(self):
        src = SourceText("abc")
        assert src.render(Span.point(0, 0, 0), "msg") == "msg"


class TestErrorRendering:
    def test_render_with_source(self):
        src = SourceText("let x = !", name="t.dsl")
        err = DslError("bad", Span.point(1, 9, 8))
        assert err.render(src).startswith("t.dsl:1:9: bad")

    def test_render_without_source(self):
        err = TypeCheckError("oops")
        assert err.render() == "oops"

    def test_end_to_end_caret_from_typechecker(self):
        from repro.lang.errors import TypeCheckError as TCE
        from repro.lang.parser import parse_program
        from repro.lang.typecheck import check_program

        text = 'alphabet en = "ab"\nint f(seq[en] s, index[s] i) = q\n'
        try:
            check_program(parse_program(text))
        except TCE as err:
            rendered = err.render(SourceText(text, "x.dsl"))
            assert "x.dsl:2:" in rendered
            assert "^" in rendered
        else:
            raise AssertionError("expected a type error")
