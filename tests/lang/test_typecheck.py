"""Tests for the type checker."""

import pytest

from repro.lang import types as ty
from repro.lang.errors import TypeCheckError
from repro.lang.parser import parse_function, parse_program
from repro.lang.typecheck import check_function, check_program

EN = {"en": "abcdefghijklmnopqrstuvwxyz"}
DNA = {"dna": "acgt"}

EDIT_DISTANCE = """
int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1
"""

FORWARD = """
prob forward(hmm h, state[h] s, seq[*] x, index[x] i) =
  if i == 0 then
    (if s.isstart then 1.0 else 0.0)
  else
    (if s.isend then 1.0 else s.emission[x[i-1]])
    * sum(t in s.transitionsto : t.prob * forward(t.start, i - 1))
"""


def check(src, alphabets=EN):
    return check_function(parse_function(src.strip()), alphabets)


class TestParameterClassification:
    def test_edit_distance_dims(self):
        func = check(EDIT_DISTANCE)
        assert func.dim_names == ("i", "j")
        assert [p.name for p in func.calling_params] == ["s", "t"]

    def test_int_param_is_recursive(self):
        func = check("int fib(int n) = if n < 2 then n else fib(n-1) + fib(n-2)")
        assert func.dim_names == ("n",)

    def test_state_param_is_recursive(self):
        func = check(FORWARD, DNA)
        assert func.dim_names == ("s", "i")

    def test_float_param_is_calling(self):
        func = check("float f(float g, seq[en] s, index[s] i) = g")
        assert func.dim_names == ("i",)
        assert [p.name for p in func.calling_params] == ["g", "s"]

    def test_no_recursive_params_rejected(self):
        with pytest.raises(TypeCheckError, match="no recursive parameters"):
            check("float f(seq[en] s) = 1.0")

    def test_duplicate_param_rejected(self):
        with pytest.raises(TypeCheckError, match="duplicate parameter"):
            check("int f(int x, int x) = x")

    def test_index_must_reference_earlier_seq(self):
        with pytest.raises(TypeCheckError, match="earlier"):
            check("int f(index[s] i, seq[en] s) = i")

    def test_index_referencing_non_seq_rejected(self):
        with pytest.raises(TypeCheckError):
            check("int f(int s, index[s] i) = i")

    def test_state_must_reference_hmm(self):
        with pytest.raises(TypeCheckError):
            check("prob f(seq[en] h, state[h] s) = 1.0")

    def test_unknown_alphabet_rejected(self):
        with pytest.raises(TypeCheckError, match="unknown alphabet"):
            check("int f(seq[xx] s, index[s] i) = i")


class TestExpressionTyping:
    def test_body_type_recorded(self):
        func = check(EDIT_DISTANCE)
        assert func.type_of(func.body) == ty.INT

    def test_return_widening_int_to_float(self):
        func = check("float f(seq[en] s, index[s] i) = 1")
        assert func.return_type == ty.FLOAT

    def test_return_narrowing_rejected(self):
        with pytest.raises(TypeCheckError, match="return type"):
            check("int f(seq[en] s, index[s] i) = 1.5")

    def test_float_literal_adopts_prob_context(self):
        func = check("prob f(seq[en] s, index[s] i) = 1.0")
        assert func.type_of(func.body) == ty.PROB

    def test_char_comparison(self):
        func = check(
            "int f(seq[en] s, index[s] i) = if s[i] == s[i] then 1 else 0"
        )
        assert func.return_type == ty.INT

    def test_char_ordering_rejected(self):
        with pytest.raises(TypeCheckError, match="== and !="):
            check("int f(seq[en] s, index[s] i) = if s[i] < s[i] then 1 else 0")

    def test_char_vs_int_comparison_rejected(self):
        with pytest.raises(TypeCheckError, match="cannot compare"):
            check("int f(seq[en] s, index[s] i) = if s[i] == 1 then 1 else 0")

    def test_condition_must_be_bool(self):
        with pytest.raises(TypeCheckError, match="must be bool"):
            check("int f(seq[en] s, index[s] i) = if i then 1 else 0")

    def test_incompatible_branches_rejected(self):
        with pytest.raises(TypeCheckError, match="incompatible"):
            check(
                "int f(seq[en] s, index[s] i) = "
                "if i == 0 then 1 else s[i]"
            )

    def test_arith_on_chars_rejected(self):
        with pytest.raises(TypeCheckError, match="numeric"):
            check("int f(seq[en] s, index[s] i) = s[i] + 1")

    def test_unknown_variable(self):
        with pytest.raises(TypeCheckError, match="unknown variable"):
            check("int f(seq[en] s, index[s] i) = k")

    def test_seq_index_gives_alphabet_char(self):
        func = check("int f(seq[en] s, index[s] i) = if s[i] == 'a' then 1 else 0")
        assert func.return_type == ty.INT

    def test_indexing_non_sequence_rejected(self):
        with pytest.raises(TypeCheckError, match="not a sequence"):
            check("int f(int n) = n[0]")

    def test_script_only_forms_rejected_in_body(self):
        with pytest.raises(TypeCheckError, match="script"):
            check('int f(seq[en] s, index[s] i) = |s|')


class TestRecursiveCalls:
    def test_wrong_arity(self):
        with pytest.raises(TypeCheckError, match="2 recursive"):
            check(
                "int d(seq[en] s, index[s] i, seq[en] t, index[t] j) = "
                "if i == 0 then 0 else d(i - 1)"
            )

    def test_call_to_unknown_function(self):
        with pytest.raises(TypeCheckError, match="unknown function"):
            check("int f(int n) = g(n - 1)")

    def test_cross_calls_typecheck_in_programs(self):
        """Mutual groups type-check (two-pass); the single-function
        *analysis* rejects them (Section 9 pipeline handles them)."""
        from repro.analysis.descent import extract_descents
        from repro.lang.errors import AnalysisError

        program = parse_program(
            'alphabet en = "ab"\n'
            "int g(int n) = if n == 0 then 0 else f(n - 1)\n"
            "int f(int n) = if n == 0 then 0 else g(n - 1)\n"
        )
        checked = check_program(program)  # forward reference resolves
        with pytest.raises(AnalysisError, match="mutual"):
            extract_descents(checked.function("g"))

    def test_cross_call_wrong_arity_rejected(self):
        program = parse_program(
            "int f(int n, int m) = if n == 0 then 0 else f(n-1, m)\n"
            "int g(int n) = f(n - 1)\n"
        )
        with pytest.raises(TypeCheckError, match="2 recursive"):
            check_program(program)

    def test_call_inside_single_function_still_rejected(self):
        with pytest.raises(TypeCheckError, match="unknown function"):
            check("int f(int n) = g(n - 1)")

    def test_bad_argument_type(self):
        with pytest.raises(TypeCheckError, match="recursive argument"):
            check(FORWARD.replace("forward(t.start, i - 1)",
                                  "forward(i - 1, i - 1)"), DNA)


class TestHmmTyping:
    def test_forward_types(self):
        func = check(FORWARD, DNA)
        assert func.return_type == ty.PROB

    def test_transition_fields(self):
        func = check(
            "prob f(hmm h, transition[h] t, seq[*] x, index[x] i) = t.prob",
            DNA,
        )
        assert func.return_type == ty.PROB

    def test_state_has_no_prob_field(self):
        with pytest.raises(TypeCheckError, match="states have no field"):
            check(
                "prob f(hmm h, state[h] s, seq[*] x, index[x] i) = s.prob",
                DNA,
            )

    def test_transition_has_no_isstart(self):
        with pytest.raises(TypeCheckError, match="transitions have no field"):
            check(
                "prob f(hmm h, transition[h] t, seq[*] x, index[x] i) = "
                "if t.isstart then 1.0 else 0.0",
                DNA,
            )

    def test_reduce_over_non_set_rejected(self):
        with pytest.raises(TypeCheckError, match="transition sets"):
            check(
                "prob f(hmm h, state[h] s, seq[*] x, index[x] i) = "
                "sum(t in s.isstart : 1.0)",
                DNA,
            )

    def test_reduce_shadowing_rejected(self):
        with pytest.raises(TypeCheckError, match="shadows"):
            check(
                "prob f(hmm h, state[h] s, seq[*] x, index[x] i) = "
                "sum(s in s.transitionsto : 1.0)",
                DNA,
            )

    def test_reduce_var_out_of_scope_after(self):
        with pytest.raises(TypeCheckError, match="unknown variable"):
            check(
                "prob f(hmm h, state[h] s, seq[*] x, index[x] i) = "
                "sum(t in s.transitionsto : 1.0) * t.prob",
                DNA,
            )

    def test_emission_needs_char(self):
        with pytest.raises(TypeCheckError, match="character"):
            check(
                "prob f(hmm h, state[h] s, seq[*] x, index[x] i) = "
                "s.emission[i]",
                DNA,
            )


class TestProgramChecking:
    def test_full_program(self):
        program = parse_program(
            'alphabet en = "abcdefghijklmnopqrstuvwxyz"\n' + EDIT_DISTANCE
        )
        checked = check_program(program)
        assert "d" in checked.functions

    def test_duplicate_function_rejected(self):
        src = 'alphabet en = "ab"\nint f(int n) = n\nint f(int n) = n'
        with pytest.raises(TypeCheckError, match="twice"):
            check_program(parse_program(src))

    def test_duplicate_alphabet_rejected(self):
        src = 'alphabet a = "xy"\nalphabet a = "zw"'
        with pytest.raises(TypeCheckError, match="twice"):
            check_program(parse_program(src))

    def test_matrix_validation_missing_rows(self):
        src = (
            'alphabet ab = "ab"\n'
            "matrix cost[ab, ab] { header a b row a : 0 1 }"
        )
        with pytest.raises(TypeCheckError, match="missing rows"):
            check_program(parse_program(src))

    def test_matrix_row_width_mismatch(self):
        src = (
            'alphabet ab = "ab"\n'
            "matrix cost[ab, ab] { header a b default 0 row a : 0 }"
        )
        with pytest.raises(TypeCheckError, match="columns"):
            check_program(parse_program(src))

    def test_hmm_needs_start_and_end(self):
        src = (
            'alphabet dna = "acgt"\n'
            "hmm h [dna] { state a emits { a: 1.0 } }"
        )
        with pytest.raises(TypeCheckError, match="start"):
            check_program(parse_program(src))

    def test_hmm_unknown_transition_state(self):
        src = (
            'alphabet dna = "acgt"\n'
            "hmm h [dna] {\n"
            "  state b : start\n  state e : end\n"
            "  trans b -> nowhere : 1.0\n}"
        )
        with pytest.raises(TypeCheckError, match="unknown"):
            check_program(parse_program(src))

    def test_hmm_bad_emission_char(self):
        src = (
            'alphabet dna = "acgt"\n'
            "hmm h [dna] {\n"
            "  state b : start\n  state m emits { z: 1.0 }\n  state e : end\n}"
        )
        with pytest.raises(TypeCheckError, match="alphabet"):
            check_program(parse_program(src))

    def test_schedule_decl_registered(self):
        program = parse_program(
            'alphabet en = "ab"\n' + EDIT_DISTANCE + "\nschedule d : i + j"
        )
        checked = check_program(program)
        assert "d" in checked.schedules

    def test_schedule_for_unknown_function(self):
        with pytest.raises(TypeCheckError, match="unknown function"):
            check_program(parse_program("schedule nope : x"))
