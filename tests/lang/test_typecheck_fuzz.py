"""Fuzzing the front end: random programs never crash the checker.

Any random token soup must produce a clean diagnostic (LexError /
ParseError / TypeCheckError), never an internal exception — the
property a production compiler front end owes its users.
"""

from hypothesis import given, settings, strategies as st

from repro.lang.errors import DslError
from repro.lang.parser import parse_program
from repro.lang.typecheck import check_program

FRAGMENTS = [
    'alphabet en = "abc"',
    "int f(int n) =",
    "int f(seq[en] s, index[s] i) =",
    "if i == 0 then",
    "else",
    "f(i - 1)",
    "f(n - 1, 2)",
    "s[i]",
    "i + 1",
    "min",
    "max(k in 0 .. n : k)",
    "sum(t in s.transitionsto : t.prob)",
    "let q =",
    '"abc"',
    "print",
    "map out = f(q, |q|) over db",
    "schedule f : i + j",
    "0.5",
    "'a'",
    "..",
    "(",
    ")",
    "hmm h [en] { state b : start state e : end }",
]


@settings(deadline=None, max_examples=300)
@given(
    st.lists(st.sampled_from(FRAGMENTS), min_size=1, max_size=8)
)
def test_random_fragment_programs_fail_cleanly(pieces):
    text = "\n".join(pieces)
    try:
        check_program(parse_program(text))
    except DslError:
        pass  # a clean diagnostic is the expected outcome


@settings(deadline=None, max_examples=200)
@given(
    st.text(
        alphabet="abijn ()[]{}+-*/<>=.,:|_0123456789\n\"'",
        max_size=80,
    )
)
def test_arbitrary_text_fails_cleanly(text):
    try:
        check_program(parse_program(text))
    except DslError:
        pass


@settings(deadline=None, max_examples=100)
@given(
    ret=st.sampled_from(["int", "float", "prob"]),
    body=st.sampled_from(
        ["n", "n + 1", "1.5", "n / 0", "f(n - 1)", "f(n) + 1",
         "if n == 0 then 0 else f(n - 1)", "true", "'a'",
         "sum(k in 0 .. n : f(k))"]
    ),
)
def test_single_function_shapes_fail_cleanly(ret, body):
    text = f"{ret} f(int n) = {body}"
    try:
        checked = check_program(parse_program(text))
    except DslError:
        return
    # When it checks, the analysis must also either work or
    # diagnose cleanly.
    from repro.analysis.criteria import schedule_criteria

    try:
        schedule_criteria(checked.function("f"))
    except DslError:
        pass
