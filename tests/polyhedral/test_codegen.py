"""Tests for CLooG-style loop generation (Section 4.3, Figure 9)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.affine import Affine
from repro.analysis.domain import Domain
from repro.lang.errors import CodegenError
from repro.polyhedral.codegen import generate_for_domain, generate_loops
from repro.polyhedral.loopast import emit_c, emit_c_inlined

FIG9 = """\
for (p=0;p<=m+n;p++) {
  for (i=max(0,p-m);i<=min(n,p);i++) {
    S1(i,p-i);
  }
}"""


def enumerate_nest(nest, params=None):
    return [
        tuple(env[d] for d in nest.space_vars)
        for _, env in nest.iterations(params or {})
    ]


def check_nest(domain, coefficients):
    """The generated nest must enumerate the domain exactly once, in
    non-decreasing partition order."""
    nest = generate_for_domain(domain, coefficients)
    visited = enumerate_nest(nest)
    assert sorted(visited) == sorted(domain.points()), (
        f"coverage broken for S={coefficients} over {domain}"
    )
    assert len(visited) == len(set(visited)), "duplicate iterations"
    partitions = [
        sum(a * x for a, x in zip(coefficients, point))
        for point in visited
    ]
    assert partitions == sorted(partitions), "partition order broken"


class TestFigure9:
    def test_exact_cloog_output(self):
        """The paper's Figure 9, token for token."""
        nest = generate_loops(
            ["i", "j"],
            [Affine.variable("n"), Affine.variable("m")],
            [1, 1],
        )
        assert emit_c_inlined(nest.roots) == FIG9

    def test_symbolic_and_concrete_agree(self):
        symbolic = generate_loops(
            ["i", "j"],
            [Affine.variable("n"), Affine.variable("m")],
            [1, 1],
        )
        concrete = generate_for_domain(Domain.of(i=4, j=6), [1, 1])
        assert enumerate_nest(symbolic, {"n": 3, "m": 5}) == (
            enumerate_nest(concrete)
        )


class TestSchedules:
    def test_diagonal(self):
        check_nest(Domain.of(i=5, j=4), [1, 1])

    def test_single_axis(self):
        check_nest(Domain.of(i=5, j=4), [1, 0])

    def test_other_axis(self):
        check_nest(Domain.of(i=5, j=4), [0, 1])

    def test_negative_coefficient(self):
        check_nest(Domain.of(i=5, j=4), [1, -1])

    def test_non_unit_outer(self):
        check_nest(Domain.of(i=4, j=4), [2, 1])

    def test_non_unit_pinned(self):
        # Pinned dimension with coefficient 2 needs a divisibility
        # guard.
        check_nest(Domain.of(i=4, j=4), [1, 2])

    def test_both_non_unit(self):
        check_nest(Domain.of(i=4, j=5), [3, 2])

    def test_three_dims(self):
        check_nest(Domain.of(i=3, j=3, k=3), [1, 1, 1])

    def test_three_dims_mixed(self):
        check_nest(Domain.of(i=3, j=4, k=2), [2, 0, 1])

    def test_one_dim_serial(self):
        check_nest(Domain.of(n=7), [1])

    def test_zero_schedule_single_partition(self):
        nest = generate_for_domain(Domain.of(i=3, j=2), [0, 0])
        visited = enumerate_nest(nest)
        assert sorted(visited) == sorted(Domain.of(i=3, j=2).points())

    def test_zero_coefficient_middle_dim(self):
        check_nest(Domain.of(i=3, j=4, k=3), [1, 0, 1])

    @settings(deadline=None, max_examples=60)
    @given(
        extents=st.tuples(st.integers(1, 5), st.integers(1, 5)),
        coeffs=st.tuples(st.integers(-3, 3), st.integers(-3, 3)),
    )
    def test_random_2d(self, extents, coeffs):
        check_nest(Domain(("i", "j"), extents), list(coeffs))

    @settings(deadline=None, max_examples=40)
    @given(
        extents=st.tuples(
            st.integers(1, 4), st.integers(1, 4), st.integers(1, 4)
        ),
        coeffs=st.tuples(
            st.integers(-2, 2), st.integers(-2, 2), st.integers(-2, 2)
        ),
    )
    def test_random_3d(self, extents, coeffs):
        check_nest(Domain(("i", "j", "k"), extents), list(coeffs))


class TestStructure:
    def test_time_loop_outermost(self):
        nest = generate_for_domain(Domain.of(i=3, j=3), [1, 1])
        from repro.polyhedral.loopast import Loop

        (root,) = nest.roots
        assert isinstance(root, Loop)
        assert root.var == nest.time_var

    def test_time_var_collision_rejected(self):
        with pytest.raises(CodegenError, match="collides"):
            generate_loops(
                ["p", "j"],
                [Affine.constant(3), Affine.constant(3)],
                [1, 1],
            )

    def test_emit_c_plain_contains_assignment(self):
        nest = generate_for_domain(Domain.of(i=3, j=3), [1, 1])
        text = emit_c(nest.roots)
        assert "j = " in text

    def test_custom_stmt_name(self):
        nest = generate_for_domain(
            Domain.of(i=2, j=2), [1, 1], stmt_name="CELL"
        )
        assert "CELL" in emit_c(nest.roots)
