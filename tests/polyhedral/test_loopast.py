"""Tests for the loop-nest AST: bounds, emitters, enumeration."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.affine import Affine
from repro.polyhedral.loopast import (
    Assign,
    Bound,
    Div,
    Guard,
    Loop,
    Stmt,
    affine_c_text,
    emit_c,
    iterate,
)


class TestDiv:
    def test_unit_divisor_passthrough(self):
        div = Div(Affine.of({"p": 1}, -3), 1, "floor")
        assert div.evaluate({"p": 10}) == 7
        assert div.c_text() == "p-3"

    @given(st.integers(-50, 50), st.integers(1, 7))
    def test_ceil_floor_match_math(self, num, d):
        import math

        affine = Affine.constant(num)
        assert Div(affine, d, "ceil").evaluate({}) == math.ceil(num / d)
        assert Div(affine, d, "floor").evaluate({}) == (
            math.floor(num / d)
        )

    def test_c_text_helpers(self):
        assert Div(Affine.variable("p"), 2, "ceil").c_text() == (
            "ceild(p,2)"
        )
        assert Div(Affine.variable("p"), 2, "floor").c_text() == (
            "floord(p,2)"
        )

    def test_bad_divisor(self):
        with pytest.raises(ValueError):
            Div(Affine.constant(1), 0, "ceil")

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            Div(Affine.constant(1), 1, "up")


class TestBound:
    def test_max_of_terms(self):
        bound = Bound("max", (
            Div(Affine.constant(0), 1, "ceil"),
            Div(Affine.of({"p": 1}, -5), 1, "ceil"),
        ))
        assert bound.evaluate({"p": 3}) == 0
        assert bound.evaluate({"p": 9}) == 4
        assert bound.c_text() == "max(0,p-5)"

    def test_single_term_no_wrapper(self):
        bound = Bound("min", (Div(Affine.variable("n"), 1, "floor"),))
        assert bound.c_text() == "n"

    def test_needs_terms(self):
        with pytest.raises(ValueError):
            Bound("max", ())

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            Bound("sup", (Div(Affine.constant(0), 1, "ceil"),))


class TestAffineCText:
    def test_positive_first(self):
        assert affine_c_text(Affine.of({"m": -1, "p": 1})) == "p-m"

    def test_coefficients(self):
        assert affine_c_text(Affine.of({"x": 2}, 1)) == "2*x+1"

    def test_zero(self):
        assert affine_c_text(Affine.constant(0)) == "0"


class TestIterate:
    def _loop(self, var, lo, hi, body, step=1):
        return Loop(
            var,
            Bound("max", (Div(Affine.constant(lo), 1, "ceil"),)),
            Bound("min", (Div(Affine.constant(hi), 1, "floor"),)),
            body,
            step=step,
        )

    def test_stmt_yields_environment(self):
        stmt = Stmt("S", (Affine.variable("i"),))
        nest = (self._loop("i", 0, 2, (stmt,)),)
        visited = [env["i"] for _, env in iterate(nest, {})]
        assert visited == [0, 1, 2]

    def test_strided_loop(self):
        stmt = Stmt("S", ())
        nest = (self._loop("i", 0, 6, (stmt,), step=3),)
        visited = [env["i"] for _, env in iterate(nest, {})]
        assert visited == [0, 3, 6]

    def test_assign_binds(self):
        stmt = Stmt("S", ())
        nest = (
            self._loop(
                "i", 0, 2,
                (Assign("j", Div(Affine.of({"i": 2}), 1, "floor"),
                        (stmt,)),),
            ),
        )
        visited = [(e["i"], e["j"]) for _, e in iterate(nest, {})]
        assert visited == [(0, 0), (1, 2), (2, 4)]

    def test_guard_filters(self):
        stmt = Stmt("S", ())
        nest = (
            self._loop(
                "i", 0, 5,
                (Guard(Affine.variable("i"), 2, (stmt,)),),
            ),
        )
        visited = [e["i"] for _, e in iterate(nest, {})]
        assert visited == [0, 2, 4]

    def test_empty_loop_body_skipped(self):
        nest = (self._loop("i", 3, 1, (Stmt("S", ()),)),)
        assert list(iterate(nest, {})) == []


class TestEmitC:
    def test_assign_and_guard_rendering(self):
        stmt = Stmt("S1", (Affine.variable("j"),))
        nest = (
            Guard(Affine.variable("p"), 2,
                  (Assign("j", Div(Affine.variable("p"), 2, "floor"),
                          (stmt,)),)),
        )
        text = emit_c(nest)
        assert "if ((p)%2==0) {" in text
        assert "j = floord(p,2);" in text
        assert "S1(j);" in text

    def test_strided_for(self):
        stmt = Stmt("S", ())
        loop = Loop(
            "i",
            Bound("max", (Div(Affine.constant(0), 1, "ceil"),)),
            Bound("min", (Div(Affine.constant(9), 1, "floor"),)),
            (stmt,),
            step=4,
        )
        assert "i+=4" in emit_c((loop,))
