"""Tests for the integer polyhedron library."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.affine import Affine
from repro.polyhedral.polyhedron import Constraint, Polyhedron


def enumerate_poly(poly, ranges):
    """All integer points of ``poly`` within explicit search ranges."""
    dims = poly.dims
    points = []
    for combo in itertools.product(*(ranges[d] for d in dims)):
        env = dict(zip(dims, combo))
        ok = True
        for con in poly.constraints:
            value = con.expr.evaluate(env)
            if con.is_equality and value != 0:
                ok = False
                break
            if not con.is_equality and value < 0:
                ok = False
                break
        if ok:
            points.append(combo)
    return points


class TestConstruction:
    def test_box(self):
        poly = Polyhedron.box([("x", Affine.constant(2))])
        assert len(poly.constraints) == 2
        assert enumerate_poly(poly, {"x": range(-3, 6)}) == [(0,), (1,), (2,)]

    def test_with_constraint_and_dim(self):
        poly = Polyhedron.box([("x", Affine.constant(3))])
        poly = poly.with_dim("t", front=True)
        assert poly.dims == ("t", "x")
        poly = poly.with_constraint(
            Constraint(
                Affine.variable("t") - Affine.variable("x"),
                is_equality=True,
            )
        )
        assert len(poly.equalities) == 1

    def test_with_dim_idempotent(self):
        poly = Polyhedron.box([("x", Affine.constant(3))])
        assert poly.with_dim("x").dims == ("x",)


class TestNormalisation:
    def test_inequality_tightening(self):
        # 2x - 3 >= 0 over integers means x >= 2.
        con = Constraint(Affine.of({"x": 2}, -3)).normalised()
        assert con.expr == Affine.of({"x": 1}, -2)

    def test_unit_gcd_unchanged(self):
        con = Constraint(Affine.of({"x": 2, "y": 3}, -1))
        assert con.normalised() == con

    def test_equality_divisible(self):
        con = Constraint(Affine.of({"x": 2}, -4), True).normalised()
        assert con.expr == Affine.of({"x": 1}, -2)

    def test_equality_indivisible_kept(self):
        con = Constraint(Affine.of({"x": 2}, -3), True)
        assert con.normalised() == con


class TestElimination:
    def test_eliminate_box_dim(self):
        poly = Polyhedron.box(
            [("x", Affine.constant(4)), ("y", Affine.constant(2))]
        )
        projected = poly.eliminate("y")
        assert projected.dims == ("x",)
        assert enumerate_poly(projected, {"x": range(-2, 8)}) == [
            (x,) for x in range(5)
        ]

    def test_eliminate_unknown_dim(self):
        poly = Polyhedron.box([("x", Affine.constant(1))])
        with pytest.raises(ValueError):
            poly.eliminate("zz")

    def test_equality_substitution(self):
        # x in 0..4, y in 0..4, x + y == 4; eliminating y leaves
        # 0 <= x <= 4 (twice over).
        poly = Polyhedron.box(
            [("x", Affine.constant(4)), ("y", Affine.constant(4))]
        ).with_constraint(
            Constraint(
                Affine.of({"x": 1, "y": 1}, -4), is_equality=True
            )
        )
        projected = poly.eliminate("y")
        assert enumerate_poly(projected, {"x": range(-3, 9)}) == [
            (x,) for x in range(5)
        ]

    def test_projection_is_shadow(self):
        """Projection equals the shadow of the original point set."""
        poly = Polyhedron.box(
            [("x", Affine.constant(3)), ("y", Affine.constant(5))]
        ).with_constraint(
            Constraint(Affine.of({"x": 1, "y": -1}))  # x >= y
        )
        full = enumerate_poly(poly, {"x": range(-1, 6), "y": range(-1, 8)})
        shadow = sorted({(x,) for x, _ in full})
        projected = poly.eliminate("y")
        assert enumerate_poly(projected, {"x": range(-1, 6)}) == shadow

    @settings(deadline=None, max_examples=40)
    @given(
        ub=st.tuples(st.integers(0, 4), st.integers(0, 4)),
        coeffs=st.tuples(st.integers(-2, 2), st.integers(-2, 2)),
        const=st.integers(-4, 4),
    )
    def test_random_halfspace_projection_sound(self, ub, coeffs, const):
        """FM projection never loses points (soundness direction)."""
        poly = Polyhedron.box(
            [("x", Affine.constant(ub[0])), ("y", Affine.constant(ub[1]))]
        ).with_constraint(
            Constraint(Affine.of({"x": coeffs[0], "y": coeffs[1]}, const))
        )
        rng = {"x": range(-2, 8), "y": range(-2, 8)}
        full = enumerate_poly(poly, rng)
        projected = poly.eliminate("y")
        shadow = {(x,) for x, _ in full}
        got = set(enumerate_poly(projected, {"x": range(-2, 8)}))
        assert shadow <= got


class TestEmptiness:
    def test_trivially_empty_inequality(self):
        poly = Polyhedron((), (Constraint(Affine.constant(-1)),))
        assert poly.is_trivially_empty()

    def test_trivially_empty_equality(self):
        poly = Polyhedron((), (Constraint(Affine.constant(2), True),))
        assert poly.is_trivially_empty()

    def test_nonempty(self):
        poly = Polyhedron.box([("x", Affine.constant(1))])
        assert not poly.is_trivially_empty()


class TestBounds:
    def test_bounds_for(self):
        poly = Polyhedron.box([("x", Affine.constant(5))])
        lowers, uppers = poly.bounds_for("x")
        assert lowers == [(1, Affine.constant(0))]
        assert uppers == [(1, Affine.constant(5))]

    def test_str(self):
        poly = Polyhedron.box([("x", Affine.constant(1))])
        assert ">=" in str(poly)
