"""Shared fixtures for the resilience tests."""

import pytest

from repro.extensions.hmm import HmmBuilder
from repro.lang.parser import parse_function
from repro.lang.typecheck import check_function
from repro.runtime.values import DNA, ENGLISH, Sequence

EDIT_DISTANCE = """
int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1
"""

FORWARD = """
prob forward(hmm h, state[h] s, seq[*] x, index[x] i) =
  if i == 0 then (if s.isstart then 1.0 else 0.0)
  else (if s.isend then 1.0 else s.emission[x[i-1]])
    * sum(t in s.transitionsto : t.prob * forward(t.start, i - 1))
"""


@pytest.fixture
def edit_func():
    """Checked edit distance (integer table, vector-eligible)."""
    return check_function(
        parse_function(EDIT_DISTANCE.strip()), {"en": ENGLISH.chars}
    )


@pytest.fixture
def edit_bindings():
    """The canonical kitten/sitting problem (answer: 3)."""
    return {
        "s": Sequence("kitten", ENGLISH),
        "t": Sequence("sitting", ENGLISH),
    }


@pytest.fixture
def forward_func():
    """Checked HMM forward (float table in direct mode)."""
    return check_function(parse_function(FORWARD.strip()), {})


@pytest.fixture
def forward_bindings():
    """A small HMM plus an observation sequence."""
    hmm = (
        HmmBuilder("h", DNA)
        .start("b")
        .uniform_state("m")
        .end("e")
        .transition("b", "m", 1.0)
        .transition("m", "m", 0.9)
        .transition("m", "e", 0.1)
        .build()
    )
    return {"h": hmm, "x": Sequence("acgtacgt", DNA)}
