"""Supervised execution of lane-batched map launches.

The supervisor packs a map's same-kernel problems into one batched
launch; everything the resilience layer guarantees for single-problem
launches — checkpointed replay, bitwise recovery, oracle
classification — must hold for the batch as a unit.
"""

import numpy as np
import pytest

from repro.lang.errors import BackendDivergenceError
from repro.resilience import (
    ExecutionSupervisor,
    FaultPlan,
    SupervisionPolicy,
)
from repro.resilience.faults import FaultInjector, FaultSite
from repro.runtime.engine import Engine
from repro.runtime.values import ENGLISH, Sequence

CHAOS = FaultPlan(
    seed=1234,
    launch_fail_rate=0.05,
    corrupt_rate=0.01,
    truncate_rate=0.02,
    corrupt_mode="bitflip",
)

WORDS = ("kitten", "mitten", "witty", "sit", "knitting", "sitting")


def problems():
    return [{"s": Sequence(word, ENGLISH)} for word in WORDS]


def base(edit_bindings):
    return {"t": edit_bindings["t"]}


class TestSupervisedBatchedMap:
    def test_fault_free_batched_map_matches_engine(
        self, edit_func, edit_bindings
    ):
        baseline = Engine(backend="vector").map_run(
            edit_func, base(edit_bindings), problems()
        )
        supervisor = ExecutionSupervisor(
            engine=Engine(backend="vector")
        )
        result = supervisor.map_run(
            edit_func, base(edit_bindings), problems()
        )
        assert result.values == baseline.values
        assert result.lane_batches == 1
        assert result.lane_batched_problems == len(WORDS)
        # Logical problem accounting survives batching.
        assert supervisor.stats.problems == len(WORDS)

    def test_chaos_batched_map_matches_fault_free(
        self, edit_func, edit_bindings
    ):
        baseline = Engine(backend="vector").map_run(
            edit_func, base(edit_bindings), problems()
        )
        supervisor = ExecutionSupervisor(
            engine=Engine(backend="vector"),
            plan=CHAOS,
            policy=SupervisionPolicy(checkpoint_interval=4),
        )
        result = supervisor.map_run(
            edit_func, base(edit_bindings), problems()
        )
        assert result.values == baseline.values
        assert result.lane_batched_problems == len(WORDS)
        assert supervisor.stats.problems == len(WORDS)
        # The campaign actually exercised the fault path.
        assert supervisor.injector.log

    def test_corruption_in_batch_recovered_via_oracle(
        self, edit_func, edit_bindings
    ):
        plan = FaultPlan(
            seed=7, corrupt_rate=0.02, corrupt_mode="bitflip"
        )
        supervisor = ExecutionSupervisor(
            engine=Engine(backend="vector"),
            plan=plan,
            policy=SupervisionPolicy(checkpoint_interval=3),
        )
        baseline = Engine(backend="vector").map_run(
            edit_func, base(edit_bindings), problems()
        )
        result = supervisor.map_run(
            edit_func, base(edit_bindings), problems()
        )
        assert result.values == baseline.values
        stats = supervisor.stats
        assert stats.faults.get("CellCorruption", 0) > 0
        assert stats.corruption_recovered > 0
        assert stats.oracle_runs > 0

    def test_batching_disabled_engine_falls_back(
        self, edit_func, edit_bindings
    ):
        supervisor = ExecutionSupervisor(engine=Engine(batching=False))
        result = supervisor.map_run(
            edit_func, base(edit_bindings), problems()
        )
        assert result.lane_batches == 0
        assert supervisor.stats.problems == len(WORDS)

    def test_batched_codegen_bug_is_divergence(
        self, edit_func, edit_bindings
    ):
        """A deterministic bug in the *batched* generator must
        surface as BackendDivergenceError (the oracle's per-member
        scalar replay disagrees), never as recovered corruption."""
        from repro.runtime.engine import CompiledKernel

        supervisor = ExecutionSupervisor(
            engine=Engine(backend="vector"),
            plan=FaultPlan(seed=3, corrupt_rate=0.05,
                           corrupt_mode="bitflip"),
            policy=SupervisionPolicy(checkpoint_interval=2),
        )
        real_ensure = CompiledKernel.ensure_batched

        def buggy_ensure(self):
            real_run = real_ensure(self)

            def run(table, ctx, part_lo=None, part_hi=None):
                real_run(table, ctx, part_lo=part_lo, part_hi=part_hi)
                table[(0,) * table.ndim] += 1  # the "bug"

            return run

        CompiledKernel.ensure_batched = buggy_ensure
        try:
            with pytest.raises(BackendDivergenceError):
                supervisor.map_run(
                    edit_func, base(edit_bindings), problems()
                )
        finally:
            CompiledKernel.ensure_batched = real_ensure


class TestBatchedFaultInjection:
    def test_corrupt_cells_batched_partition_mapping(self, edit_func):
        """On a (B, d0, d1) table the partition of a victim comes
        from its trailing space coordinates; every problem row is at
        risk and damage never lands outside the launched range."""
        engine = Engine(backend="auto")
        compiled = engine.compile(
            edit_func,
            engine.schedule_for(
                edit_func,
                engine.domain_of(
                    edit_func,
                    __import__("repro").Bindings(
                        {
                            "s": Sequence("kitten", ENGLISH),
                            "t": Sequence("sitting", ENGLISH),
                        }
                    ),
                ),
            ),
        )
        schedule = compiled.kernel.schedule
        table = np.zeros((4, 7, 8), dtype=np.int64)
        plan = FaultPlan(seed=99, corrupt_rate=0.5,
                         corrupt_mode="bitflip")
        injector = FaultInjector(plan)
        site = FaultSite(problem=0, partition=3, sm=0, attempt=0,
                         stage="memory")
        victims = injector.corrupt_cells(
            table, schedule, partition_lo=3, partition_hi=6, site=site
        )
        assert victims  # the rate is high enough to hit
        for coords in victims:
            assert len(coords) == 3  # batched coordinates
            space = coords[1:]
            partition = schedule.partition_of(list(space))
            assert 3 <= partition <= 6
            assert table[coords] != 0  # damage landed
        # More than one problem row can be hit across sites.
        touched = {coords[0] for coords in victims}
        assert touched <= set(range(4))

    def test_unbatched_mapping_unchanged(self, edit_func):
        engine = Engine(backend="auto")
        compiled = engine.compile(
            edit_func,
            engine.schedule_for(
                edit_func,
                engine.domain_of(
                    edit_func,
                    __import__("repro").Bindings(
                        {
                            "s": Sequence("kitten", ENGLISH),
                            "t": Sequence("sitting", ENGLISH),
                        }
                    ),
                ),
            ),
        )
        schedule = compiled.kernel.schedule
        table = np.zeros((7, 8), dtype=np.int64)
        injector = FaultInjector(
            FaultPlan(seed=99, corrupt_rate=0.5,
                      corrupt_mode="bitflip")
        )
        site = FaultSite(problem=0, partition=2, sm=0, attempt=0,
                         stage="memory")
        victims = injector.corrupt_cells(
            table, schedule, partition_lo=2, partition_hi=5, site=site
        )
        for coords in victims:
            assert len(coords) == 2
            assert 2 <= schedule.partition_of(list(coords)) <= 5
