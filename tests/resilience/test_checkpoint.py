"""Partition-barrier checkpoints: ranges, checksums, the log."""

import numpy as np

from repro.resilience.checkpoint import (
    CheckpointLog,
    partition_ranges,
    table_checksum,
)


class TestPartitionRanges:
    def test_even_chunks(self):
        assert partition_ranges(0, 7, 4) == [(0, 3), (4, 7)]

    def test_uneven_tail(self):
        assert partition_ranges(0, 9, 4) == [(0, 3), (4, 7), (8, 9)]

    def test_single_partition(self):
        assert partition_ranges(5, 5, 4) == [(5, 5)]

    def test_empty_span(self):
        assert partition_ranges(3, 2, 4) == []

    def test_zero_interval_means_one_epoch(self):
        assert partition_ranges(0, 99, 0) == [(0, 99)]

    def test_covers_span_exactly_once(self):
        ranges = partition_ranges(2, 31, 7)
        covered = [
            p for lo, hi in ranges for p in range(lo, hi + 1)
        ]
        assert covered == list(range(2, 32))


class TestChecksum:
    def test_content_addressed(self):
        a = np.arange(12, dtype=np.float64).reshape(3, 4)
        assert table_checksum(a) == table_checksum(a.copy())

    def test_sensitive_to_any_cell(self):
        a = np.arange(12, dtype=np.float64).reshape(3, 4)
        b = a.copy()
        b[2, 3] += 1e-12
        assert table_checksum(a) != table_checksum(b)

    def test_non_contiguous_views_hash_by_content(self):
        a = np.arange(16, dtype=np.int64).reshape(4, 4)
        assert table_checksum(a[:, ::2]) == table_checksum(
            a[:, ::2].copy()
        )


class TestCheckpointLog:
    def test_records_in_commit_order(self):
        log = CheckpointLog()
        table = np.zeros((2, 2))
        log.record(0, 0, 3, table)
        log.record(0, 4, 7, table)
        log.record(1, 0, 3, table)
        assert len(log) == 3
        assert [c.partition_lo for c in log.for_problem(0)] == [0, 4]
        assert log.latest(0).partition_hi == 7
        assert log.latest(2) is None

    def test_checksums_map(self):
        log = CheckpointLog()
        log.record(0, 0, 3, np.zeros(4))
        log.record(0, 0, 3, np.ones(4))  # replay overwrites
        mapping = log.checksums()
        assert mapping[(0, 0, 3)] == table_checksum(np.ones(4))
