"""The deterministic fault-injection plane."""

import numpy as np
import pytest

from repro.resilience.faults import (
    FaultInjector,
    FaultPlan,
    FaultSite,
    LaunchFault,
    TransferFault,
)
from repro.schedule.schedule import Schedule


def sites(n=200, stage="launch"):
    return [
        FaultSite(problem=k % 7, partition=k % 11, sm=k % 3,
                  attempt=k % 2, stage=stage)
        for k in range(n)
    ]


def launch_outcomes(injector, site_list):
    outcomes = []
    for site in site_list:
        try:
            injector.check_launch(site)
            outcomes.append(False)
        except LaunchFault:
            outcomes.append(True)
    return outcomes


class TestPlanValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            FaultPlan(launch_fail_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(corrupt_rate=-0.1)

    def test_corrupt_mode_checked(self):
        with pytest.raises(ValueError):
            FaultPlan(corrupt_mode="gamma-ray")

    def test_any_faults(self):
        assert not FaultPlan().any_faults
        assert FaultPlan(hang_rate=0.1).any_faults


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        plan = FaultPlan(seed=42, launch_fail_rate=0.3)
        first = launch_outcomes(FaultInjector(plan), sites())
        second = launch_outcomes(FaultInjector(plan), sites())
        assert first == second
        assert any(first) and not all(first)

    def test_same_seed_same_log(self):
        plan = FaultPlan(seed=42, launch_fail_rate=0.3,
                         truncate_rate=0.2)
        a, b = FaultInjector(plan), FaultInjector(plan)
        for injector in (a, b):
            for site in sites():
                try:
                    injector.check_launch(site)
                except LaunchFault:
                    pass
                try:
                    injector.check_transfer(site)
                except TransferFault:
                    pass
        assert [(e.kind, e.site) for e in a.log] == [
            (e.kind, e.site) for e in b.log
        ]
        assert a.log  # the campaign actually injected something

    def test_different_seeds_differ(self):
        base = launch_outcomes(
            FaultInjector(FaultPlan(seed=1, launch_fail_rate=0.3)),
            sites(),
        )
        other = launch_outcomes(
            FaultInjector(FaultPlan(seed=2, launch_fail_rate=0.3)),
            sites(),
        )
        assert base != other

    def test_order_independent(self):
        """Decisions depend on the site, not on call order."""
        plan = FaultPlan(seed=7, launch_fail_rate=0.4)
        forward = sites()
        backward = list(reversed(forward))
        a = launch_outcomes(FaultInjector(plan), forward)
        b = launch_outcomes(FaultInjector(plan), backward)
        assert a == list(reversed(b))

    def test_attempt_rerolls(self):
        """A replay is a new dice roll, not a doomed repeat."""
        plan = FaultPlan(seed=0, launch_fail_rate=0.5)
        injector = FaultInjector(plan)
        outcomes = set()
        for attempt in range(16):
            site = FaultSite(0, 0, 0, attempt, "launch")
            try:
                injector.check_launch(site)
                outcomes.add("ok")
            except LaunchFault:
                outcomes.add("fault")
        assert outcomes == {"ok", "fault"}


class TestSiteFilters:
    def test_only_partitions(self):
        plan = FaultPlan(
            seed=3, launch_fail_rate=1.0,
            only_partitions=frozenset({2}),
        )
        injector = FaultInjector(plan)
        injector.check_launch(FaultSite(0, 1, 0, 0, "launch"))  # quiet
        with pytest.raises(LaunchFault):
            injector.check_launch(FaultSite(0, 2, 0, 0, "launch"))

    def test_only_sms(self):
        plan = FaultPlan(
            seed=3, launch_fail_rate=1.0, only_sms=frozenset({5})
        )
        injector = FaultInjector(plan)
        injector.check_launch(FaultSite(0, 0, 4, 0, "launch"))  # quiet
        with pytest.raises(LaunchFault):
            injector.check_launch(FaultSite(0, 0, 5, 0, "launch"))


class TestCorruption:
    def test_nan_damage_on_float_table(self):
        plan = FaultPlan(seed=1, corrupt_rate=0.5, corrupt_mode="nan")
        injector = FaultInjector(plan)
        table = np.ones((8, 8), dtype=np.float64)
        schedule = Schedule(("i", "j"), (1, 1))
        victims = injector.corrupt_cells(
            table, schedule, 0, 14, FaultSite(0, 0, 0, 0, "memory")
        )
        assert victims
        assert np.isnan(table).sum() == len(set(victims))

    def test_bitflip_damage_on_int_table(self):
        plan = FaultPlan(seed=1, corrupt_rate=0.5,
                         corrupt_mode="bitflip")
        injector = FaultInjector(plan)
        table = np.zeros((8, 8), dtype=np.int64)
        schedule = Schedule(("i", "j"), (1, 1))
        victims = injector.corrupt_cells(
            table, schedule, 0, 14, FaultSite(0, 0, 0, 0, "memory")
        )
        assert victims
        for coords in victims:
            assert table[coords] != 0  # silently wrong, not NaN

    def test_victims_stay_in_partition_range(self):
        plan = FaultPlan(seed=5, corrupt_rate=0.9, corrupt_mode="nan")
        injector = FaultInjector(plan)
        table = np.ones((10, 10), dtype=np.float64)
        schedule = Schedule(("i", "j"), (1, 1))
        victims = injector.corrupt_cells(
            table, schedule, 4, 9, FaultSite(0, 4, 0, 0, "memory")
        )
        assert victims
        for coords in victims:
            assert 4 <= schedule.partition_of(list(coords)) <= 9

    def test_victim_set_is_seeded(self):
        plan = FaultPlan(seed=9, corrupt_rate=0.4, corrupt_mode="nan")
        schedule = Schedule(("i", "j"), (1, 1))
        site = FaultSite(0, 0, 0, 0, "memory")
        results = []
        for _ in range(2):
            table = np.ones((6, 6), dtype=np.float64)
            results.append(
                FaultInjector(plan).corrupt_cells(
                    table, schedule, 0, 10, site
                )
            )
        assert results[0] == results[1]

    def test_staged_corruption_hits_dict_values(self):
        plan = FaultPlan(seed=2, corrupt_rate=0.5)
        injector = FaultInjector(plan)
        staged = {(i, j): 1.0 for i in range(6) for j in range(6)}
        victims = injector.corrupt_staged(staged, partition=3)
        assert victims
        for cell in victims:
            assert staged[cell] != staged[cell]  # NaN
