"""The cross-backend divergence oracle."""

import dataclasses

import numpy as np
import pytest

from repro.lang.errors import BackendDivergenceError, DslError
from repro.resilience.oracle import DivergenceOracle, tables_agree
from repro.runtime.values import Bindings


def compiled_edit(edit_func, edit_bindings, backend="vector"):
    from repro.runtime.engine import Engine

    engine = Engine(backend=backend)
    bound = Bindings(dict(edit_bindings))
    domain = engine.domain_of(edit_func, bound)
    schedule = engine.schedule_for(edit_func, domain)
    compiled = engine.compile(edit_func, schedule)
    ctx = engine.build_context(compiled, bound, domain)
    base = engine._table_for(compiled.kernel, domain)
    return compiled, ctx, domain, base


class TestTablesAgree:
    def test_exact_for_ints(self):
        a = np.arange(6, dtype=np.int64)
        b = a.copy()
        assert tables_agree(a, b)
        b[3] += 1
        assert not tables_agree(a, b)

    def test_tolerant_for_float_ulps(self):
        a = np.array([0.1 + 0.2, 1.0])
        b = np.array([0.3, 1.0])  # differs in the last ulp
        assert tables_agree(a, b)

    def test_corruption_payloads_rejected(self):
        a = np.array([1.0, 2.0])
        assert not tables_agree(a, np.array([1.0, np.nan]))
        assert not tables_agree(a, np.array([1.0, 2.0 * 2.0 ** 52]))

    def test_shape_mismatch(self):
        assert not tables_agree(np.zeros(3), np.zeros(4))


class TestReferenceSelection:
    def test_vector_kernel_gets_scalar_reference(
        self, edit_func, edit_bindings
    ):
        compiled, _ctx, _domain, _base = compiled_edit(
            edit_func, edit_bindings
        )
        assert compiled.backend == "vector"
        oracle = DivergenceOracle()
        name, run = oracle.reference_for(compiled)
        assert name == "scalar"
        assert run is not None

    def test_reference_is_cached(self, edit_func, edit_bindings):
        compiled, _ctx, _domain, _base = compiled_edit(
            edit_func, edit_bindings
        )
        oracle = DivergenceOracle()
        first = oracle.reference_for(compiled)
        assert oracle.reference_for(compiled) is first

    def test_reference_cache_pins_the_compiled_object(
        self, edit_func, edit_bindings
    ):
        """The cache key is id(compiled); the entry must keep the
        compiled object alive, or CPython reuses the freed address
        and a later kernel inherits a stale reference runner built
        for different dims (found by the differential fuzzer)."""
        compiled, _ctx, _domain, _base = compiled_edit(
            edit_func, edit_bindings
        )
        oracle = DivergenceOracle()
        oracle.reference_for(compiled)
        assert any(
            entry[0] is compiled
            for entry in oracle._references.values()
        )

    def test_stale_cache_entry_not_returned_for_new_object(
        self, edit_func, edit_bindings
    ):
        compiled, _ctx, _domain, _base = compiled_edit(
            edit_func, edit_bindings
        )
        oracle = DivergenceOracle()
        # Simulate an address collision: a cache slot left behind by
        # some other (freed) compiled object.
        sentinel = ("scalar", None)
        oracle._references[id(compiled)] = (object(), sentinel)
        name, run = oracle.reference_for(compiled)
        assert (name, run) != sentinel
        assert run is not None

    def test_native_kernel_gets_vector_reference(
        self, edit_func, edit_bindings
    ):
        from repro.runtime import native

        if not native.available().ok:
            pytest.skip("no working C compiler in this environment")
        compiled, _ctx, _domain, _base = compiled_edit(
            edit_func, edit_bindings, backend="native"
        )
        assert compiled.backend == "native"
        oracle = DivergenceOracle()
        name, run = oracle.reference_for(compiled)
        assert name == "vector"
        assert run is not None


class TestClassification:
    def test_injected_corruption_recovers(
        self, edit_func, edit_bindings
    ):
        compiled, ctx, _domain, base = compiled_edit(
            edit_func, edit_bindings
        )
        schedule = compiled.schedule
        lo = schedule.min_partition(_domain)
        hi = schedule.max_partition(_domain)
        clean = base.copy()
        compiled.run(clean, ctx, part_lo=lo, part_hi=hi)
        suspect = clean.copy()
        suspect[2, 2] ^= 1 << 52  # the "device" flipped a bit
        oracle = DivergenceOracle()
        verdict, recovered = oracle.classify(
            compiled, ctx, base, lo, hi, suspect=suspect
        )
        assert verdict == "corruption"
        assert recovered.tobytes() == clean.tobytes()

    def test_clean_suspect_classified_clean(
        self, edit_func, edit_bindings
    ):
        compiled, ctx, domain, base = compiled_edit(
            edit_func, edit_bindings
        )
        schedule = compiled.schedule
        lo = schedule.min_partition(domain)
        hi = schedule.max_partition(domain)
        clean = base.copy()
        compiled.run(clean, ctx, part_lo=lo, part_hi=hi)
        oracle = DivergenceOracle()
        verdict, _recovered = oracle.classify(
            compiled, ctx, base, lo, hi, suspect=clean
        )
        assert verdict == "clean"

    def test_compiler_bug_raises_divergence(
        self, edit_func, edit_bindings
    ):
        """A deterministic miscompile cannot be explained away as
        corruption: both clean runs disagree with the reference."""
        compiled, ctx, domain, base = compiled_edit(
            edit_func, edit_bindings
        )
        real_run = compiled.run

        def buggy_run(table, ctx_, part_lo=None, part_hi=None):
            real_run(table, ctx_, part_lo=part_lo, part_hi=part_hi)
            table[1, 1] += 7  # deterministic wrongness

        buggy = dataclasses.replace(compiled, run=buggy_run)
        schedule = compiled.schedule
        oracle = DivergenceOracle()
        with pytest.raises(BackendDivergenceError):
            oracle.classify(
                buggy, ctx, base,
                schedule.min_partition(domain),
                schedule.max_partition(domain),
            )

    def test_divergence_is_a_dsl_error(self):
        assert issubclass(BackendDivergenceError, DslError)

    def test_native_corruption_recovers_via_vector_reference(
        self, edit_func, edit_bindings
    ):
        """The native rung is cross-checked too: a bit flip in a
        natively-computed table is recovered from the vector
        reference, not misdiagnosed as a compiler bug."""
        from repro.runtime import native

        if not native.available().ok:
            pytest.skip("no working C compiler in this environment")
        compiled, ctx, domain, base = compiled_edit(
            edit_func, edit_bindings, backend="native"
        )
        schedule = compiled.schedule
        lo = schedule.min_partition(domain)
        hi = schedule.max_partition(domain)
        clean = base.copy()
        compiled.run(clean, ctx, part_lo=lo, part_hi=hi)
        suspect = clean.copy()
        suspect[2, 2] ^= 1 << 52
        oracle = DivergenceOracle()
        verdict, recovered = oracle.classify(
            compiled, ctx, base, lo, hi, suspect=suspect
        )
        assert verdict == "corruption"
        assert recovered.tobytes() == clean.tobytes()
