"""The serial reference interpreter fallback."""

import math

from repro.resilience.reference import serial_reference_run
from repro.runtime.engine import Engine


class TestSerialReference:
    def test_matches_engine_value(self, edit_func, edit_bindings):
        engine_value = Engine().run(
            edit_func, dict(edit_bindings)
        ).value
        assert serial_reference_run(
            edit_func, edit_bindings
        ) == engine_value == 3

    def test_explicit_coordinates(self, edit_func, edit_bindings):
        at = {"i": 3, "j": 2}
        engine_value = Engine().run(
            edit_func, dict(edit_bindings), at=at
        ).value
        assert serial_reference_run(
            edit_func, edit_bindings, at=at
        ) == engine_value

    def test_reduce_matches_engine(self, edit_func, edit_bindings):
        engine_value = Engine().run(
            edit_func, dict(edit_bindings), reduce="max"
        ).value
        assert serial_reference_run(
            edit_func, edit_bindings, reduce="max"
        ) == engine_value

    def test_float_kernel_close(self, forward_func, forward_bindings):
        engine_value = Engine().run(
            forward_func, dict(forward_bindings), reduce="max"
        ).value
        reference = serial_reference_run(
            forward_func, forward_bindings, reduce="max"
        )
        assert math.isclose(
            reference, engine_value, rel_tol=1e-9, abs_tol=1e-300
        )
