"""The supervised, checkpointed execution layer."""

import numpy as np
import pytest

from repro.lang.errors import BackendDivergenceError
from repro.resilience import (
    ExecutionSupervisor,
    FaultEscalation,
    FaultPlan,
    SupervisionPolicy,
)
from repro.runtime.engine import Engine


CHAOS = FaultPlan(
    seed=1234,
    launch_fail_rate=0.05,
    corrupt_rate=0.01,
    truncate_rate=0.02,
    corrupt_mode="bitflip",
)


def fault_log(supervisor):
    return [
        (event.kind, event.site)
        for event in supervisor.injector.log
    ]


class TestFaultFree:
    def test_matches_plain_engine(self, edit_func, edit_bindings):
        baseline = Engine().run(edit_func, dict(edit_bindings))
        supervisor = ExecutionSupervisor()
        result = supervisor.run(edit_func, dict(edit_bindings))
        assert result.value == baseline.value == 3
        assert result.table.tobytes() == baseline.table.tobytes()
        stats = supervisor.stats
        assert stats.replays == 0
        assert stats.total_faults == 0
        assert stats.partitions_launched == stats.partitions_committed

    def test_checkpoints_cover_whole_span(
        self, edit_func, edit_bindings
    ):
        supervisor = ExecutionSupervisor(
            policy=SupervisionPolicy(checkpoint_interval=3)
        )
        supervisor.run(edit_func, dict(edit_bindings))
        checkpoints = supervisor.checkpoints.for_problem(0)
        assert len(checkpoints) >= 2
        spans = [
            (c.partition_lo, c.partition_hi) for c in checkpoints
        ]
        flat = [p for lo, hi in spans for p in range(lo, hi + 1)]
        assert flat == sorted(set(flat))  # contiguous, no overlap

    def test_float_kernel_matches(
        self, forward_func, forward_bindings
    ):
        baseline = Engine().run(
            forward_func, dict(forward_bindings), reduce="max"
        )
        supervisor = ExecutionSupervisor()
        result = supervisor.run(
            forward_func, dict(forward_bindings), reduce="max"
        )
        assert result.value == baseline.value
        assert result.table.tobytes() == baseline.table.tobytes()


class TestChaosRecovery:
    def test_bitwise_identical_to_fault_free(
        self, edit_func, edit_bindings
    ):
        baseline = Engine().run(edit_func, dict(edit_bindings))
        supervisor = ExecutionSupervisor(
            plan=CHAOS,
            policy=SupervisionPolicy(checkpoint_interval=4),
        )
        result = supervisor.run(edit_func, dict(edit_bindings))
        assert result.value == baseline.value
        assert result.table.tobytes() == baseline.table.tobytes()

    def test_same_seed_same_faults_and_results(
        self, edit_func, edit_bindings
    ):
        runs = []
        for _ in range(2):
            supervisor = ExecutionSupervisor(
                plan=CHAOS,
                policy=SupervisionPolicy(checkpoint_interval=4),
            )
            result = supervisor.run(edit_func, dict(edit_bindings))
            runs.append((supervisor, result))
        (sup_a, res_a), (sup_b, res_b) = runs
        assert fault_log(sup_a) == fault_log(sup_b)
        assert res_a.table.tobytes() == res_b.table.tobytes()
        assert sup_a.stats.replayed_ranges == sup_b.stats.replayed_ranges

    def test_different_seed_different_faults(
        self, edit_func, edit_bindings
    ):
        logs = []
        for seed in (1, 2):
            plan = FaultPlan(seed=seed, launch_fail_rate=0.4)
            supervisor = ExecutionSupervisor(
                plan=plan,
                policy=SupervisionPolicy(checkpoint_interval=2),
            )
            supervisor.run(edit_func, dict(edit_bindings))
            logs.append(fault_log(supervisor))
        assert logs[0] != logs[1]

    def test_nan_corruption_on_float_kernel_recovers(
        self, forward_func, forward_bindings
    ):
        baseline = Engine().run(
            forward_func, dict(forward_bindings), reduce="max"
        )
        plan = FaultPlan(seed=11, corrupt_rate=0.08,
                         corrupt_mode="nan")
        supervisor = ExecutionSupervisor(
            plan=plan, policy=SupervisionPolicy(checkpoint_interval=3)
        )
        result = supervisor.run(
            forward_func, dict(forward_bindings), reduce="max"
        )
        assert supervisor.stats.faults.get("CellCorruption", 0) > 0
        assert supervisor.stats.corruption_recovered > 0
        assert result.table.tobytes() == baseline.table.tobytes()


class TestReplayAccounting:
    def test_only_failed_ranges_replayed(
        self, edit_func, edit_bindings
    ):
        """Launch accounting: extra partitions == replayed ranges,
        and every replayed range maps to a logged fault."""
        plan = FaultPlan(seed=5, launch_fail_rate=0.25)
        supervisor = ExecutionSupervisor(
            plan=plan, policy=SupervisionPolicy(checkpoint_interval=2)
        )
        result = supervisor.run(edit_func, dict(edit_bindings))
        assert result.value == 3
        stats = supervisor.stats
        assert stats.replays > 0  # the campaign was not a no-op
        extra = stats.partitions_launched - stats.partitions_committed
        replayed = sum(
            hi - lo + 1 for _, lo, hi in stats.replayed_ranges
        )
        assert extra == replayed
        faulted_ranges = {
            (event.site.problem, event.site.partition)
            for event in supervisor.injector.log
        }
        for problem, lo, _hi in stats.replayed_ranges:
            assert (problem, lo) in faulted_ranges

    def test_accounting_balances_under_full_chaos(
        self, edit_func, edit_bindings
    ):
        """With verification legs and oracle recoveries in play, the
        books still balance: every partition launched beyond commit +
        verification belongs to a replayed (faulted) range."""
        supervisor = ExecutionSupervisor(
            plan=CHAOS,
            policy=SupervisionPolicy(checkpoint_interval=4),
        )
        supervisor.run(edit_func, dict(edit_bindings))
        stats = supervisor.stats
        extra = (
            stats.partitions_launched
            - stats.partitions_committed
            - stats.partitions_verified
        )
        replayed = sum(
            hi - lo + 1 for _, lo, hi in stats.replayed_ranges
        )
        assert extra == replayed
        assert stats.corruption_recovered == len(
            stats.recovered_ranges
        )
        # Oracle recoveries happened (the campaign injected bit-flips)
        # and each recovered range maps to a logged memory fault.
        assert stats.recovered_ranges
        memory_faults = {
            (event.site.problem, event.site.partition)
            for event in supervisor.injector.log
            if event.kind == "memory"
        }
        for problem, lo, hi in stats.recovered_ranges:
            assert any(
                lo <= partition <= hi
                for p, partition in memory_faults
                if p == problem
            )

    def test_clean_epochs_launch_once(self, edit_func, edit_bindings):
        plan = FaultPlan(seed=5, launch_fail_rate=0.25)
        supervisor = ExecutionSupervisor(
            plan=plan, policy=SupervisionPolicy(checkpoint_interval=2)
        )
        supervisor.run(edit_func, dict(edit_bindings))
        stats = supervisor.stats
        # launch-only plan => scan verification => exactly one launch
        # per committed epoch plus one per replayed round.
        assert stats.launches == stats.epochs_committed + stats.replays


class TestEscalation:
    def test_permanent_launch_failure_escalates(
        self, edit_func, edit_bindings
    ):
        plan = FaultPlan(seed=0, launch_fail_rate=1.0)
        supervisor = ExecutionSupervisor(
            plan=plan, policy=SupervisionPolicy(max_replays=2)
        )
        with pytest.raises(FaultEscalation):
            supervisor.run(edit_func, dict(edit_bindings))
        assert supervisor.stats.faults["LaunchFault"] == 3

    def test_escalation_is_a_device_fault(self):
        from repro.resilience.faults import DeviceFault

        assert issubclass(FaultEscalation, DeviceFault)


class TestWatchdog:
    def test_hung_kernel_detected_and_replayed(
        self, edit_func, edit_bindings
    ):
        plan = FaultPlan(seed=1, hang_rate=0.2, hang_seconds=0.2)
        supervisor = ExecutionSupervisor(
            plan=plan,
            policy=SupervisionPolicy(
                checkpoint_interval=2, watchdog_seconds=0.02
            ),
        )
        result = supervisor.run(edit_func, dict(edit_bindings))
        assert result.value == 3
        # Sandboxed native launches surface the wedge as SandboxHang
        # (the worker is SIGKILLed); in-process launches as KernelHang
        # (the watchdog abandons the thread). Both replay the range.
        faults = supervisor.stats.faults
        assert (faults.get("KernelHang", 0)
                + faults.get("SandboxHang", 0)) > 0

    def test_hang_without_watchdog_surfaces(self):
        """A plan that injects hangs auto-enables the watchdog."""
        plan = FaultPlan(seed=0, hang_rate=0.5, hang_seconds=0.1)
        supervisor = ExecutionSupervisor(plan=plan)
        assert supervisor._watchdog is not None

    def test_abandoned_hangs_do_not_leak_threads(
        self, edit_func, edit_bindings
    ):
        """Regression: each watchdog trip used to strand one epoch
        thread sleeping out the full injected hang. The wedge is a
        cancellable wait now, so the thread count returns to baseline
        as soon as the run finishes."""
        import threading
        import time

        plan = FaultPlan(seed=1, hang_rate=0.5, hang_seconds=30.0)
        # Pin the vector backend: the in-process thread watchdog is
        # the code path under test (sandboxed launches hang in the
        # worker subprocess and spawn no parent-side thread at all).
        supervisor = ExecutionSupervisor(
            Engine(backend="vector"),
            plan=plan,
            policy=SupervisionPolicy(
                checkpoint_interval=2, watchdog_seconds=0.02
            ),
        )
        baseline = threading.active_count()
        result = supervisor.run(edit_func, dict(edit_bindings))
        assert result.value == 3
        assert supervisor.stats.faults.get("KernelHang", 0) > 0
        # Cancelled epoch threads unwind promptly — with 30 s wedges,
        # any leak would still be alive here.
        deadline = time.monotonic() + 5.0
        while (threading.active_count() > baseline
               and time.monotonic() < deadline):
            time.sleep(0.01)
        assert threading.active_count() <= baseline


class TestSupervisedMap:
    def test_map_matches_fault_free(self, edit_func, edit_bindings):
        from repro.runtime.values import ENGLISH, Sequence

        problems = [
            {"s": Sequence(word, ENGLISH)}
            for word in ("kitten", "mitten", "witty", "sit")
        ]
        base = {"t": edit_bindings["t"]}
        baseline = Engine().map_run(edit_func, base, problems)
        supervisor = ExecutionSupervisor(
            plan=CHAOS,
            policy=SupervisionPolicy(checkpoint_interval=4),
        )
        result = supervisor.map_run(edit_func, base, problems)
        assert result.values == baseline.values
        assert supervisor.stats.problems == len(problems)

    def test_pricing_only_passes_through(
        self, edit_func, edit_bindings
    ):
        from repro.runtime.values import ENGLISH, Sequence

        problems = [{"s": Sequence("kitten", ENGLISH)}]
        supervisor = ExecutionSupervisor(plan=CHAOS)
        result = supervisor.map_run(
            edit_func, {"t": edit_bindings["t"]}, problems,
            execute=False,
        )
        assert supervisor.stats.problems == 0  # unsupervised path
        assert result.report.problems == 1


class TestDivergencePropagation:
    def test_buggy_backend_is_permanent(
        self, edit_func, edit_bindings
    ):
        """A deterministic miscompile surfaces as
        BackendDivergenceError (a DslError), not as a retried fault."""
        import dataclasses

        supervisor = ExecutionSupervisor(
            plan=FaultPlan(seed=3, corrupt_rate=0.05,
                           corrupt_mode="bitflip"),
            policy=SupervisionPolicy(checkpoint_interval=2),
        )
        engine = supervisor.engine
        real_compile = engine.compile

        def buggy_compile(func, schedule):
            compiled = real_compile(func, schedule)
            real_run = compiled.run

            def run(table, ctx, part_lo=None, part_hi=None):
                real_run(table, ctx, part_lo=part_lo, part_hi=part_hi)
                table[tuple(0 for _ in table.shape)] += 1  # the "bug"

            return dataclasses.replace(compiled, run=run)

        engine.compile = buggy_compile
        with pytest.raises(BackendDivergenceError):
            supervisor.run(edit_func, dict(edit_bindings))
