"""Lane-batched map execution (``repro.runtime.batching``)."""

import numpy as np
import pytest

from repro.apps.profile_hmm import tk_model
from repro.lang.parser import parse_function
from repro.lang.typecheck import check_function
from repro.runtime.batching import (
    MIN_BATCH,
    BatchedLaunch,
    pack_group,
    plan_batches,
)
from repro.runtime.engine import Engine
from repro.runtime.values import ENGLISH, Sequence

EDIT_DISTANCE = """
int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1
"""

FORWARD = """
prob forward(hmm h, state[h] s, seq[*] x, index[x] i) =
  if i == 0 then (if s.isstart then 1.0 else 0.0)
  else (if s.isend then 1.0 else s.emission[x[i-1]])
    * sum(t in s.transitionsto : t.prob * forward(t.start, i - 1))
"""

WORDS = ("kitten", "mitten", "sit", "knitting")


@pytest.fixture
def edit_func():
    return check_function(
        parse_function(EDIT_DISTANCE.strip()), {"en": ENGLISH.chars}
    )


@pytest.fixture
def forward_func():
    return check_function(parse_function(FORWARD.strip()), {})


def edit_problems(words=WORDS):
    return [{"s": Sequence(word, ENGLISH)} for word in words]


BASE = {"t": Sequence("sitting", ENGLISH)}


class TestPlanBatches:
    def prepared(self, engine, func, problems):
        prepared, _, _, _ = engine.prepare_map(func, BASE, problems)
        return prepared

    def test_same_kernel_problems_group(self, edit_func):
        prepared = self.prepared(
            Engine(backend="vector"), edit_func, edit_problems()
        )
        groups = plan_batches(prepared)
        assert groups == [[0, 1, 2, 3]]

    def test_scalar_kernels_never_batch(self, edit_func):
        prepared = self.prepared(
            Engine(backend="scalar"), edit_func, edit_problems()
        )
        assert plan_batches(prepared) == []

    def test_singleton_groups_dropped(self, edit_func):
        assert MIN_BATCH == 2
        prepared = self.prepared(
            Engine(backend="vector"), edit_func, edit_problems(["sit"])
        )
        assert plan_batches(prepared) == []

    def test_distinct_models_split_groups(self, forward_func):
        """Problems batch only when the shared HMM is the *same
        object* — its arrays ride in the batched context unpacked."""
        hmm_a, hmm_b = tk_model(seed=1), tk_model(seed=2)
        from repro.runtime.sequences import random_protein

        problems = [
            {"h": hmm_a, "x": random_protein(8, seed=1)},
            {"h": hmm_b, "x": random_protein(9, seed=2)},
            {"h": hmm_a, "x": random_protein(7, seed=3)},
            {"h": hmm_b, "x": random_protein(8, seed=4)},
        ]
        prepared = self.prepared(
            Engine(backend="vector", prob_mode="logspace"),
            forward_func,
            problems,
        )
        groups = plan_batches(prepared)
        assert sorted(sorted(g) for g in groups) == [[0, 2], [1, 3]]


class TestPackGroup:
    def packed(self, engine, func, problems):
        prepared, _, _, _ = engine.prepare_map(func, BASE, problems)
        (group,) = plan_batches(prepared)
        compiled = prepared[group[0]][2]
        members = [(prepared[i][0], prepared[i][1]) for i in group]
        return pack_group(compiled, members, indices=group), prepared

    def test_table_padded_to_max_extents(self, edit_func):
        packed, prepared = self.packed(
            Engine(backend="vector"), edit_func, edit_problems()
        )
        longest = max(len(word) for word in WORDS)
        assert packed.table.shape == (
            len(WORDS), longest + 1, len("sitting") + 1
        )
        assert packed.padded_domain.extents == packed.table.shape[1:]

    def test_bounds_and_sequences_packed_per_problem(self, edit_func):
        packed, _ = self.packed(
            Engine(backend="vector"), edit_func, edit_problems()
        )
        assert packed.ctx["ub_i"].shape == (len(WORDS), 1)
        assert [int(ub) for ub in packed.ctx["ub_i"][:, 0]] == [
            len(word) for word in WORDS
        ]
        seqs = packed.ctx["seq_s"]
        longest = max(len(word) for word in WORDS)
        assert seqs.shape == (len(WORDS), longest)
        for row, word in zip(seqs, WORDS):
            # padding past the member's own length stays zero
            assert (row[len(word):] == 0).all()

    def test_member_view_has_true_extents(self, edit_func):
        packed, prepared = self.packed(
            Engine(backend="vector"), edit_func, edit_problems()
        )
        for slot, index in enumerate(packed.indices):
            domain = prepared[index][1]
            assert packed.member_view(slot).shape == domain.extents


class TestBatchedMapRun:
    def test_values_match_loop_and_scalar(self, edit_func):
        problems = edit_problems()
        scalar = Engine(backend="scalar").map_run(
            edit_func, BASE, problems
        )
        looped = Engine(backend="vector", batching=False).map_run(
            edit_func, BASE, problems
        )
        batched = Engine(backend="vector", batching=True).map_run(
            edit_func, BASE, problems
        )
        assert batched.values == looped.values == scalar.values
        assert batched.lane_batches == 1
        assert batched.lane_batched_problems == len(problems)
        assert looped.lane_batches == 0
        assert len(batched.batched_costs) == 1

    def test_launch_report_invariant_under_batching(self, edit_func):
        """Batching is a host-side simulator optimisation: the
        analytic launch report prices the same per-problem costs."""
        problems = edit_problems()
        looped = Engine(backend="vector", batching=False).map_run(
            edit_func, BASE, problems
        )
        batched = Engine(backend="vector", batching=True).map_run(
            edit_func, BASE, problems
        )
        assert batched.report.problems == len(problems)
        assert batched.report.kernel_seconds == pytest.approx(
            looped.report.kernel_seconds
        )
        assert batched.costs == looped.costs

    def test_reduce_max_batched(self, edit_func):
        problems = edit_problems()
        scalar = Engine(backend="scalar").map_run(
            edit_func, BASE, problems, reduce="max"
        )
        batched = Engine(backend="vector").map_run(
            edit_func, BASE, problems, reduce="max"
        )
        assert batched.lane_batched_problems == len(problems)
        assert batched.values == scalar.values

    def test_reduction_kernel_batched_logspace(self, forward_func):
        from repro.runtime.sequences import random_protein

        hmm = tk_model()
        problems = [
            {"x": random_protein(6 + k, seed=k)} for k in range(5)
        ]
        scalar = Engine(
            backend="scalar", prob_mode="logspace"
        ).map_run(forward_func, {"h": hmm}, problems)
        batched = Engine(
            backend="vector", prob_mode="logspace"
        ).map_run(
            forward_func, {"h": hmm}, problems
        )
        assert batched.lane_batched_problems == len(problems)
        assert np.allclose(
            batched.values, scalar.values, rtol=1e-9, atol=1e-12
        )

    def test_pricing_only_never_batches(self, edit_func):
        result = Engine().map_run(
            edit_func, BASE, edit_problems(), execute=False
        )
        assert result.lane_batches == 0
        assert result.values == [None] * len(WORDS)

    def test_batching_off_engine_flag(self, edit_func):
        engine = Engine(batching=False)
        result = engine.map_run(edit_func, BASE, edit_problems())
        assert result.lane_batches == 0
        assert result.values == [3, 3, 4, 2]


class TestBatchedLaunch:
    def launch(self, edit_func):
        engine = Engine(backend="vector")
        prepared, _, _, _ = engine.prepare_map(
            edit_func, BASE, edit_problems()
        )
        (group,) = plan_batches(prepared)
        compiled = prepared[group[0]][2]
        members = [(prepared[i][0], prepared[i][1]) for i in group]
        return BatchedLaunch(pack_group(compiled, members, group))

    def test_padding_never_written(self, edit_func):
        launch = self.launch(edit_func)
        batch = launch.batch
        table = batch.table.copy()
        launch.run(table, batch.ctx)
        mask = np.ones_like(table, dtype=bool)
        for slot, domain in enumerate(batch.domains):
            mask[(slot,) + tuple(slice(0, e) for e in domain.extents)] = False
        assert (table[mask] == 0).all()

    def test_partition_split_reproduces_full_run(self, edit_func):
        launch = self.launch(edit_func)
        batch = launch.batch
        full = batch.table.copy()
        launch.run(full, batch.ctx)
        split = batch.table.copy()
        schedule = launch.schedule
        extents = dict(
            zip(schedule.dims, batch.padded_domain.extents)
        )
        span = schedule.span(extents)
        mid = span // 2
        launch.run(split, batch.ctx, part_lo=None, part_hi=mid)
        launch.run(split, batch.ctx, part_lo=mid + 1, part_hi=span)
        assert split.tobytes() == full.tobytes()

    def test_reference_run_agrees_with_batched(self, edit_func):
        launch = self.launch(edit_func)
        batch = launch.batch
        primary = batch.table.copy()
        launch.run(primary, batch.ctx)
        reference = batch.table.copy()
        launch.reference_run(reference, batch.ctx)
        for slot, domain in enumerate(batch.domains):
            sel = (slot,) + tuple(slice(0, e) for e in domain.extents)
            assert (primary[sel] == reference[sel]).all()


class TestNativeRung:
    """The batched-native rung: ladder position, demotion, parity."""

    from repro.runtime import native as _native_rt

    have_cc = _native_rt.available().ok

    def launch_for(self, edit_func, backend="native"):
        engine = Engine(backend=backend)
        prepared, _, _, _ = engine.prepare_map(
            edit_func, BASE, edit_problems()
        )
        (group,) = plan_batches(prepared)
        compiled = prepared[group[0]][2]
        members = [(prepared[i][0], prepared[i][1]) for i in group]
        return BatchedLaunch(pack_group(compiled, members, group))

    def native_launch(self, edit_func):
        return self.launch_for(edit_func, "native")

    def test_vector_compiled_starts_on_vector_rung(self, edit_func):
        launch = self.launch_for(edit_func, "vector")
        assert launch.rung == "vector"
        assert launch.backend == "vector-batched"

    def test_demotion_ladder_bottoms_out_at_scalar(self, edit_func):
        launch = self.launch_for(edit_func, "vector")
        assert launch.demote() == "scalar"
        assert launch.backend == "scalar-batched"

    @pytest.mark.skipif(not have_cc, reason="no C compiler")
    def test_native_compiled_starts_on_native_rung(self, edit_func):
        launch = self.native_launch(edit_func)
        assert launch.rung == "native"
        assert launch.backend == "native-batched"
        assert launch.demote() == "vector"
        assert launch.demote() == "scalar"

    @pytest.mark.skipif(not have_cc, reason="no C compiler")
    def test_native_rung_matches_scalar_sweep(self, edit_func):
        launch = self.native_launch(edit_func)
        batch = launch.batch
        native = batch.table.copy()
        launch.run(native, batch.ctx)
        assert launch.rung == "native"
        reference = batch.table.copy()
        launch.reference_run(reference, batch.ctx)
        for slot, domain in enumerate(batch.domains):
            sel = (slot,) + tuple(slice(0, e) for e in domain.extents)
            assert (
                native[sel].tobytes() == reference[sel].tobytes()
            )

    @pytest.mark.skipif(not have_cc, reason="no C compiler")
    def test_build_failure_demotes_to_vector(self, edit_func):
        """A native compiled whose shared object went missing demotes
        gracefully: the launch lands on the vector rung and still
        fills the exact table."""
        launch = self.native_launch(edit_func)
        launch.compiled.so_path = "/nonexistent/kernel.so"
        launch.compiled.batched_native_run = None
        batch = launch.batch
        table = batch.table.copy()
        launch.run(table, batch.ctx)
        assert launch.rung == "vector"
        assert launch.backend == "vector-batched"
        reference = batch.table.copy()
        launch.reference_run(reference, batch.ctx)
        for slot, domain in enumerate(batch.domains):
            sel = (slot,) + tuple(slice(0, e) for e in domain.extents)
            assert (table[sel] == reference[sel]).all()

    def test_ensure_batched_native_refuses_vector_compiled(
        self, edit_func
    ):
        from repro.lang.errors import NativeBuildError

        launch = self.launch_for(edit_func, "vector")
        with pytest.raises(NativeBuildError):
            launch.compiled.ensure_batched_native()

    @pytest.mark.skipif(not have_cc, reason="no C compiler")
    def test_map_run_reports_native_batched(self, edit_func):
        result = Engine(backend="native").map_run(
            edit_func, BASE, edit_problems()
        )
        assert result.batched_backends == ["native-batched"]
        assert result.lane_batched_problems == len(WORDS)

    @pytest.mark.skipif(not have_cc, reason="no C compiler")
    def test_openmp_off_is_bitwise_identical(
        self, edit_func, monkeypatch
    ):
        """REPRO_NATIVE_OMP=0 compiles a pragma-free TU (a different
        content hash, so a fresh .so); the batched rung must fill
        bit-identical tables either way."""
        default = Engine(backend="native").map_run(
            edit_func, BASE, edit_problems()
        )
        monkeypatch.setenv("REPRO_NATIVE_OMP", "0")
        serial = Engine(backend="native").map_run(
            edit_func, BASE, edit_problems()
        )
        assert serial.batched_backends == ["native-batched"]
        assert [int(v) for v in serial.values] == [
            int(v) for v in default.values
        ]

    @pytest.mark.skipif(not have_cc, reason="no C compiler")
    def test_forced_single_thread_is_bitwise_identical(
        self, edit_func, monkeypatch
    ):
        """REPRO_NATIVE_THREADS=1 caps the OpenMP problem loop; the
        per-member nests are untouched, so results cannot move."""
        default = Engine(backend="native").map_run(
            edit_func, BASE, edit_problems()
        )
        monkeypatch.setenv("REPRO_NATIVE_THREADS", "1")
        capped = Engine(backend="native").map_run(
            edit_func, BASE, edit_problems()
        )
        assert capped.batched_backends == ["native-batched"]
        assert [int(v) for v in capped.values] == [
            int(v) for v in default.values
        ]
