"""Tests for the ``python -m repro`` command-line entry point."""

import pytest

from repro.__main__ import DEMO, main


class TestCli:
    def test_demo(self, capsys):
        assert main(["--demo"]) == 0
        out = capsys.readouterr().out
        assert "3" in out

    def test_script_file(self, tmp_path, capsys):
        script = tmp_path / "prog.dsl"
        script.write_text(DEMO)
        assert main([str(script)]) == 0
        assert "3" in capsys.readouterr().out

    def test_time_flag(self, tmp_path, capsys):
        script = tmp_path / "prog.dsl"
        script.write_text(DEMO)
        assert main([str(script), "--time"]) == 0
        err = capsys.readouterr().err
        assert "partitions" in err
        assert "simulated" in err

    def test_cuda_flag(self, capsys):
        assert main(["--demo", "--cuda"]) == 0
        assert "__global__" in capsys.readouterr().err

    def test_missing_script(self):
        with pytest.raises(SystemExit):
            main([])

    def test_nonexistent_script(self):
        with pytest.raises(SystemExit):
            main(["/nonexistent/prog.dsl"])

    def test_dsl_error_rendered_with_caret(self, tmp_path, capsys):
        script = tmp_path / "bad.dsl"
        script.write_text(
            'alphabet en = "ab"\n'
            "int f(seq[en] s, index[s] i) = if i == 0 then 0 else k\n"
            'print f("ab", 2)\n'
        )
        assert main([str(script)]) == 1
        err = capsys.readouterr().err
        assert "unknown variable" in err
        assert "^" in err  # caret diagnostics

    def test_explain_reports_backend_and_rule(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        script = tmp_path / "prog.dsl"
        script.write_text(DEMO)
        assert main(["explain", str(script)]) == 0
        out = capsys.readouterr().out
        assert "d: backend=vector rule=ok" in out
        assert "schedule=S = i + j" in out
        assert "native: [disabled]" in out

    def test_explain_reduction_kernel(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        script = tmp_path / "fwd.dsl"
        script.write_text(
            'alphabet dna = "acgt"\n'
            "hmm h [dna] {\n"
            "  state b : start\n"
            "  state m emits { a: 0.5, t: 0.5 }\n"
            "  state e : end\n"
            "  trans b -> m : 1.0\n"
            "  trans m -> m : 0.5\n"
            "  trans m -> e : 0.5\n"
            "}\n"
            "prob fw(hmm h, state[h] s, seq[*] x, index[x] i) =\n"
            "  if i == 0 then (if s.isstart then 1.0 else 0.0)\n"
            "  else (if s.isend then 1.0 else s.emission[x[i-1]])\n"
            "    * sum(t in s.transitionsto : t.prob * fw(t.start, i-1))\n"
            'print fw(h, h.end, "at", 2)\n'
        )
        assert main(["explain", str(script)]) == 0
        out = capsys.readouterr().out
        assert "fw: backend=vector rule=ok" in out
        assert "masked lane-uniform" in out

    def test_explain_scalar_fallback_named(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        script = tmp_path / "one.dsl"
        script.write_text(
            "int f(int n) = if n == 0 then 0 else f(n-1) + 1\n"
            "print f(4)\n"
        )
        assert main(["explain", str(script)]) == 0
        out = capsys.readouterr().out
        assert "f: backend=scalar rule=rank" in out

    def test_explain_json_mode(self, tmp_path, capsys, monkeypatch):
        """--json emits machine-readable eligibility verdicts and
        certificate summaries, nothing else on stdout."""
        import json

        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        script = tmp_path / "prog.dsl"
        script.write_text(DEMO)
        assert main(["explain", str(script), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["script"] == str(script)
        (record,) = payload["functions"]
        assert record["function"] == "d"
        assert record["backend"] == "vector"
        assert record["vector"] == {
            "ok": True,
            "rule": "ok",
            "detail": record["vector"]["detail"],
        }
        assert record["native_toolchain"]["ok"] is False
        assert record["native_toolchain"]["rule"] == "disabled"
        assert record["verification"]["ok"] is True
        assert "verified" in record["verification"]["summary"]

    def test_explain_json_scalar_fallback(
        self, tmp_path, capsys, monkeypatch
    ):
        import json

        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        script = tmp_path / "one.dsl"
        script.write_text(
            "int f(int n) = if n == 0 then 0 else f(n-1) + 1\n"
            "print f(4)\n"
        )
        assert main(["explain", str(script), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        (record,) = payload["functions"]
        assert record["backend"] == "scalar"
        assert record["vector"]["ok"] is False
        assert record["vector"]["rule"] == "rank"

    def test_explain_prints_parallel_verdict(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        script = tmp_path / "prog.dsl"
        script.write_text(DEMO)
        assert main(["explain", str(script)]) == 0
        out = capsys.readouterr().out
        assert "parallel: space=confirmed" in out

    def test_explain_json_parallel_block(
        self, tmp_path, capsys, monkeypatch
    ):
        import json

        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        script = tmp_path / "prog.dsl"
        script.write_text(DEMO)
        assert main(["explain", str(script), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        (record,) = payload["functions"]
        parallel = record["parallel"]
        assert parallel["ok"] is True
        assert parallel["space"]["status"] == "confirmed"
        assert parallel["batched"]["status"] == "confirmed"
        assert parallel["ring"]["status"] in (
            "confirmed", "not-applicable"
        )

    def test_logspace_mode(self, tmp_path, capsys):
        script = tmp_path / "fwd.dsl"
        script.write_text(
            'alphabet dna = "acgt"\n'
            "hmm h [dna] {\n"
            "  state b : start\n"
            "  state m emits { a: 0.5, t: 0.5 }\n"
            "  state e : end\n"
            "  trans b -> m : 1.0\n"
            "  trans m -> m : 0.5\n"
            "  trans m -> e : 0.5\n"
            "}\n"
            "prob fw(hmm h, state[h] s, seq[*] x, index[x] i) =\n"
            "  if i == 0 then (if s.isstart then 1.0 else 0.0)\n"
            "  else (if s.isend then 1.0 else s.emission[x[i-1]])\n"
            "    * sum(t in s.transitionsto : t.prob * fw(t.start, i-1))\n"
            'print fw(h, h.end, "at", 2)\n'
        )
        assert main([str(script), "--prob-mode", "logspace"]) == 0
        out = capsys.readouterr().out
        assert out.strip().startswith("0.25")
