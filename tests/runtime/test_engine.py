"""Tests for the end-to-end Engine."""

import math

import pytest

from repro.extensions.hmm import HmmBuilder
from repro.lang.parser import parse_expr, parse_function
from repro.lang.errors import ScheduleError
from repro.lang.typecheck import check_function
from repro.runtime.engine import Engine
from repro.runtime.interpreter import memoised
from repro.runtime.values import Bindings, DNA, ENGLISH, Sequence
from repro.schedule.schedule import Schedule

EN = {"en": ENGLISH.chars}

EDIT_DISTANCE = """
int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1
"""

FORWARD = """
prob forward(hmm h, state[h] s, seq[*] x, index[x] i) =
  if i == 0 then (if s.isstart then 1.0 else 0.0)
  else (if s.isend then 1.0 else s.emission[x[i-1]])
    * sum(t in s.transitionsto : t.prob * forward(t.start, i - 1))
"""


def checked(src, alphabets=EN):
    return check_function(parse_function(src.strip()), alphabets)


def toy_hmm():
    return (
        HmmBuilder("h", DNA)
        .start("b")
        .uniform_state("m")
        .end("e")
        .transition("b", "m", 1.0)
        .transition("m", "m", 0.9)
        .transition("m", "e", 0.1)
        .build()
    )


class TestRun:
    def test_edit_distance(self):
        engine = Engine()
        result = engine.run(
            checked(EDIT_DISTANCE),
            {"s": Sequence("kitten", ENGLISH),
             "t": Sequence("sitting", ENGLISH)},
        )
        assert result.value == 3
        assert result.schedule == Schedule.of(i=1, j=1)
        assert result.seconds > 0

    def test_explicit_coordinates(self):
        engine = Engine()
        result = engine.run(
            checked(EDIT_DISTANCE),
            {"s": Sequence("abc", ENGLISH),
             "t": Sequence("abc", ENGLISH)},
            at={"i": 1, "j": 0},
        )
        assert result.value == 1

    def test_int_dimension_initial_value(self):
        engine = Engine()
        func = checked(
            "int fib(int n) = if n < 2 then n else fib(n-1) + fib(n-2)"
        )
        result = engine.run(func, {}, initial={"n": 20})
        assert result.value == 6765

    def test_forward_uses_end_state_default(self):
        engine = Engine()
        hmm = toy_hmm()
        x = Sequence("acgt", DNA)
        func = checked(FORWARD, {"dna": DNA.chars})
        result = engine.run(func, {"h": hmm, "x": x})
        oracle = memoised(func, Bindings({"h": hmm, "x": x}))
        assert result.value == pytest.approx(
            oracle((hmm.end_state.index, 4))
        )

    def test_reduce_max(self):
        engine = Engine()
        result = engine.run(
            checked(EDIT_DISTANCE),
            {"s": Sequence("ab", ENGLISH), "t": Sequence("cd", ENGLISH)},
            reduce="max",
        )
        assert result.value == result.table.max()

    def test_user_schedule_honoured(self):
        engine = Engine()
        result = engine.run(
            checked(EDIT_DISTANCE),
            {"s": Sequence("ab", ENGLISH), "t": Sequence("ab", ENGLISH)},
            user_schedule=parse_expr("2*i + j"),
        )
        assert result.schedule == Schedule.of(i=2, j=1)
        assert result.value == 0

    def test_invalid_user_schedule_rejected(self):
        engine = Engine()
        with pytest.raises(ScheduleError):
            engine.run(
                checked(EDIT_DISTANCE),
                {"s": Sequence("ab", ENGLISH),
                 "t": Sequence("ab", ENGLISH)},
                user_schedule=parse_expr("i - j"),
            )

    def test_logspace_engine_matches_direct(self):
        func = checked(FORWARD, {"dna": DNA.chars})
        hmm = toy_hmm()
        x = Sequence("acgtacgt", DNA)
        direct = Engine(prob_mode="direct").run(func, {"h": hmm, "x": x})
        logged = Engine(prob_mode="logspace").run(
            func, {"h": hmm, "x": x}
        )
        assert logged.value == pytest.approx(direct.value, rel=1e-9)


class TestCache:
    def test_second_run_hits_cache(self):
        engine = Engine()
        func = checked(EDIT_DISTANCE)
        for text in ("abc", "abcd"):
            engine.run(
                func,
                {"s": Sequence(text, ENGLISH),
                 "t": Sequence("xyz", ENGLISH)},
            )
        assert engine.cache_misses == 1
        assert engine.cache_hits >= 1

    def test_different_schedules_compile_separately(self):
        engine = Engine()
        func = checked(EDIT_DISTANCE)
        engine.compile(func, Schedule.of(i=1, j=1))
        engine.compile(func, Schedule.of(i=2, j=1))
        assert engine.cache_misses == 2

    def test_compile_seconds_recorded(self):
        engine = Engine()
        compiled = engine.compile(checked(EDIT_DISTANCE),
                                  Schedule.of(i=1, j=1))
        assert compiled.compile_seconds > 0

    def test_cuda_source_available(self):
        engine = Engine()
        compiled = engine.compile(checked(EDIT_DISTANCE),
                                  Schedule.of(i=1, j=1))
        assert "__global__" in compiled.cuda_source()


class TestMapRun:
    def test_values_match_individual_runs(self):
        engine = Engine()
        func = checked(EDIT_DISTANCE)
        q = Sequence("abcd", ENGLISH)
        targets = [Sequence(t, ENGLISH) for t in ("abc", "bcd", "xyz")]
        result = engine.map_run(
            func, {"s": q}, [{"t": t} for t in targets]
        )
        singles = [
            engine.run(func, {"s": q, "t": t}).value for t in targets
        ]
        assert result.values == singles

    def test_conditional_parallelisation_used(self):
        """Problems of different shapes pick different schedules."""
        engine = Engine()
        func = checked(
            "int f(seq[en] a, index[a] x, seq[en] b, index[b] y) = "
            "if x == 0 then 0 else if y == 0 then 0 else f(x-1, y-1)"
        )
        wide = Sequence("a" * 30, ENGLISH)
        narrow = Sequence("ab", ENGLISH)
        result = engine.map_run(
            func,
            {},
            [
                {"a": narrow, "b": wide},   # nx < ny -> S = x
                {"a": wide, "b": narrow},   # ny < nx -> S = y
            ],
        )
        assert len(result.schedule_usage) == 2
        assert set(result.schedule_usage) == {(1, 0), (0, 1)}

    def test_device_report_counts_problems(self):
        engine = Engine()
        func = checked(EDIT_DISTANCE)
        q = Sequence("ab", ENGLISH)
        result = engine.map_run(
            func, {"s": q},
            [{"t": Sequence("cd", ENGLISH)}] * 5,
        )
        assert result.report.problems == 5
        assert result.seconds > 0

    def test_parallel_faster_than_serial_sum(self):
        """map on 15 SMs beats running problems back to back."""
        engine = Engine()
        func = checked(EDIT_DISTANCE)
        q = Sequence("a" * 64, ENGLISH)
        targets = [{"t": Sequence("b" * 64, ENGLISH)} for _ in range(15)]
        mapped = engine.map_run(func, {"s": q}, targets)
        serial = sum(c.seconds for c in mapped.costs)
        assert mapped.report.kernel_seconds < serial / 10


class TestCostKnobs:
    def test_window_reduces_modelled_cost(self):
        engine = Engine()
        func = checked(EDIT_DISTANCE)
        s = Sequence("a" * 200, ENGLISH)
        t = Sequence("b" * 200, ENGLISH)
        with_window = engine.run(func, {"s": s, "t": t},
                                 use_window=True)
        without = engine.run(func, {"s": s, "t": t}, use_window=False)
        assert with_window.cost.window_in_shared
        assert not without.cost.window_in_shared
        assert with_window.cost.seconds < without.cost.seconds
        # Functional results identical either way.
        assert (with_window.table == without.table).all()

    def test_windowed_cuda_available(self):
        engine = Engine()
        compiled = engine.compile(checked(EDIT_DISTANCE),
                                  Schedule.of(i=1, j=1))
        text = compiled.cuda_source(windowed=True)
        assert "swin" in text

    def test_missing_binding_message(self):
        engine = Engine()
        func = checked(EDIT_DISTANCE)
        with pytest.raises(Exception, match="missing binding"):
            engine.run(func, {"s": Sequence("ab", ENGLISH)})

    def test_wrong_binding_type_message(self):
        from repro.lang.errors import RuntimeDslError

        engine = Engine()
        func = checked(EDIT_DISTANCE)
        with pytest.raises(RuntimeDslError, match="must be a Sequence"):
            engine.run(func, {"s": "raw string",
                              "t": Sequence("ab", ENGLISH)})

    def test_unknown_reduce_rejected(self):
        from repro.lang.errors import RuntimeDslError

        engine = Engine()
        func = checked(EDIT_DISTANCE)
        with pytest.raises(RuntimeDslError, match="unknown reduction"):
            engine.run(
                func,
                {"s": Sequence("ab", ENGLISH),
                 "t": Sequence("cd", ENGLISH)},
                reduce="median",
            )


class TestParallelismModes:
    """Section 6.1: intra vs inter vs hybrid map strategies."""

    def _search(self, engine, parallelism, **kw):
        func = checked(EDIT_DISTANCE)
        q = Sequence("abcd" * 4, ENGLISH)
        targets = [
            {"t": Sequence("bcda" * (1 + k % 3), ENGLISH)}
            for k in range(12)
        ]
        return engine.map_run(
            func, {"s": q}, targets, parallelism=parallelism, **kw
        )

    def _price(self, engine, parallelism, length, count):
        func = checked(EDIT_DISTANCE)
        q = Sequence("ab" * (length // 2), ENGLISH)
        targets = [
            {"t": Sequence("ba" * (length // 2), ENGLISH)}
        ] * count
        return engine.map_run(
            func, {"s": q}, targets, parallelism=parallelism,
            execute=False,
        )

    def test_values_identical_across_modes(self):
        engine = Engine()
        results = {
            mode: self._search(engine, mode)
            for mode in ("intra", "inter", "hybrid")
        }
        assert results["intra"].values == results["inter"].values
        assert results["intra"].values == results["hybrid"].values

    def test_parallelism_recorded(self):
        engine = Engine()
        assert self._search(engine, "inter").parallelism == "inter"
        assert self._search(engine, "intra").parallelism == "intra"

    def test_inter_wins_only_for_masses_of_tiny_problems(self):
        """The generated sequence-per-thread kernel pays generic
        global-memory costs per cell, so it only overtakes intra-task
        (with occupancy packing and the shared window) for very large
        counts of very small problems. CUDASW++'s hybrid advantage
        comes from its hand-virtualised SIMD inner loop, not from the
        strategy alone — an honest divergence from the paper's
        (unmeasured) expectation in Section 6.1.
        """
        engine = Engine()
        intra = self._price(engine, "intra", 12, 5000)
        inter = self._price(engine, "inter", 12, 5000)
        assert intra.values == [None] * 5000  # price-only launch
        assert inter.report.kernel_seconds < (
            intra.report.kernel_seconds
        )

    def test_intra_beats_inter_on_large_problems(self):
        """Large tables fill the multiprocessor cooperatively and use
        the shared-memory window; per-thread serial walks cannot."""
        engine = Engine()
        intra = self._price(engine, "intra", 400, 30)
        inter = self._price(engine, "inter", 400, 30)
        assert intra.report.kernel_seconds < (
            inter.report.kernel_seconds
        )

    def test_hybrid_splits_by_threshold(self):
        engine = Engine()
        result = self._search(
            engine, "hybrid", hybrid_threshold=10_000_000
        )
        # Everything under the huge threshold goes inter-task.
        assert result.parallelism == "hybrid"
        assert result.seconds > 0

    def test_unknown_parallelism_rejected(self):
        from repro.lang.errors import RuntimeDslError

        engine = Engine()
        with pytest.raises(RuntimeDslError, match="parallelism"):
            self._search(engine, "diagonal")
