"""The shipped .dsl scripts stay runnable through the CLI."""

from pathlib import Path

import pytest

from repro.__main__ import main

SCRIPTS = sorted(
    (Path(__file__).resolve().parents[2] / "examples" / "scripts")
    .glob("*.dsl")
)


@pytest.mark.parametrize(
    "script", SCRIPTS, ids=[s.stem for s in SCRIPTS]
)
def test_script_runs(script, capsys):
    assert main([str(script)]) == 0
    out = capsys.readouterr().out
    assert out.strip()


def test_scripts_exist():
    assert {s.stem for s in SCRIPTS} >= {
        "edit_distance", "smith_waterman", "forward"
    }


def test_edit_distance_values(capsys):
    script = next(s for s in SCRIPTS if s.stem == "edit_distance")
    assert main([str(script)]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert lines == ["3", "0"]


def test_forward_logspace_agrees_with_direct(capsys):
    script = next(s for s in SCRIPTS if s.stem == "forward")
    assert main([str(script)]) == 0
    direct = float(capsys.readouterr().out.strip())
    assert main([str(script), "--prob-mode", "logspace"]) == 0
    logspace = float(capsys.readouterr().out.strip())
    assert logspace == pytest.approx(direct, rel=1e-9)


def test_nussinov_script_values(capsys):
    script = next(s for s in SCRIPTS if s.stem == "nussinov")
    assert main([str(script)]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert lines == ["3", "5"]  # hairpin pairs, stem-loop pairs
