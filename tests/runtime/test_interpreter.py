"""Tests for the memoised interpreter (the semantic oracle)."""

import pytest

from repro.extensions.hmm import HmmBuilder
from repro.lang.errors import RuntimeDslError
from repro.lang.parser import parse_function
from repro.lang.typecheck import check_function
from repro.runtime.interpreter import domain_extents, memoised
from repro.runtime.values import Bindings, DNA, ENGLISH, Sequence

EN = {"en": ENGLISH.chars}

EDIT_DISTANCE = """
int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1
"""


def checked(src, alphabets=EN):
    return check_function(parse_function(src.strip()), alphabets)


class TestEditDistance:
    def test_kitten_sitting(self):
        func = checked(EDIT_DISTANCE)
        call = memoised(
            func,
            Bindings({"s": Sequence("kitten", ENGLISH),
                      "t": Sequence("sitting", ENGLISH)}),
        )
        assert call((6, 7)) == 3

    def test_empty_strings(self):
        func = checked(EDIT_DISTANCE)
        call = memoised(
            func,
            Bindings({"s": Sequence("", ENGLISH),
                      "t": Sequence("abc", ENGLISH)}),
        )
        assert call((0, 3)) == 3

    def test_identical_strings(self):
        func = checked(EDIT_DISTANCE)
        call = memoised(
            func,
            Bindings({"s": Sequence("same", ENGLISH),
                      "t": Sequence("same", ENGLISH)}),
        )
        assert call((4, 4)) == 0

    def test_symmetry(self):
        func = checked(EDIT_DISTANCE)
        a, b = "flaw", "lawn"
        one = memoised(func, Bindings({
            "s": Sequence(a, ENGLISH), "t": Sequence(b, ENGLISH)}))
        two = memoised(func, Bindings({
            "s": Sequence(b, ENGLISH), "t": Sequence(a, ENGLISH)}))
        assert one((4, 4)) == two((4, 4))


class TestArithmetic:
    def test_fibonacci(self):
        func = checked(
            "int fib(int n) = if n < 2 then n else fib(n-1) + fib(n-2)"
        )
        call = memoised(func, Bindings({}))
        assert [call((k,)) for k in range(10)] == [
            0, 1, 1, 2, 3, 5, 8, 13, 21, 34
        ]

    def test_int_division_truncates_like_c(self):
        func = checked("int f(int n) = (0 - 7) / 2")
        call = memoised(func, Bindings({}))
        assert call((0,)) == -3  # C truncation, not floor (-4)

    def test_division_by_zero(self):
        func = checked("int f(int n) = n / (n - n)")
        call = memoised(func, Bindings({}))
        with pytest.raises(RuntimeDslError, match="zero"):
            call((1,))

    def test_min_max_chain(self):
        func = checked("int f(int n) = (n min 3) max 1")
        call = memoised(func, Bindings({}))
        assert call((0,)) == 1
        assert call((2,)) == 2
        assert call((9,)) == 3

    def test_float_arithmetic(self):
        func = checked("float f(float g, int n) = g * 2.0 + 1.0")
        call = memoised(func, Bindings({"g": 1.5}))
        assert call((0,)) == pytest.approx(4.0)

    def test_comparisons(self):
        func = checked(
            "int f(int n) = if n <= 2 then if n >= 1 then 1 else 0 "
            "else if n != 5 then 2 else 3"
        )
        call = memoised(func, Bindings({}))
        assert call((0,)) == 0
        assert call((2,)) == 1
        assert call((4,)) == 2
        assert call((5,)) == 3


class TestHmm:
    def _hmm(self):
        return (
            HmmBuilder("h", DNA)
            .start("b")
            .add_state("m", {"a": 0.5, "c": 0.5})
            .end("e")
            .transition("b", "m", 1.0)
            .transition("m", "m", 0.5)
            .transition("m", "e", 0.5)
            .build()
        )

    def test_forward_by_hand(self):
        src = """
        prob forward(hmm h, state[h] s, seq[*] x, index[x] i) =
          if i == 0 then (if s.isstart then 1.0 else 0.0)
          else (if s.isend then 1.0 else s.emission[x[i-1]])
            * sum(t in s.transitionsto : t.prob * forward(t.start, i-1))
        """
        func = checked(src, {"dna": DNA.chars})
        hmm = self._hmm()
        x = Sequence("ac", DNA)
        call = memoised(func, Bindings({"h": hmm, "x": x}))
        # By hand: F(m,1) = 0.5 (emit a) * 1.0; F(m,2) = 0.5 * 0.5*F(m,1)
        assert call((1, 1)) == pytest.approx(0.5)
        assert call((1, 2)) == pytest.approx(0.125)
        # End state is silent: F(e,2) = 0.5 * F(m,1) = 0.25.
        assert call((2, 2)) == pytest.approx(0.25)

    def test_transition_fields(self):
        src = """
        prob g(hmm h, transition[h] t, seq[*] x, index[x] i) = t.prob
        """
        func = checked(src, {"dna": DNA.chars})
        hmm = self._hmm()
        call = memoised(
            func, Bindings({"h": hmm, "x": Sequence("a", DNA)})
        )
        assert call((0, 0)) == pytest.approx(1.0)
        assert call((1, 0)) == pytest.approx(0.5)

    def test_out_reduction(self):
        src = """
        prob g(hmm h, state[h] s, seq[*] x, index[x] i) =
          sum(t in s.transitionsfrom : t.prob)
        """
        func = checked(src, {"dna": DNA.chars})
        call = memoised(
            func, Bindings({"h": self._hmm(), "x": Sequence("a", DNA)})
        )
        assert call((1, 0)) == pytest.approx(1.0)  # 0.5 + 0.5
        assert call((2, 0)) == pytest.approx(0.0)  # end: no outgoing

    def test_min_over_empty_set_raises(self):
        src = """
        prob g(hmm h, state[h] s, seq[*] x, index[x] i) =
          min(t in s.transitionsfrom : t.prob)
        """
        func = checked(src, {"dna": DNA.chars})
        call = memoised(
            func, Bindings({"h": self._hmm(), "x": Sequence("a", DNA)})
        )
        with pytest.raises(RuntimeDslError, match="empty"):
            call((2, 0))


class TestDomainExtents:
    def test_index_extent_is_length_plus_one(self):
        func = checked(EDIT_DISTANCE)
        extents = domain_extents(
            func,
            Bindings({"s": Sequence("abc", ENGLISH),
                      "t": Sequence("ab", ENGLISH)}),
        )
        assert extents == (4, 3)

    def test_int_needs_initial(self):
        func = checked("int f(int n) = n")
        with pytest.raises(RuntimeDslError, match="initial"):
            domain_extents(func, Bindings({}))
        assert domain_extents(
            func, Bindings({}), {"n": 9}
        ) == (10,)

    def test_state_extent_is_state_count(self):
        src = "prob g(hmm h, state[h] s, seq[*] x, index[x] i) = 1.0"
        func = checked(src, {"dna": DNA.chars})
        hmm = (
            HmmBuilder("h", DNA).start("b")
            .add_state("m", {"a": 1.0}).end("e")
            .transition("b", "m", 1.0).transition("m", "e", 1.0)
            .build()
        )
        extents = domain_extents(
            func, Bindings({"h": hmm, "x": Sequence("acg", DNA)})
        )
        assert extents == (3, 4)

    def test_missing_binding(self):
        func = checked(EDIT_DISTANCE)
        with pytest.raises(RuntimeDslError, match="missing binding"):
            domain_extents(func, Bindings({}))
