"""Tests for mutual-group execution (Section 9 extension)."""

import pytest

from repro.analysis.domain import Domain
from repro.lang.parser import parse_program
from repro.lang.typecheck import check_program
from repro.runtime.mutual import (
    MutualLockStep,
    MutualRaceError,
    MutualTabulator,
    mutual_cost,
    solve_mutual,
)
from repro.runtime.values import Bindings
from repro.schedule.mutual_rec import (
    FunctionSchedule,
    MutualSchedule,
    find_mutual_schedules,
)
from repro.schedule.schedule import Schedule

PING_PONG = """
int f(int n) = if n == 0 then 0 else g(n - 1) + 1
int g(int n) = if n == 0 then 0 else f(n - 1) + 2
"""


def funcs_of(src, names):
    checked = check_program(parse_program(src))
    return {name: checked.function(name) for name in names}


def ping_pong_reference(n, start="f"):
    """Direct Python evaluation of the f/g pair."""
    if n == 0:
        return 0
    if start == "f":
        return ping_pong_reference(n - 1, "g") + 1
    return ping_pong_reference(n - 1, "f") + 2


class TestExecution:
    def test_ping_pong_values(self):
        funcs = funcs_of(PING_PONG, ("f", "g"))
        bindings = {"f": Bindings({}), "g": Bindings({})}
        result = solve_mutual(
            funcs, bindings, initial={"f": {"n": 9}, "g": {"n": 9}}
        )
        for n in range(10):
            assert result.value("f", (n,)) == (
                ping_pong_reference(n, "f")
            )
            assert result.value("g", (n,)) == (
                ping_pong_reference(n, "g")
            )

    def test_tabulator_and_lockstep_agree(self):
        funcs = funcs_of(PING_PONG, ("f", "g"))
        bindings = {"f": Bindings({}), "g": Bindings({})}
        initial = {"f": {"n": 7}, "g": {"n": 7}}
        serial = solve_mutual(
            funcs, bindings, initial=initial, lockstep=False
        )
        barrier = solve_mutual(
            funcs, bindings, initial=initial, lockstep=True
        )
        for name in funcs:
            assert (serial.tables[name] == barrier.tables[name]).all()

    def test_incompatible_schedules_race(self):
        """Force offsets that put g's producers in f's partition."""
        funcs = funcs_of(PING_PONG, ("f", "g"))
        bad = MutualSchedule({
            "f": FunctionSchedule(Schedule.of(n=1), 0),
            # g(n) uses f(n-1); f(n) uses g(n-1): S_g = n - 1 means
            # f(n) at step n reads g(n-1) at step n - 2: fine; but
            # g(n) at step n - 1 reads f(n - 1) at step n - 1: race.
            "g": FunctionSchedule(Schedule.of(n=1), -1),
        })
        bindings = {"f": Bindings({}), "g": Bindings({})}
        executor = MutualLockStep(
            funcs, bindings, bad,
            initial={"f": {"n": 5}, "g": {"n": 5}},
        )
        with pytest.raises(MutualRaceError):
            executor.run()

    def test_seconds_positive_and_scaling(self):
        funcs = funcs_of(PING_PONG, ("f", "g"))
        small = {n: Domain.of(n=10) for n in funcs}
        large = {n: Domain.of(n=1000) for n in funcs}
        mutual_small = find_mutual_schedules(funcs, small)
        cost_small = mutual_cost(funcs, mutual_small, small)
        cost_large = mutual_cost(funcs, mutual_small, large)
        assert 0 < cost_small < cost_large


class TestRnaGrammar:
    """The paper's named Section 9 application."""

    @pytest.fixture(scope="class")
    def grammar(self):
        from repro.apps.rna_grammar import RnaGrammar

        return RnaGrammar()

    @pytest.mark.parametrize(
        "text", ["gggaaaccc", "ggcgcaaagcgcc", "acgucgua"]
    )
    def test_matches_single_function_nussinov(self, grammar, text):
        from repro.apps.rna_folding import RNA, nussinov_reference
        from repro.runtime.values import Sequence

        seq = Sequence(text, RNA)
        fold = grammar.fold(seq)
        assert fold.score == nussinov_reference(seq)[0, len(seq)]

    def test_schedules_interleave(self, grammar):
        from repro.apps.rna_folding import RNA
        from repro.runtime.values import Sequence

        fold = grammar.fold(Sequence("gggaaaccc", RNA))
        struct_sched = fold.result.mutual["struct"]
        paired_sched = fold.result.mutual["paired"]
        # Same span coefficients, paired strictly earlier.
        assert struct_sched.schedule == paired_sched.schedule
        assert paired_sched.offset < struct_sched.offset

    def test_random_sequences(self, grammar):
        import random

        from repro.apps.rna_folding import RNA, nussinov_reference
        from repro.runtime.values import Sequence

        rng = random.Random(4)
        for _ in range(3):
            text = "".join(rng.choices("acgu", k=10))
            seq = Sequence(text, RNA)
            assert grammar.fold(seq).score == (
                nussinov_reference(seq)[0, len(seq)]
            )
