"""Tests for the native compiled backend (cc + ctypes runtime)."""

import os

import numpy as np
import pytest

from repro.ir import cbackend
from repro.lang.errors import CodegenError, DslError, NativeBuildError
from repro.lang.parser import parse_function
from repro.lang.typecheck import check_function
from repro.runtime import native
from repro.runtime.engine import (
    Engine,
    VECTOR_CROSSOVER_DEFAULT,
    vector_crossover_extent,
)
from repro.runtime.values import Bindings, Sequence

EN = {"en": "abcdefghijklmnopqrstuvwxyz"}
ALPHABET = "abcdefghijklmnopqrstuvwxyz"

EDIT_DISTANCE = """
int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1
"""

have_cc = native.available().ok
needs_cc = pytest.mark.skipif(
    not have_cc, reason="no working C compiler in this environment"
)


def edit_func():
    return check_function(parse_function(EDIT_DISTANCE.strip()), EN)


def edit_bindings(n=9, m=11):
    return {
        "s": Sequence("abacadabra"[:n], ALPHABET),
        "t": Sequence("abracadabra"[:m], ALPHABET),
    }


def compile_edit(engine, bindings=None):
    func = edit_func()
    bound = Bindings(dict(bindings or edit_bindings()))
    domain = engine.domain_of(func, bound)
    schedule = engine.schedule_for(func, domain)
    compiled = engine.compile(func, schedule, domain)
    ctx = engine.build_context(compiled, bound, domain)
    table = engine._table_for(compiled.kernel, domain)
    return compiled, ctx, table, domain, schedule


class TestAvailability:
    def test_disable_env_checked_fresh(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        verdict = native.available()
        assert not verdict.ok
        assert verdict.rule == "disabled"
        monkeypatch.delenv("REPRO_NATIVE_DISABLE")
        assert native.available().rule != "disabled"

    def test_no_compiler_is_machine_readable(self, monkeypatch):
        monkeypatch.delenv("REPRO_NATIVE_DISABLE", raising=False)
        monkeypatch.setenv("REPRO_CC", "/nonexistent/cc-missing")
        native.reset_toolchain_cache()
        try:
            verdict = native.available()
            assert not verdict.ok
            assert verdict.rule == "no-compiler"
            assert "not found" in verdict.detail
        finally:
            native.reset_toolchain_cache()

    @needs_cc
    def test_toolchain_memoised(self):
        assert native.toolchain() is native.toolchain()


class TestBuild:
    @needs_cc
    def test_artifacts_content_addressed(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_CACHE_DIR", str(tmp_path))
        source = "int repro_one(int x) { return x + 1; }\n"
        first = native.build_shared_object(source)
        stamp = os.stat(first).st_mtime_ns
        again = native.build_shared_object(source)
        assert again == first
        # Warm build never re-ran the compiler.
        assert os.stat(again).st_mtime_ns == stamp
        other = native.build_shared_object(
            "int repro_two(int x) { return x + 2; }\n"
        )
        assert other != first

    @needs_cc
    def test_concurrent_same_source_builds_never_torn(
        self, tmp_path, monkeypatch
    ):
        """Regression: the temp output used to be pid-suffixed, so two
        threads compiling the same kernel shared one temp file and the
        second cc could truncate it while the first published it —
        torn (even empty) .so artifacts in the shared cache. Each
        build now gets its own temp file."""
        import threading

        monkeypatch.setenv("REPRO_NATIVE_CACHE_DIR", str(tmp_path))
        source = "int repro_race(int x) { return x * 3; }\n"
        paths, errors = [], []

        def build():
            try:
                paths.append(native.build_shared_object(source))
            except Exception as err:  # noqa: BLE001 - collected
                errors.append(err)

        threads = [threading.Thread(target=build) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        assert len(set(paths)) == 1
        assert os.path.getsize(paths[0]) > 0
        # No temp leftovers: every racer either published or cleaned up.
        leftovers = [
            name for name in os.listdir(tmp_path) if ".tmp" in name
        ]
        assert leftovers == []

    @needs_cc
    def test_compile_error_raises_native_build_error(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_NATIVE_CACHE_DIR", str(tmp_path))
        with pytest.raises(NativeBuildError) as err:
            native.build_shared_object("this is not C\n")
        assert "exited" in str(err.value)

    def test_no_compiler_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_CC", "/nonexistent/cc-missing")
        native.reset_toolchain_cache()
        try:
            with pytest.raises(NativeBuildError):
                native.build_shared_object("int f(void) { return 0; }\n")
        finally:
            native.reset_toolchain_cache()


class TestProbe:
    def test_corrupt_library_rejected_in_subprocess(self, tmp_path):
        """A garbage .so must die in the probe child, not here."""
        bogus = tmp_path / "bogus.so"
        bogus.write_bytes(b"\x7fELF not really a library")
        with pytest.raises(NativeBuildError) as err:
            native.probe_shared_object(str(bogus))
        assert "probe" in str(err.value)

    def test_probe_failure_is_permanent(self):
        """NativeBuildError is a DslError: the supervisor's retry loop
        only catches DeviceFault, so native failures never retry."""
        assert issubclass(NativeBuildError, DslError)


@needs_cc
class TestNativeExecution:
    def test_matches_scalar_bitwise(self):
        scalar_engine = Engine(backend="scalar")
        native_engine = Engine(backend="native")
        c1, ctx1, t1, d1, _ = compile_edit(scalar_engine)
        c2, ctx2, t2, d2, _ = compile_edit(native_engine)
        assert c2.backend == "native"
        assert c2.so_path is not None
        sched = c1.schedule
        c1.run(t1, ctx1, part_lo=sched.min_partition(d1),
               part_hi=sched.max_partition(d1))
        c2.run(t2, ctx2, part_lo=sched.min_partition(d2),
               part_hi=sched.max_partition(d2))
        assert t1.tobytes() == t2.tobytes()

    def test_mid_schedule_replay_split(self):
        """part_lo/part_hi splits reproduce the single full run —
        the windowed entry preloads its ring from the table."""
        engine = Engine(backend="native")
        compiled, ctx, table, domain, schedule = compile_edit(engine)
        lo = schedule.min_partition(domain)
        hi = schedule.max_partition(domain)
        full = table.copy()
        compiled.run(full, ctx, part_lo=lo, part_hi=hi)
        mid = (lo + hi) // 2
        split = table.copy()
        compiled.run(split, ctx, part_lo=lo, part_hi=mid)
        compiled.run(split, ctx, part_lo=mid + 1, part_hi=hi)
        assert split.tobytes() == full.tobytes()

    def test_windowed_entry_emitted_for_diagonal(self):
        engine = Engine(backend="native")
        compiled, _ctx, _table, _domain, _schedule = compile_edit(engine)
        assert cbackend.supports_window(compiled.kernel)
        assert "repro_d_windowed" in compiled.source


class TestEngineLadder:
    @needs_cc
    def test_auto_resolves_native(self):
        engine = Engine(backend="auto")
        compiled, _ctx, _table, _domain, _schedule = compile_edit(engine)
        assert compiled.backend == "native"

    def test_auto_degrades_without_compiler(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        engine = Engine(backend="auto")
        compiled, _ctx, _table, _domain, _schedule = compile_edit(engine)
        assert compiled.backend in ("vector", "scalar")

    def test_forced_native_raises_when_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        engine = Engine(backend="native")
        with pytest.raises(CodegenError) as err:
            compile_edit(engine)
        assert "disabled" in str(err.value)

    def test_forced_native_build_failure_names_the_detail(
        self, monkeypatch
    ):
        """A forced backend='native' whose build fails must render
        the compiler/probe detail the way a forced vector CodegenError
        names its eligibility rule."""
        from repro.runtime import native as native_mod

        def broken_compile(kernel):
            raise NativeBuildError(
                "cc exited with status 1: synthetic probe detail"
            )

        monkeypatch.setattr(
            native_mod, "compile_native", broken_compile
        )
        monkeypatch.setattr(
            native_mod, "available",
            lambda: native_mod.Eligibility(True, "ok", "stubbed"),
        )
        engine = Engine(backend="native")
        with pytest.raises(NativeBuildError) as err:
            compile_edit(engine)
        message = str(err.value)
        assert "backend='native' was forced" in message
        assert "'d'" in message  # the kernel is named
        assert "[build-failed]" in message
        assert "synthetic probe detail" in message

    def test_env_native_is_preference_not_force(self, monkeypatch):
        """REPRO_BACKEND=native degrades down the ladder instead of
        erroring when native is unavailable."""
        monkeypatch.setenv("REPRO_BACKEND", "native")
        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        engine = Engine()
        assert engine.backend == "native"
        assert not engine.backend_forced
        compiled, _ctx, _table, _domain, _schedule = compile_edit(engine)
        assert compiled.backend in ("vector", "scalar")

    @needs_cc
    def test_engine_value_parity_end_to_end(self):
        func = edit_func()
        bindings = edit_bindings()
        a = Engine(backend="scalar").run(func, bindings)
        b = Engine(backend="native").run(func, bindings)
        assert a.value == b.value
        assert a.table.tobytes() == b.table.tobytes()


class TestCrossover:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_VECTOR_CROSSOVER", raising=False)
        assert vector_crossover_extent() == VECTOR_CROSSOVER_DEFAULT

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR_CROSSOVER", "12")
        assert vector_crossover_extent() == 12

    def test_invalid_env_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR_CROSSOVER", "not-a-number")
        assert vector_crossover_extent() == VECTOR_CROSSOVER_DEFAULT

    def test_small_problems_prefer_scalar(self, monkeypatch):
        """Below the crossover extent, auto picks scalar over vector:
        interpreter startup dominates tiny tables."""
        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        engine = Engine(backend="auto")
        small, *_ = compile_edit(engine, edit_bindings(4, 5))
        assert small.backend == "scalar"

    def test_large_problems_prefer_vector(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        monkeypatch.setenv("REPRO_VECTOR_CROSSOVER", "8")
        engine = Engine(backend="auto")
        big, *_ = compile_edit(engine, edit_bindings(9, 11))
        assert big.backend == "vector"

    @needs_cc
    def test_crossover_does_not_gate_native(self):
        """The crossover only arbitrates scalar vs vector; native is
        faster than both at every size."""
        engine = Engine(backend="auto")
        small, *_ = compile_edit(engine, edit_bindings(4, 5))
        assert small.backend == "native"
