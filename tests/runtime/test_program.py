"""Tests for script execution (the runtime environment)."""

import pytest

from repro.lang.errors import RuntimeDslError
from repro.runtime.program import run_script
from repro.runtime.sequences import random_database, write_fasta
from repro.runtime.values import DNA

PRELUDE = '''
alphabet en = "abcdefghijklmnopqrstuvwxyz"
int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1
'''


class TestBasicScripts:
    def test_print_function_result(self):
        result = run_script(
            PRELUDE
            + 'let q = "kitten"\nlet r = "sitting"\n'
            + "print d(q, |q|, r, |r|)"
        )
        assert result.last == 3
        assert result.printed == ["3"]

    def test_string_literal_arguments(self):
        result = run_script(
            PRELUDE + 'print d("abc", 3, "abd", 3)'
        )
        assert result.last == 1

    def test_intermediate_coordinates(self):
        result = run_script(PRELUDE + 'print d("abc", 1, "abd", 0)')
        assert result.last == 1

    def test_let_arithmetic(self):
        result = run_script(
            PRELUDE + 'let q = "abc"\nprint d(q, |q| - 1, q, |q|)'
        )
        assert result.last == 1

    def test_user_schedule_applies(self):
        result = run_script(
            PRELUDE
            + "schedule d : i + j\n"
            + 'print d("ab", 2, "ab", 2)'
        )
        assert result.last == 0
        assert result.runs[0].schedule.coefficients == (1, 1)

    def test_wrong_arity_rejected(self):
        with pytest.raises(RuntimeDslError, match="takes 4 arguments"):
            run_script(PRELUDE + 'print d("ab", 2)')

    def test_unknown_script_variable(self):
        with pytest.raises(RuntimeDslError, match="unknown script"):
            run_script(PRELUDE + "print d(q, 1, q, 1)")


class TestHmmScripts:
    SRC = '''
alphabet dna = "acgt"
hmm h [dna] {
  state begin : start
  state m emits { a: 0.4, c: 0.1, g: 0.1, t: 0.4 }
  state fin : end
  trans begin -> m : 1.0
  trans m -> m : 0.8
  trans m -> fin : 0.2
}
prob forward(hmm h, state[h] s, seq[*] x, index[x] i) =
  if i == 0 then (if s.isstart then 1.0 else 0.0)
  else (if s.isend then 1.0 else s.emission[x[i-1]])
    * sum(t in s.transitionsto : t.prob * forward(t.start, i - 1))
'''

    def test_forward_with_model(self):
        result = run_script(
            self.SRC + '\nlet x = "at"\nprint forward(h, h.end, x, |x|)'
        )
        # F(m,1) = e_m(a) * 1.0 = 0.4; the silent end state at i=2
        # sums its incoming transitions over F(., 1):
        # F(end,2) = 0.2 * F(m,1) = 0.08 (Figure 11 semantics).
        assert result.last == pytest.approx(0.08)

    def test_seq_star_infers_alphabet(self):
        result = run_script(
            self.SRC + '\nprint forward(h, h.end, "at", 2)'
        )
        assert result.last == pytest.approx(0.08)

    def test_seq_star_uncoverable_string_rejected(self):
        with pytest.raises(RuntimeDslError, match="covers the string"):
            run_script(
                self.SRC + '\nprint forward(h, h.end, "zz", 2)'
            )


class TestLoadAndMap:
    def test_load_and_map(self, tmp_path):
        db = random_database(6, 12, alphabet=DNA, seed=1)
        path = tmp_path / "db.fa"
        write_fasta(path, db)
        script = (
            'alphabet dna = "acgt"\n'
            "int d(seq[dna] s, index[s] i, seq[dna] t, index[t] j) =\n"
            "  if i == 0 then j\n"
            "  else if j == 0 then i\n"
            "  else if s[i-1] == t[j-1] then d(i-1, j-1)\n"
            "  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1\n"
            f'load db = fasta("{path}")\n'
            'let q = "acgtacgt"\n'
            "map scores = d(q, |q|, _, |_|) over db\n"
        )
        result = run_script(script)
        assert "scores" in result.maps
        scores = result.maps["scores"].values
        assert len(scores) == 6
        assert all(isinstance(v, int) for v in scores)

    def test_map_without_placeholder_rejected(self, tmp_path):
        db = random_database(2, 8, alphabet=DNA, seed=2)
        path = tmp_path / "db.fa"
        write_fasta(path, db)
        script = (
            'alphabet dna = "acgt"\n'
            "int f(seq[dna] s, index[s] i) = if i == 0 then 0 else f(i-1)\n"
            f'load db = fasta("{path}")\n'
            'let q = "acgt"\n'
            "map out = f(q, |q|) over db\n"
        )
        with pytest.raises(RuntimeDslError, match="placeholder"):
            run_script(script)

    def test_load_unknown_format(self, tmp_path):
        path = tmp_path / "x.bin"
        path.write_text("")
        with pytest.raises(RuntimeDslError, match="unknown load format"):
            run_script(
                'alphabet dna = "acgt"\n'
                f'load db = binary("{path}")\n'
            )

    def test_load_no_matching_alphabet(self, tmp_path):
        path = tmp_path / "x.fa"
        path.write_text(">a\nzzz\n")
        with pytest.raises(RuntimeDslError, match="no declared alphabet"):
            run_script(
                'alphabet dna = "acgt"\n' + f'load db = fasta("{path}")\n'
            )
