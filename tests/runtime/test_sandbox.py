"""Crash-isolated native execution: sandbox, breaker, recovery."""

import os
import signal
import time

import pytest

from repro.lang.parser import parse_function
from repro.lang.typecheck import check_function
from repro.resilience.faults import SandboxHang, WorkerCrash
from repro.runtime import native, sandbox
from repro.runtime.engine import Engine
from repro.runtime.values import Sequence

EN = {"en": "abcdefghijklmnopqrstuvwxyz"}
ALPHABET = "abcdefghijklmnopqrstuvwxyz"

EDIT_DISTANCE = """
int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1
"""

have_cc = native.available().ok
needs_cc = pytest.mark.skipif(
    not have_cc, reason="no working C compiler in this environment"
)


def edit_func():
    return check_function(parse_function(EDIT_DISTANCE.strip()), EN)


def edit_args():
    return {
        "s": Sequence("kitten", ALPHABET),
        "t": Sequence("sitting", ALPHABET),
    }


@pytest.fixture
def sandboxed():
    """Fresh sandbox state, enabled, torn down afterwards."""
    sandbox.configure(True)
    sandbox.reset()
    yield
    sandbox.configure(None)
    sandbox.reset()


class TestCircuitBreaker:
    """Pure state-machine tests — no toolchain, no subprocesses."""

    def test_closed_until_threshold(self):
        breaker = sandbox.CircuitBreaker(threshold=3, cooldown=30.0)
        assert breaker.state("k") == "closed"
        breaker.record_failure("k")
        breaker.record_failure("k")
        assert breaker.state("k") == "closed"
        assert breaker.allows("k")
        breaker.record_failure("k")
        assert breaker.state("k") == "open"
        assert not breaker.allows("k")
        assert breaker.open_count() == 1

    def test_success_resets_the_tally(self):
        breaker = sandbox.CircuitBreaker(threshold=2, cooldown=30.0)
        breaker.record_failure("k")
        breaker.record_success("k")
        breaker.record_failure("k")
        assert breaker.state("k") == "closed"

    def test_half_open_after_cooldown(self):
        breaker = sandbox.CircuitBreaker(threshold=1, cooldown=0.05)
        breaker.record_failure("k")
        assert breaker.state("k") == "open"
        time.sleep(0.06)
        # Cooldown elapsed: one probe launch may try native again.
        assert breaker.state("k") == "half-open"
        assert breaker.allows("k")
        # A failed probe re-opens it with a fresh cooldown window.
        breaker.record_failure("k")
        assert breaker.state("k") == "open"

    def test_digests_are_independent(self):
        breaker = sandbox.CircuitBreaker(threshold=1, cooldown=30.0)
        breaker.record_failure("a")
        assert not breaker.allows("a")
        assert breaker.allows("b")

    def test_env_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANDBOX_BREAKER_K", "7")
        monkeypatch.setenv("REPRO_SANDBOX_BREAKER_COOLDOWN", "1.5")
        breaker = sandbox.CircuitBreaker()
        assert breaker.threshold == 7
        assert breaker.cooldown == 1.5


@needs_cc
class TestSandboxedExecution:
    def test_bitwise_identical_to_scalar(self, sandboxed):
        func = edit_func()
        scalar = Engine(backend="scalar").run(func, edit_args())
        native_run = Engine(backend="native").run(func, edit_args())
        assert native_run.value == scalar.value == 3
        assert (native_run.table == scalar.table).all()
        counts = sandbox.counters()
        assert counts["launches"] >= 1
        assert counts["crashes"] == 0

    def test_compiled_run_is_sandboxed(self, sandboxed):
        engine = Engine(backend="native")
        func = edit_func()
        from repro.runtime.values import Bindings

        bound = Bindings(edit_args())
        domain = engine.domain_of(func, bound)
        schedule = engine.schedule_for(func, domain)
        compiled = engine.compile(func, schedule, domain)
        assert getattr(compiled.run, "sandboxed", False)
        # The .so is never loaded into this process: the wrapper only
        # carries the payload and the artifact path.
        assert isinstance(compiled.run, sandbox.SandboxedNativeRun)
        assert os.path.exists(compiled.run.so_path)

    def test_kill_fault_raises_worker_crash(self, sandboxed):
        engine = Engine(backend="native")
        func = edit_func()
        from repro.runtime.values import Bindings

        bound = Bindings(edit_args())
        domain = engine.domain_of(func, bound)
        schedule = engine.schedule_for(func, domain)
        compiled = engine.compile(func, schedule, domain)
        ctx = engine.build_context(compiled, bound, domain)
        table = engine._table_for(compiled.kernel, domain)
        before = table.copy()
        with pytest.raises(WorkerCrash):
            compiled.run(table, ctx, fault={"kind": "kill"})
        # The parent table is only written on a successful reply — a
        # crashed launch can never leave it torn.
        assert (table == before).all()
        counts = sandbox.counters()
        assert counts["crashes"] == 1
        assert counts["restarts"] >= 1
        # And the restarted worker serves the next launch fine.
        compiled.run(table, ctx)
        assert table[-1, -1] == 3

    def test_hang_fault_raises_sandbox_hang(self, sandboxed):
        engine = Engine(backend="native")
        func = edit_func()
        from repro.runtime.values import Bindings

        bound = Bindings(edit_args())
        domain = engine.domain_of(func, bound)
        schedule = engine.schedule_for(func, domain)
        compiled = engine.compile(func, schedule, domain)
        ctx = engine.build_context(compiled, bound, domain)
        table = engine._table_for(compiled.kernel, domain)
        start = time.monotonic()
        with pytest.raises(SandboxHang):
            compiled.run(
                table, ctx,
                fault={"kind": "hang", "seconds": 30.0},
                deadline=0.3,
            )
        # The wedged worker was SIGKILLed, not waited out.
        assert time.monotonic() - start < 10.0
        assert sandbox.counters()["hangs"] == 1

    def test_worker_killed_while_idle_is_restarted(self, sandboxed):
        func = edit_func()
        engine = Engine(backend="native")
        assert engine.run(func, edit_args()).value == 3
        pool = sandbox.get_sandbox()
        (worker,) = pool._idle
        os.kill(worker.pid, signal.SIGKILL)
        worker.proc.wait(timeout=5)
        # Next launch notices the corpse, replaces it silently (no
        # crash is charged — no launch was harmed) and succeeds.
        assert engine.run(
            func,
            {"s": Sequence("mitten", ALPHABET),
             "t": Sequence("sitting", ALPHABET)},
        ).value == 3
        counts = sandbox.counters()
        assert counts["crashes"] == 0
        assert counts["restarts"] == 1

    def test_engine_demotes_after_crash_bitwise_identical(
        self, sandboxed
    ):
        func = edit_func()
        expected = Engine(backend="scalar").run(func, edit_args())

        # Drive the engine's own recovery (no supervisor): a crashing
        # launch demotes to the next rung and recomputes from zeros.
        engine = Engine(backend="native")
        original = sandbox.SandboxedNativeRun.__call__

        def crashing(self, T, ctx, **kwargs):
            kwargs["fault"] = {"kind": "kill"}
            return original(self, T, ctx, **kwargs)

        sandbox.SandboxedNativeRun.__call__ = crashing
        try:
            result = engine.run(func, edit_args())
        finally:
            sandbox.SandboxedNativeRun.__call__ = original
        assert result.value == expected.value == 3
        assert (result.table == expected.table).all()
        assert engine.native_demotions >= 1


class TestKernelDigest:
    @needs_cc
    def test_digest_is_stable_and_content_keyed(self, sandboxed):
        engine = Engine(backend="native")
        func = edit_func()
        from repro.runtime.values import Bindings

        bound = Bindings(edit_args())
        domain = engine.domain_of(func, bound)
        schedule = engine.schedule_for(func, domain)
        compiled = engine.compile(func, schedule, domain)
        digest = sandbox.kernel_digest(compiled.kernel)
        assert digest == compiled.run.digest
        assert len(digest) == 64


class TestEnablement:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_NATIVE_SANDBOX", raising=False)
        sandbox.configure(None)
        assert not sandbox.enabled()

    def test_env_opt_in(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_SANDBOX", "1")
        sandbox.configure(None)
        assert sandbox.enabled()

    def test_configure_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_SANDBOX", "1")
        sandbox.configure(False)
        try:
            assert not sandbox.enabled()
        finally:
            sandbox.configure(None)

    def test_counters_zero_when_never_used(self):
        sandbox.reset()
        counts = sandbox.counters()
        assert counts["launches"] == 0
        assert counts["workers"] == 0
        assert counts["open_breakers"] == 0
