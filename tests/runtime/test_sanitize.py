"""``REPRO_NATIVE_SANITIZE``: flag parsing, content-address
distinctness, sandboxed routing, and the cache-embed refusal.

Sanitized artifacts are a diagnostic build: they must never be
``dlopen``-ed in-process (the ASan runtime reads
``/proc/self/environ``, so link-order options cannot be injected
after interpreter start) and must never be immortalised in a disk
cache record a plain process would then try to load.
"""

import os

import pytest

from repro.ir.kernel import build_kernel
from repro.lang.errors import NativeBuildError
from repro.lang.parser import parse_function
from repro.lang.typecheck import check_function
from repro.runtime import native, sandbox
from repro.runtime.engine import Engine
from repro.runtime.values import Sequence
from repro.schedule.schedule import Schedule
from repro.service.cache import encode_compiled

EN = {"en": "abcdefghijklmnopqrstuvwxyz"}
ALPHABET = "abcdefghijklmnopqrstuvwxyz"

EDIT = """
int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1
"""

have_cc = native.available().ok
needs_cc = pytest.mark.skipif(
    not have_cc, reason="no working C compiler in this environment"
)


def edit_kernel():
    func = check_function(parse_function(EDIT.strip()), EN)
    return build_kernel(
        func, Schedule(("i", "j"), (1, 1)),
        prob_mode="direct", compute_window=True,
    )


def sanitized_build(source):
    """Build under ASan+UBSan, skipping hosts without the runtimes."""
    try:
        return native.build_shared_object(source)
    except NativeBuildError as err:
        if "sanitize" in str(err) or "asan" in str(err).lower():
            pytest.skip(f"sanitizer runtimes unavailable: {err}")
        raise


class TestFlags:
    def test_unset_means_plain(self, monkeypatch):
        monkeypatch.delenv("REPRO_NATIVE_SANITIZE", raising=False)
        assert native.sanitize_flags() == ()
        assert not native.sanitize_active()

    def test_address(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_SANITIZE", "address")
        assert native.sanitize_flags() == (
            "-fsanitize=address", "-g", "-fno-omit-frame-pointer",
        )
        assert native.sanitize_active()

    def test_both_in_order(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_NATIVE_SANITIZE", "address,undefined"
        )
        flags = native.sanitize_flags()
        assert "-fsanitize=address" in flags
        assert "-fsanitize=undefined" in flags

    def test_whitespace_and_case_tolerated(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_NATIVE_SANITIZE", " Undefined , "
        )
        assert "-fsanitize=undefined" in native.sanitize_flags()

    def test_unknown_name_raises(self, monkeypatch):
        # A typo silently building uninstrumented kernels would
        # defeat the entire sanitizer leg.
        monkeypatch.setenv("REPRO_NATIVE_SANITIZE", "thread")
        with pytest.raises(NativeBuildError, match="thread"):
            native.sanitize_flags()


@needs_cc
class TestBuildIsolation:
    SOURCE = "int repro_probe_fn(void) { return 42; }\n"

    def test_digest_distinct_from_plain(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_NATIVE_SANITIZE", raising=False)
        plain = native.build_shared_object(self.SOURCE)
        monkeypatch.setenv("REPRO_NATIVE_SANITIZE", "address")
        instrumented = sanitized_build(self.SOURCE)
        assert plain != instrumented  # never alias cache slots

    def test_build_exports_runtime_options(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_NATIVE_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_NATIVE_SANITIZE", "address")
        monkeypatch.delenv("ASAN_OPTIONS", raising=False)
        monkeypatch.delenv("UBSAN_OPTIONS", raising=False)
        sanitized_build(self.SOURCE)
        assert "verify_asan_link_order=0" in os.environ["ASAN_OPTIONS"]
        assert "halt_on_error=1" in os.environ["UBSAN_OPTIONS"]

    def test_existing_options_not_clobbered(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_NATIVE_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_NATIVE_SANITIZE", "address")
        monkeypatch.setenv("ASAN_OPTIONS", "detect_leaks=1")
        sanitized_build(self.SOURCE)
        assert os.environ["ASAN_OPTIONS"] == "detect_leaks=1"


class TestRouting:
    def test_sanitized_runs_are_sandboxed(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_SANITIZE", "address")
        run = native._make_run(edit_kernel(), "/nowhere/k.so")
        assert isinstance(run, sandbox.SandboxedNativeRun)

    def test_sanitized_batched_runs_are_sandboxed(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_SANITIZE", "address")
        # the probe subprocess is not under test here
        monkeypatch.setattr(
            native, "probe_shared_object", lambda _path: None
        )
        run = native.load_batched(edit_kernel(), "/nowhere/k.so")
        assert isinstance(run, sandbox.SandboxedNativeRun)
        assert run.batched


class TestCacheRefusal:
    class FakeNativeProduct:
        backend = "native"
        source = "/* generated */"
        compile_seconds = 0.0

        def __init__(self, kernel, so_path):
            self.kernel = kernel
            self.so_path = so_path

    def test_instrumented_product_never_encoded(
        self, tmp_path, monkeypatch
    ):
        so = tmp_path / "k.so"
        so.write_bytes(b"\x7fELFfake")
        product = self.FakeNativeProduct(edit_kernel(), str(so))
        monkeypatch.delenv("REPRO_NATIVE_SANITIZE", raising=False)
        assert encode_compiled(product)  # plain product embeds fine
        monkeypatch.setenv("REPRO_NATIVE_SANITIZE", "address")
        with pytest.raises(ValueError, match="instrumented"):
            encode_compiled(product)


@needs_cc
class TestEndToEnd:
    def test_sanitized_run_matches_plain_bitwise(self, monkeypatch):
        func = check_function(parse_function(EDIT.strip()), EN)
        bindings = {
            "s": Sequence("kitten", ALPHABET),
            "t": Sequence("sitting", ALPHABET),
        }
        monkeypatch.delenv("REPRO_NATIVE_SANITIZE", raising=False)
        plain = Engine(backend="native").run(func, bindings)
        monkeypatch.setenv(
            "REPRO_NATIVE_SANITIZE", "address,undefined"
        )
        sandbox.reset()
        try:
            instrumented = Engine(backend="native").run(func, bindings)
        except NativeBuildError as err:
            pytest.skip(f"sanitizer runtimes unavailable: {err}")
        finally:
            sandbox.reset()
        assert instrumented.value == plain.value
        assert (
            instrumented.table.tobytes() == plain.table.tobytes()
        )
