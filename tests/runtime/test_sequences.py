"""Tests for FASTA I/O and synthetic data generation."""

import pytest

from repro.lang.errors import RuntimeDslError
from repro.runtime.sequences import (
    parse_fasta,
    random_database,
    random_dna,
    random_protein,
    read_fasta,
    write_fasta,
)
from repro.runtime.values import DNA, PROTEIN


class TestFasta:
    def test_parse_basic(self):
        text = ">one\nacgt\n>two\nac\ngt\n"
        seqs = parse_fasta(text, DNA)
        assert [s.name for s in seqs] == ["one", "two"]
        assert seqs[1].text == "acgt"

    def test_case_folding_to_alphabet(self):
        seqs = parse_fasta(">x\nACGT\n", DNA)
        assert seqs[0].text == "acgt"

    def test_uppercase_alphabet_folds_up(self):
        seqs = parse_fasta(">x\narn\n", PROTEIN)
        assert seqs[0].text == "ARN"

    def test_headerless_data_rejected(self):
        with pytest.raises(RuntimeDslError, match="header"):
            parse_fasta("acgt\n", DNA)

    def test_blank_lines_skipped(self):
        seqs = parse_fasta(">x\n\nacgt\n\n", DNA)
        assert seqs[0].text == "acgt"

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "db.fa"
        original = random_database(5, 40, alphabet=DNA, seed=7)
        write_fasta(path, original)
        loaded = read_fasta(path, DNA)
        assert [s.text for s in loaded] == [s.text for s in original]

    def test_long_lines_wrapped(self, tmp_path):
        path = tmp_path / "one.fa"
        write_fasta(path, [random_dna(150, seed=1, name="long")])
        lines = path.read_text().splitlines()
        assert all(len(line) <= 60 for line in lines[1:])


class TestSynthetic:
    def test_deterministic_by_seed(self):
        assert random_dna(50, seed=3).text == random_dna(50, seed=3).text
        assert random_dna(50, seed=3).text != random_dna(50, seed=4).text

    def test_gc_bias(self):
        gc_rich = random_dna(5000, seed=1, gc_bias=0.8).text
        gc_frac = (gc_rich.count("g") + gc_rich.count("c")) / 5000
        assert gc_frac > 0.7

    def test_protein_alphabet(self):
        seq = random_protein(100, seed=2)
        assert seq.alphabet is PROTEIN

    def test_database_shape(self):
        db = random_database(20, 100, seed=5)
        assert len(db) == 20
        mean = sum(len(s) for s in db) / len(db)
        assert 60 < mean < 140

    def test_database_min_length(self):
        db = random_database(50, 10, seed=6)
        assert all(len(s) >= 8 for s in db)
