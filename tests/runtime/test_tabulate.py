"""Tests for serial bottom-up tabulation."""

import pytest

from repro.lang.errors import RuntimeDslError
from repro.lang.parser import parse_function
from repro.lang.typecheck import check_function
from repro.runtime.interpreter import memoised
from repro.runtime.tabulate import tabulate
from repro.runtime.values import Bindings, ENGLISH, Sequence
from repro.schedule.schedule import Schedule

EN = {"en": ENGLISH.chars}

EDIT_DISTANCE = """
int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1
"""


def checked(src, alphabets=EN):
    return check_function(parse_function(src.strip()), alphabets)


class TestTabulate:
    def test_matches_oracle(self):
        func = checked(EDIT_DISTANCE)
        bindings = Bindings({"s": Sequence("flaw", ENGLISH),
                             "t": Sequence("lawns", ENGLISH)})
        table = tabulate(func, bindings, Schedule.of(i=1, j=1))
        oracle = memoised(func, bindings)
        for i in range(5):
            for j in range(6):
                assert table[i, j] == oracle((i, j))

    def test_reversed_schedule_detected(self):
        """A schedule whose serial order reads unwritten cells fails.

        (Schedules that are invalid for *parallel* execution but
        happen to produce a workable serial order are the lock-step
        executor's job to reject — tabulation is the serial
        baseline.)"""
        func = checked(EDIT_DISTANCE)
        bindings = Bindings({"s": Sequence("ab", ENGLISH),
                             "t": Sequence("cd", ENGLISH)})
        with pytest.raises(RuntimeDslError, match="not valid"):
            tabulate(func, bindings, Schedule.of(i=-1, j=-1))

    def test_int_dimension_with_initial(self):
        func = checked(
            "int fib(int n) = if n < 2 then n else fib(n-1) + fib(n-2)"
        )
        table = tabulate(
            func, Bindings({}), Schedule.of(n=1), initial={"n": 12}
        )
        assert table[12] == 144

    def test_float_table_dtype(self):
        func = checked("float f(float g, seq[en] s, index[s] i) = g")
        table = tabulate(
            func,
            Bindings({"g": 0.5, "s": Sequence("ab", ENGLISH)}),
            Schedule.of(i=0),
        )
        assert table.dtype.kind == "f"
        assert (table == 0.5).all()
