"""Tests for runtime values: alphabets, sequences, bindings."""

import numpy as np
import pytest

from repro.lang.errors import RuntimeDslError
from repro.runtime.values import (
    Alphabet,
    Bindings,
    DNA,
    ENGLISH,
    PROTEIN,
    Sequence,
    make_sequences,
)


class TestAlphabet:
    def test_membership_and_index(self):
        assert "c" in DNA
        assert DNA.index("g") == 2
        assert len(DNA) == 4

    def test_index_of_missing_char(self):
        with pytest.raises(RuntimeDslError, match="not in alphabet"):
            DNA.index("z")

    def test_duplicate_chars_rejected(self):
        with pytest.raises(RuntimeDslError, match="duplicate"):
            Alphabet("bad", "aab")

    def test_non_ascii_rejected(self):
        with pytest.raises(RuntimeDslError, match="non-ASCII"):
            Alphabet("bad", "aé")

    def test_index_table_roundtrip(self):
        table = PROTEIN.index_table()
        for k, char in enumerate(PROTEIN.chars):
            assert table[ord(char)] == k
        assert table[ord("z")] == -1

    def test_iteration(self):
        assert list(DNA) == ["a", "c", "g", "t"]


class TestSequence:
    def test_codes_are_ordinals(self):
        seq = Sequence("acgt", DNA)
        assert list(seq.codes) == [ord(c) for c in "acgt"]

    def test_indexing(self):
        seq = Sequence("acgt", DNA)
        assert seq[0] == "a"
        assert seq[3] == "t"

    def test_out_of_range(self):
        seq = Sequence("ac", DNA)
        with pytest.raises(RuntimeDslError, match="out of range"):
            seq[2]

    def test_wrong_alphabet_rejected(self):
        with pytest.raises(RuntimeDslError, match="not in alphabet"):
            Sequence("acgx", DNA)

    def test_len(self):
        assert len(Sequence("acgt", DNA)) == 4
        assert len(Sequence("", DNA)) == 0

    def test_make_sequences(self):
        seqs = make_sequences(["ab", "cd"], ENGLISH, prefix="q")
        assert [s.name for s in seqs] == ["q0", "q1"]

    def test_codes_dtype(self):
        assert Sequence("acg", DNA).codes.dtype == np.int64


class TestBindings:
    def test_lookup(self):
        bindings = Bindings({"x": 1})
        assert bindings["x"] == 1
        assert "x" in bindings

    def test_missing(self):
        bindings = Bindings({})
        with pytest.raises(RuntimeDslError, match="missing binding"):
            bindings["y"]
