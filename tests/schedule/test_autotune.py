"""Tests for cost-model-guided schedule autotuning."""

from dataclasses import replace

import pytest

from repro.analysis.criteria import schedule_criteria
from repro.analysis.domain import Domain
from repro.gpu.spec import GTX480
from repro.gpu.timing import kernel_cost
from repro.ir.kernel import build_kernel
from repro.lang.parser import parse_function
from repro.lang.typecheck import check_function
from repro.schedule.autotune import (
    AutotuneResult,
    Candidate,
    autotune_schedule,
    measure_from_env,
)
from repro.schedule.schedule import Schedule
from repro.schedule.solver import tie_break_key
from repro.schedule.window import window_size

EN = {"en": "abcdefghijklmnopqrstuvwxyz"}
AL = {"al": "ab"}

EDIT_DISTANCE = """
int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1
"""

#: Diagonal-only descent: (1, 0) and (0, 1) are both valid single
#: partition-per-step schedules with *identical* predicted cost on a
#: square domain — the tie-break regression shape.
DIAGONAL_ONLY = """
int g(seq[al] s, index[s] i, seq[al] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else g(i - 1, j - 1) + 1
"""

#: A spec whose shared memory the min-partition diagonal spills at
#: modest extents, so the window-residency trade-off (the reason the
#: autotuner exists) shows up without paper-scale domains.
TINY_SHARED = replace(GTX480, shared_memory_bytes=1024)


def checked(source, alphabets=EN):
    return check_function(parse_function(source.strip()), alphabets)


class TestTieBreaking:
    """Equal-cost winners resolve by the solvers' shared key."""

    def test_two_winner_tie_resolved_by_shared_key(self):
        func = checked(DIAGONAL_ONLY, AL)
        result = autotune_schedule(func, Domain.of(i=9, j=9), bound=3)
        # Both minimal schedules survive into the portfolio at
        # exactly equal predicted cost...
        by_coeffs = {
            c.schedule.coefficients: c for c in result.candidates
        }
        assert (0, 1) in by_coeffs and (1, 0) in by_coeffs
        assert (
            by_coeffs[0, 1].predicted.cycles
            == by_coeffs[1, 0].predicted.cycles
        )
        # ...and the adopted one is the tie_break_key minimum, the
        # same answer the Section 4.6 solver's own tie-break gives.
        assert tie_break_key((0, 1)) < tie_break_key((1, 0))
        assert result.schedule == Schedule(("i", "j"), (0, 1))
        assert result.schedule == result.default
        assert not result.improved

    def test_portfolio_ranked_by_cost_then_key(self):
        func = checked(DIAGONAL_ONLY, AL)
        result = autotune_schedule(func, Domain.of(i=9, j=9), bound=3)
        keys = [
            (c.predicted.cycles, tie_break_key(c.schedule.coefficients))
            for c in result.candidates
        ]
        assert keys == sorted(keys)

    def test_deterministic_across_repeated_searches(self):
        func = checked(EDIT_DISTANCE)
        domain = Domain.of(i=40, j=64)
        runs = [
            autotune_schedule(func, domain, TINY_SHARED, bound=3)
            for _ in range(3)
        ]
        schedules = {r.schedule for r in runs}
        assert len(schedules) == 1
        portfolios = {
            tuple(c.schedule.coefficients for c in r.candidates)
            for r in runs
        }
        assert len(portfolios) == 1


class TestPruningSoundness:
    """The dominance-pruned search never misses the true optimum."""

    @pytest.mark.parametrize("spec", [GTX480, TINY_SHARED])
    @pytest.mark.parametrize(
        "extents", [(16, 16), (40, 64), (64, 63)]
    )
    def test_matches_exhaustive_search(self, spec, extents):
        bound = 3
        func = checked(EDIT_DISTANCE)
        domain = Domain(("i", "j"), extents)
        criteria = schedule_criteria(func)
        kernel = build_kernel(func, Schedule(("i", "j"), (1, 1)))
        best = None
        for a in range(-bound, bound + 1):
            for b in range(-bound, bound + 1):
                if a == 0 and b == 0:
                    continue
                schedule = Schedule(("i", "j"), (a, b))
                if not schedule.is_valid(criteria, domain):
                    continue
                cost = kernel_cost(
                    kernel,
                    domain,
                    spec,
                    schedule=schedule,
                    window=window_size(schedule, criteria),
                )
                if best is None or cost.cycles < best:
                    best = cost.cycles
        result = autotune_schedule(
            func, domain, spec, bound=bound, verify_winner=False
        )
        assert result.predicted.cycles == best
        assert result.predicted.cycles <= result.default_predicted.cycles

    def test_pruning_actually_prunes(self):
        func = checked(EDIT_DISTANCE)
        result = autotune_schedule(
            func, Domain.of(i=64, j=64), bound=4
        )
        total_vectors = (2 * 4 + 1) ** 2 - 1
        assert result.stats.pruned > 0
        assert result.stats.enumerated < total_vectors
        # Lazy validity: only model-competitive vectors pay for the
        # criteria check, so it can never exceed the enumerated count.
        assert result.stats.validity_checks <= result.stats.enumerated


class TestWindowResidencyWin:
    """The autotuner's raison d'etre: trading partitions for a
    shared-memory-resident window."""

    def test_beats_min_partition_when_diagonal_spills(self):
        func = checked(EDIT_DISTANCE)
        result = autotune_schedule(
            func, Domain.of(i=64, j=64), TINY_SHARED, bound=4
        )
        assert result.improved
        assert result.default == Schedule(("i", "j"), (1, 1))
        assert not result.default_predicted.window_in_shared
        assert result.predicted.window_in_shared
        assert result.predicted_speedup > 1.0
        # The winner carries its independent re-proof.
        assert result.certificate is not None
        assert result.certificate.ok
        assert result.parallelism is not None

    def test_keeps_default_when_window_fits(self):
        func = checked(EDIT_DISTANCE)
        result = autotune_schedule(
            func, Domain.of(i=24, j=24), bound=3
        )
        assert not result.improved
        assert result.schedule == Schedule(("i", "j"), (1, 1))
        assert result.predicted_speedup == 1.0

    def test_winner_is_valid_for_the_domain(self):
        func = checked(EDIT_DISTANCE)
        domain = Domain.of(i=64, j=64)
        result = autotune_schedule(func, domain, TINY_SHARED)
        criteria = schedule_criteria(func)
        assert result.schedule.is_valid(criteria, domain)


class TestNonRecursive:
    def test_nothing_to_tune(self):
        func = checked("int f(seq[en] s, index[s] i) = i * 2")
        result = autotune_schedule(func, Domain.of(i=100))
        assert not result.improved
        assert result.stats.enumerated == 0
        assert result.stats.pruned == 0
        assert result.candidates == (
            Candidate(result.default, result.default_predicted),
        )


class TestMeasuredFeedback:
    def test_measure_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_AUTOTUNE_MEASURE", raising=False)
        assert measure_from_env() == 0
        monkeypatch.setenv("REPRO_AUTOTUNE_MEASURE", "3")
        assert measure_from_env() == 3
        monkeypatch.setenv("REPRO_AUTOTUNE_MEASURE", "-2")
        assert measure_from_env() == 0
        monkeypatch.setenv("REPRO_AUTOTUNE_MEASURE", "garbage")
        assert measure_from_env() == 0

    def test_measurement_overrides_model_order(self):
        func = checked(EDIT_DISTANCE)
        timed = []

        def measure_fn(schedule):
            timed.append(schedule.coefficients)
            # Invert the model's preference: the analytically *worst*
            # measured candidate reports the best wall-clock.
            return float(sum(abs(a) for a in schedule.coefficients))

        result = autotune_schedule(
            func,
            Domain.of(i=64, j=64),
            TINY_SHARED,
            bound=3,
            measure=3,
            measure_fn=measure_fn,
        )
        assert 1 <= len(timed) <= 3
        assert result.stats.measured == len(timed)
        measured = [
            c for c in result.candidates
            if c.measured_seconds is not None
        ]
        assert measured
        # Measured candidates outrank analytic ones and sort by
        # seconds among themselves.
        winner = min(
            measured,
            key=lambda c: (
                c.measured_seconds,
                tie_break_key(c.schedule.coefficients),
            ),
        )
        assert result.schedule == winner.schedule

    def test_failing_measure_fn_stays_analytic(self):
        func = checked(EDIT_DISTANCE)

        def measure_fn(schedule):
            raise RuntimeError("no stopwatch")

        analytic = autotune_schedule(
            func, Domain.of(i=64, j=64), TINY_SHARED, bound=3
        )
        result = autotune_schedule(
            func,
            Domain.of(i=64, j=64),
            TINY_SHARED,
            bound=3,
            measure=2,
            measure_fn=measure_fn,
        )
        assert result.stats.measured == 0
        assert result.schedule == analytic.schedule

    def test_measure_off_never_calls_fn(self):
        func = checked(EDIT_DISTANCE)

        def measure_fn(schedule):  # pragma: no cover - must not run
            raise AssertionError("measure_fn called with measure=0")

        result = autotune_schedule(
            func,
            Domain.of(i=32, j=32),
            bound=3,
            measure=0,
            measure_fn=measure_fn,
        )
        assert result.stats.measured == 0


class TestVerificationGate:
    def test_unverified_search_returns_no_certificates(self):
        func = checked(EDIT_DISTANCE)
        result = autotune_schedule(
            func,
            Domain.of(i=64, j=64),
            TINY_SHARED,
            verify_winner=False,
        )
        assert result.improved
        assert result.certificate is None
        assert result.parallelism is None

    def test_result_shape(self):
        func = checked(EDIT_DISTANCE)
        result = autotune_schedule(func, Domain.of(i=16, j=16))
        assert isinstance(result, AutotuneResult)
        assert result.stats.search_seconds >= 0.0
        assert not result.stats.cache_hit
        assert all(
            isinstance(c, Candidate) for c in result.candidates
        )
