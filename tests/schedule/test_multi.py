"""Tests for conditional parallelisation (Section 4.7)."""

import pytest

from repro.analysis.criteria import schedule_criteria
from repro.analysis.domain import Domain
from repro.lang.errors import ScheduleError
from repro.lang.parser import parse_function
from repro.lang.typecheck import check_function
from repro.schedule.multi import derive_schedule_set
from repro.schedule.schedule import Schedule
from repro.schedule.solver import find_schedule

EN = {"en": "abcdefghijklmnopqrstuvwxyz"}
DNA = {"dna": "acgt"}


def checked(src, alphabets=EN):
    return check_function(parse_function(src.strip()), alphabets)


DIAGONAL_ONLY = (
    "int f(seq[en] a, index[a] x, seq[en] b, index[b] y) = "
    "if x == 0 then 0 else f(x - 1, y - 1)"
)

EDIT_DISTANCE = """
int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1
"""


class TestPaperExample:
    """Section 4.7: f(x,y) = .. f(x-1, y-1) has two minimal schedules."""

    def test_two_candidates(self):
        schedule_set = derive_schedule_set(checked(DIAGONAL_ONLY))
        assert set(schedule_set) == {
            Schedule.of(x=1, y=0),
            Schedule.of(x=0, y=1),
        }

    def test_runtime_selection(self):
        schedule_set = derive_schedule_set(checked(DIAGONAL_ONLY))
        assert schedule_set.select({"x": 3, "y": 100}) == (
            Schedule.of(x=1, y=0)
        )
        assert schedule_set.select({"x": 100, "y": 3}) == (
            Schedule.of(x=0, y=1)
        )

    def test_nonminimal_schedules_excluded(self):
        """(2,1), (2,2), (3,3) are valid but never minimal."""
        schedule_set = derive_schedule_set(checked(DIAGONAL_ONLY))
        assert Schedule.of(x=2, y=1) not in list(schedule_set)
        assert Schedule.of(x=2, y=2) not in list(schedule_set)

    def test_selection_index(self):
        schedule_set = derive_schedule_set(checked(DIAGONAL_ONLY))
        idx = schedule_set.selection_index({"x": 3, "y": 100})
        assert list(schedule_set)[idx] == Schedule.of(x=1, y=0)


class TestGeneralProperties:
    def test_edit_distance_single_schedule(self):
        """Most problems have one schedule (Section 4.7 note)."""
        schedule_set = derive_schedule_set(checked(EDIT_DISTANCE))
        assert set(schedule_set) == {Schedule.of(i=1, j=1)}

    def test_all_candidates_valid(self):
        func = checked(DIAGONAL_ONLY)
        criteria = schedule_criteria(func)
        for schedule in derive_schedule_set(func):
            assert schedule.is_valid(criteria)

    def test_candidates_cover_runtime_optimum(self):
        """For every box, the set's choice matches the runtime search
        (restricted to non-negative coefficients)."""
        func = checked(DIAGONAL_ONLY)
        schedule_set = derive_schedule_set(func)
        for extents in [(3, 9), (9, 3), (5, 5), (2, 30)]:
            domain = Domain(("x", "y"), extents)
            runtime_best = find_schedule(func, domain)
            chosen = schedule_set.select(domain.extent_map())
            assert chosen.num_partitions(domain) == (
                runtime_best.num_partitions(domain)
            )

    def test_nonuniform_rejected(self):
        func = checked(
            "int f(int x, int y) = if x == 0 then 0 else f(x - 1, x - y)"
        )
        with pytest.raises(ScheduleError, match="uniform"):
            derive_schedule_set(func)

    def test_unsatisfiable_raises(self):
        func = checked("int f(int n) = f(n) + 1")
        with pytest.raises(ScheduleError, match="no valid schedule"):
            derive_schedule_set(func)

    def test_three_dims(self):
        func = checked(
            "int g(int x, int y, int z) = if x == 0 then 0 else "
            "g(x-1, y-1, z-1)"
        )
        schedule_set = derive_schedule_set(func)
        assert set(schedule_set) == {
            Schedule.of(x=1, y=0, z=0),
            Schedule.of(x=0, y=1, z=0),
            Schedule.of(x=0, y=0, z=1),
        }

    def test_len_and_iter(self):
        schedule_set = derive_schedule_set(checked(EDIT_DISTANCE))
        assert len(schedule_set) == 1
        assert list(iter(schedule_set))
