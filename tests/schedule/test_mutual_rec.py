"""Tests for mutual-recursion scheduling (the Section 9 extension)."""

import pytest

from repro.analysis.callgraph import group_of, recursive_groups
from repro.analysis.cross import extract_cross_descents
from repro.analysis.domain import Domain
from repro.lang.errors import ScheduleError
from repro.lang.parser import parse_program
from repro.lang.typecheck import check_program
from repro.schedule.mutual_rec import (
    FunctionSchedule,
    MutualSchedule,
    brute_force_mutual_valid,
    find_mutual_schedules,
    group_criteria,
)
from repro.schedule.schedule import Schedule

PING_PONG = """
int f(int n) = if n == 0 then 0 else g(n - 1) + 1
int g(int n) = if n == 0 then 0 else f(n - 1) + 2
"""

SAME_STEP = """
int f(int n) = if n == 0 then 0 else g(n) + 1
int g(int n) = if n == 0 then 0 else f(n - 1) + 2
"""

THREE_WAY = """
int a(int n) = if n == 0 then 0 else b(n - 1)
int b(int n) = if n == 0 then 1 else c(n - 1)
int c(int n) = if n == 0 then 2 else a(n - 1)
"""


def funcs_of(src, names):
    checked = check_program(parse_program(src))
    return {name: checked.function(name) for name in names}


class TestCallGraph:
    def test_mutual_group_detected(self):
        checked = check_program(parse_program(PING_PONG))
        groups = recursive_groups(checked.functions)
        assert ("f", "g") in groups

    def test_self_recursion_is_singleton_group(self):
        checked = check_program(
            parse_program("int f(int n) = if n == 0 then 0 else f(n-1)")
        )
        assert recursive_groups(checked.functions) == [("f",)]

    def test_nonrecursive_function_in_no_group(self):
        checked = check_program(parse_program("int f(int n) = n + 1"))
        assert recursive_groups(checked.functions) == []
        assert group_of(checked, "f") == ("f",)

    def test_three_way_cycle(self):
        checked = check_program(parse_program(THREE_WAY))
        assert ("a", "b", "c") in recursive_groups(checked.functions)


class TestCrossDescents:
    def test_descents_per_callee(self):
        funcs = funcs_of(PING_PONG, ("f", "g"))
        descents = extract_cross_descents(funcs["f"], funcs)
        assert len(descents) == 1
        assert descents[0].callee == "g"
        assert str(descents[0].components[0].affine) == "n - 1"

    def test_self_call_also_extracted(self):
        funcs = funcs_of(
            "int f(int n) = if n == 0 then 0 else f(n-1) + g(n-1)\n"
            "int g(int n) = if n == 0 then 0 else f(n-1)",
            ("f", "g"),
        )
        descents = extract_cross_descents(funcs["f"], funcs)
        assert {d.callee for d in descents} == {"f", "g"}


class TestJointSolver:
    def test_ping_pong_schedules(self):
        funcs = funcs_of(PING_PONG, ("f", "g"))
        domains = {"f": Domain.of(n=10), "g": Domain.of(n=10)}
        mutual = find_mutual_schedules(funcs, domains)
        assert brute_force_mutual_valid(mutual, funcs, domains)
        # f(n) needs g(n-1); g(n) needs f(n-1): S_f = n, S_g = n (any
        # offset pair with |o_f - o_g| < 1... validity check instead:
        criteria = group_criteria(funcs)
        coeffs = {
            name: dict(zip(funcs[name].dim_names,
                           mutual[name].schedule.coefficients))
            for name in funcs
        }
        offsets = {name: mutual[name].offset for name in funcs}
        for criterion in criteria:
            assert criterion.min_delta(coeffs, offsets, domains) > 0

    def test_same_step_needs_offsets(self):
        """g(n) feeds f(n) at the *same* coordinates: only the offset
        can separate them (S_g must run strictly before S_f)."""
        funcs = funcs_of(SAME_STEP, ("f", "g"))
        domains = {"f": Domain.of(n=8), "g": Domain.of(n=8)}
        mutual = find_mutual_schedules(funcs, domains)
        assert brute_force_mutual_valid(mutual, funcs, domains)
        f_at = mutual["f"].partition_of((3,))
        g_at = mutual["g"].partition_of((3,))
        assert g_at < f_at

    def test_three_way_cycle_scheduled(self):
        funcs = funcs_of(THREE_WAY, ("a", "b", "c"))
        domains = {n: Domain.of(n=6) for n in funcs}
        mutual = find_mutual_schedules(funcs, domains)
        assert brute_force_mutual_valid(mutual, funcs, domains)

    def test_impossible_group_raises(self):
        funcs = funcs_of(
            "int f(int n) = g(n) + 1\nint g(int n) = f(n) + 1",
            ("f", "g"),
        )
        domains = {"f": Domain.of(n=4), "g": Domain.of(n=4)}
        with pytest.raises(ScheduleError, match="no compatible"):
            find_mutual_schedules(funcs, domains)

    def test_search_space_guard(self):
        funcs = funcs_of(THREE_WAY, ("a", "b", "c"))
        domains = {n: Domain.of(n=6) for n in funcs}
        with pytest.raises(ScheduleError, match="candidates"):
            find_mutual_schedules(
                funcs, domains, coeff_bound=30, offset_bound=30
            )

    def test_minimality_of_global_span(self):
        """The first valid assignment has the fewest global partitions."""
        funcs = funcs_of(PING_PONG, ("f", "g"))
        domains = {"f": Domain.of(n=12), "g": Domain.of(n=12)}
        mutual = find_mutual_schedules(funcs, domains)
        assert mutual.total_partitions(domains) <= 2 * 12 + 1


class TestMutualScheduleApi:
    def test_partition_arithmetic(self):
        fs = FunctionSchedule(Schedule.of(n=1), offset=3)
        assert fs.partition_of((4,)) == 7
        assert fs.min_partition(Domain.of(n=5)) == 3
        assert fs.max_partition(Domain.of(n=5)) == 7

    def test_global_range(self):
        mutual = MutualSchedule({
            "f": FunctionSchedule(Schedule.of(n=1), 0),
            "g": FunctionSchedule(Schedule.of(n=1), 1),
        })
        domains = {"f": Domain.of(n=4), "g": Domain.of(n=4)}
        assert mutual.global_range(domains) == (0, 4)
        assert mutual.total_partitions(domains) == 5

    def test_str_rendering(self):
        fs = FunctionSchedule(Schedule.of(n=1), offset=-1)
        assert str(fs).endswith("- 1")
