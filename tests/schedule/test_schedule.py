"""Tests for Schedule: partitions, validation, user schedules."""

import pytest

from repro.analysis.criteria import schedule_criteria
from repro.analysis.domain import Domain
from repro.lang.errors import ScheduleError
from repro.lang.parser import parse_expr, parse_function
from repro.lang.typecheck import check_function
from repro.schedule.schedule import (
    Schedule,
    brute_force_valid,
    validate_user_schedule,
)

EN = {"en": "abcdefghijklmnopqrstuvwxyz"}

EDIT_DISTANCE = """
int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1
"""


def edit_distance():
    return check_function(parse_function(EDIT_DISTANCE.strip()), EN)


class TestBasics:
    def test_partition_of(self):
        schedule = Schedule.of(i=1, j=1)
        assert schedule.partition_of((2, 3)) == 5

    def test_num_partitions_diagonal(self):
        # Figure 3: the 3x3 edit distance diagonal schedule has 5
        # partitions.
        schedule = Schedule.of(i=1, j=1)
        assert schedule.num_partitions(Domain.of(i=3, j=3)) == 5

    def test_num_partitions_2x_plus_y(self):
        # Section 2.3: S = 2x + y is valid but less efficient.
        diag = Schedule.of(i=1, j=1)
        skew = Schedule.of(i=2, j=1)
        domain = Domain.of(i=3, j=3)
        assert skew.num_partitions(domain) > diag.num_partitions(domain)

    def test_span_matches_num_partitions(self):
        schedule = Schedule.of(i=2, j=-1)
        domain = Domain.of(i=4, j=5)
        assert (
            schedule.span(domain.extent_map())
            == schedule.num_partitions(domain) - 1
        )

    def test_partitions_grouping(self):
        schedule = Schedule.of(i=1, j=1)
        groups = schedule.partitions(Domain.of(i=3, j=3))
        assert list(groups) == [0, 1, 2, 3, 4]
        assert sorted(groups[2]) == [(0, 2), (1, 1), (2, 0)]
        # Figure 3's partition sizes: 1, 2, 3, 2, 1.
        assert [len(groups[p]) for p in groups] == [1, 2, 3, 2, 1]

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            Schedule(("i",), (1, 2))

    def test_str(self):
        assert str(Schedule.of(i=1, j=1)) == "S = i + j"


class TestStrategiesOfFigure4:
    """Figure 4's three parallel strategies over a 7x6 grid."""

    def test_columns(self):
        schedule = Schedule.of(x=1, y=0)
        assert schedule.num_partitions(Domain.of(x=7, y=6)) == 7

    def test_rows(self):
        schedule = Schedule.of(x=0, y=1)
        assert schedule.num_partitions(Domain.of(x=7, y=6)) == 6

    def test_diagonals(self):
        schedule = Schedule.of(x=1, y=1)
        assert schedule.num_partitions(Domain.of(x=7, y=6)) == 12

    def test_partition_four_members(self):
        # Each case in Figure 4 highlights the partition S = 4.
        domain = Domain.of(x=7, y=6)
        diag = Schedule.of(x=1, y=1)
        members = diag.partitions(domain)[4]
        assert sorted(members) == [
            (0, 4), (1, 3), (2, 2), (3, 1), (4, 0)
        ]


class TestValidation:
    def test_diagonal_valid_for_edit_distance(self):
        func = edit_distance()
        schedule = Schedule.of(i=1, j=1)
        schedule.validate(schedule_criteria(func))

    def test_single_axis_invalid_for_edit_distance(self):
        func = edit_distance()
        schedule = Schedule.of(i=1, j=0)  # misses the d(i, j-1) dep
        with pytest.raises(ScheduleError, match="violates"):
            schedule.validate(schedule_criteria(func))

    def test_is_valid_bool(self):
        func = edit_distance()
        criteria = schedule_criteria(func)
        assert Schedule.of(i=1, j=1).is_valid(criteria)
        assert not Schedule.of(i=0, j=1).is_valid(criteria)

    def test_brute_force_agrees_on_edit_distance(self):
        func = edit_distance()
        domain = Domain.of(i=4, j=4)
        criteria = schedule_criteria(func)
        for coeffs in [(1, 1), (2, 1), (1, 2), (1, 0), (0, 1), (1, -1)]:
            schedule = Schedule(("i", "j"), coeffs)
            assert schedule.is_valid(criteria) == brute_force_valid(
                schedule, func, domain
            ), coeffs


class TestUserSchedules:
    def test_valid_user_schedule_accepted(self):
        func = edit_distance()
        schedule = validate_user_schedule(func, parse_expr("i + j"))
        assert schedule == Schedule.of(i=1, j=1)

    def test_invalid_user_schedule_rejected(self):
        func = edit_distance()
        with pytest.raises(ScheduleError, match="violates"):
            validate_user_schedule(func, parse_expr("i - j"))

    def test_nonaffine_user_schedule_rejected(self):
        func = edit_distance()
        with pytest.raises(ScheduleError, match="affine"):
            validate_user_schedule(func, parse_expr("i * j"))

    def test_constant_term_rejected(self):
        func = edit_distance()
        with pytest.raises(ScheduleError, match="constant"):
            validate_user_schedule(func, parse_expr("i + j + 1"))

    def test_foreign_dimension_rejected(self):
        with pytest.raises(ScheduleError, match="not a recursion"):
            Schedule.from_expr(parse_expr("i + q"), ["i", "j"])
