"""Tests for automatic schedule derivation (Section 4.6)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.criteria import schedule_criteria
from repro.analysis.domain import Domain
from repro.lang.errors import ScheduleError
from repro.lang.parser import parse_function
from repro.lang.typecheck import check_function
from repro.schedule.schedule import Schedule, brute_force_valid
from repro.schedule.solver import (
    EnumerativeSolver,
    OrthantSolver,
    find_schedule,
)

EN = {"en": "abcdefghijklmnopqrstuvwxyz"}
DNA = {"dna": "acgt"}

EDIT_DISTANCE = """
int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1
"""

FORWARD = """
prob forward(hmm h, state[h] s, seq[*] x, index[x] i) =
  if i == 0 then (if s.isstart then 1.0 else 0.0)
  else (if s.isend then 1.0 else s.emission[x[i-1]])
    * sum(t in s.transitionsto : t.prob * forward(t.start, i - 1))
"""


def checked(src, alphabets=EN):
    return check_function(parse_function(src.strip()), alphabets)


class TestPaperExamples:
    def test_edit_distance_derives_diagonal(self):
        func = checked(EDIT_DISTANCE)
        schedule = find_schedule(func, Domain.of(i=7, j=8))
        assert schedule == Schedule.of(i=1, j=1)

    def test_fibonacci_is_serial(self):
        func = checked("int fib(int n) = if n < 2 then n else "
                       "fib(n-1) + fib(n-2)")
        schedule = find_schedule(func, Domain.of(n=20))
        assert schedule == Schedule.of(n=1)

    def test_forward_schedules_on_sequence_position(self):
        """Section 5.2: 'our schedule can only be S_forward(s,i) = i'."""
        func = checked(FORWARD, DNA)
        schedule = find_schedule(func, Domain.of(s=8, i=100))
        assert schedule == Schedule.of(s=0, i=1)

    def test_single_diagonal_dependence_picks_shorter_axis(self):
        """Section 4.7's example: with nx < ny the minimum is S = x."""
        func = checked(
            "int f(seq[en] a, index[a] x, seq[en] b, index[b] y) = "
            "if x == 0 then 0 else f(x - 1, y - 1)"
        )
        assert find_schedule(func, Domain.of(x=4, y=50)) == (
            Schedule.of(x=1, y=0)
        )
        assert find_schedule(func, Domain.of(x=50, y=4)) == (
            Schedule.of(x=0, y=1)
        )


class TestSolverProperties:
    def test_no_schedule_raises(self):
        func = checked("int f(int n) = f(n) + 1")
        with pytest.raises(ScheduleError, match="no valid schedule"):
            find_schedule(func, Domain.of(n=5))

    def test_no_recursion_gets_zero_schedule(self):
        func = checked("int f(int n) = n + 1")
        schedule = find_schedule(func, Domain.of(n=5))
        assert schedule.is_zero
        assert schedule.num_partitions(Domain.of(n=5)) == 1

    def test_unknown_solver_name(self):
        func = checked(EDIT_DISTANCE)
        with pytest.raises(ValueError, match="unknown solver"):
            find_schedule(func, Domain.of(i=3, j=3), solver="nope")

    def test_bound_validation(self):
        with pytest.raises(ValueError):
            EnumerativeSolver(bound=0)
        with pytest.raises(ValueError):
            OrthantSolver(bound=0)

    def test_negative_coefficients_found_when_needed(self):
        # f(x+1, y-1): dependence increases x, so a_x must be <= -1...
        # criteria: -a_x + a_y >= 1.
        func = checked(
            "int f(int x, int y) = if y == 0 then 0 else f(x + 1, y - 1)"
        )
        schedule = find_schedule(func, Domain.of(x=10, y=10))
        coeffs = schedule.coefficient_map()
        assert -coeffs["x"] + coeffs["y"] >= 1
        # The minimal choice spans one dimension only.
        assert schedule.num_partitions(Domain.of(x=10, y=10)) == 10

    def test_result_always_brute_force_valid(self):
        for src, domain in [
            (EDIT_DISTANCE, Domain.of(i=5, j=4)),
            ("int f(int x, int y) = if x == 0 then 0 else f(x-1, y-1)",
             Domain.of(x=4, y=6)),
            ("int g(int x, int y, int z) = if x == 0 then 0 else "
             "g(x-1, y-1, z) + g(x, y-1, z-1)", Domain.of(x=3, y=3, z=3)),
        ]:
            func = checked(src)
            schedule = find_schedule(func, domain)
            assert brute_force_valid(schedule, func, domain)


class TestSolverAgreement:
    """The orthant CSP and exhaustive search must agree on the goal."""

    CASES = [
        ("int f(int x, int y) = if x == 0 then 0 else f(x-1, y-1)",
         Domain.of(x=4, y=9)),
        (EDIT_DISTANCE, Domain.of(i=6, j=6)),
        ("int f(int x, int y) = if y == 0 then 0 else f(x+1, y-1)",
         Domain.of(x=5, y=5)),
        ("int g(int x, int y, int z) = if x == 0 then 0 else "
         "g(x-1, y-1, z) + g(x, y-1, z-1) + g(x, y, z-1)",
         Domain.of(x=4, y=4, z=4)),
    ]

    @pytest.mark.parametrize("src,domain", CASES)
    def test_same_partition_count(self, src, domain):
        func = checked(src)
        a = find_schedule(func, domain, solver="orthant")
        b = find_schedule(func, domain, solver="enumerative")
        assert a.num_partitions(domain) == b.num_partitions(domain)
        criteria = schedule_criteria(func)
        assert a.is_valid(criteria, domain)
        assert b.is_valid(criteria, domain)

    @settings(deadline=None, max_examples=30)
    @given(
        offsets=st.lists(
            st.tuples(st.integers(-2, 1), st.integers(-2, 1)),
            min_size=1,
            max_size=3,
        ),
        extents=st.tuples(st.integers(2, 6), st.integers(2, 6)),
    )
    def test_random_uniform_recursions(self, offsets, extents):
        """Generate random uniform 2-D recursions and cross-check."""
        calls = []
        for dx, dy in offsets:
            def fmt(var, d):
                if d == 0:
                    return var
                sign = "+" if d > 0 else "-"
                return f"{var} {sign} {abs(d)}"
            calls.append(f"f({fmt('x', dx)}, {fmt('y', dy)})")
        body = " + ".join(calls)
        src = f"int f(int x, int y) = if x == 0 then 0 else {body}"
        func = checked(src)
        domain = Domain(("x", "y"), extents)

        try:
            a = find_schedule(func, domain, solver="orthant")
        except ScheduleError:
            with pytest.raises(ScheduleError):
                find_schedule(func, domain, solver="enumerative")
            return
        b = find_schedule(func, domain, solver="enumerative")
        assert a.num_partitions(domain) == b.num_partitions(domain)
        assert brute_force_valid(a, func, domain)
        assert brute_force_valid(b, func, domain)
