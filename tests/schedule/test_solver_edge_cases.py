"""Edge cases of the schedule machinery that real inputs can hit."""

import pytest

from repro.analysis.criteria import schedule_criteria
from repro.analysis.domain import Domain
from repro.lang.errors import ScheduleError
from repro.lang.parser import parse_function
from repro.lang.typecheck import check_function
from repro.schedule.schedule import Schedule, brute_force_valid
from repro.schedule.solver import find_schedule


def checked(src):
    return check_function(parse_function(src))


class TestSingleCellDomains:
    def test_degenerate_extent_one(self):
        """A 1x1 domain still schedules and runs."""
        func = checked(
            "int f(int x, int y) = if x == 0 then 0 else f(x-1, y-1)"
        )
        schedule = find_schedule(func, Domain.of(x=1, y=1))
        assert schedule.num_partitions(Domain.of(x=1, y=1)) == 1

    def test_one_by_many(self):
        func = checked(
            "int f(int x, int y) = if x == 0 then 0 else f(x-1, y-1)"
        )
        domain = Domain.of(x=1, y=100)
        schedule = find_schedule(func, domain)
        # x never moves: a single partition suffices... but the
        # criterion a_x + a_y >= 1 still demands a non-zero vector;
        # the minimal valid choice spans the trivial dimension.
        assert schedule.num_partitions(domain) == 1
        assert brute_force_valid(schedule, func, Domain.of(x=1, y=6))


class TestZeroOffsetCalls:
    def test_identity_component_forces_other_dim(self):
        """f(x, y-1): the x component moves nothing, so the schedule
        must advance on y alone."""
        func = checked(
            "int f(int x, int y) = if y == 0 then 0 else f(x, y-1)"
        )
        schedule = find_schedule(func, Domain.of(x=10, y=10))
        assert schedule == Schedule.of(x=0, y=1)

    def test_pure_self_call_unschedulable(self):
        func = checked("int f(int x, int y) = f(x, y) + 1")
        with pytest.raises(ScheduleError):
            find_schedule(func, Domain.of(x=3, y=3))


class TestMixedDirections:
    @pytest.mark.parametrize(
        "body,expected_sign",
        [
            ("f(x-1, y+1)", (1, -1)),
            ("f(x+1, y-1)", (-1, 1)),
            ("f(x+1, y+1)", (-1, -1)),
        ],
    )
    def test_all_four_quadrants(self, body, expected_sign):
        func = checked(
            f"int f(int x, int y) = if x == 0 then 0 else {body}"
        )
        domain = Domain.of(x=6, y=6)
        schedule = find_schedule(func, domain)
        assert brute_force_valid(schedule, func, domain)
        # The minimal schedule points against the descent direction:
        # its dot product with the step vector is negative.
        coeffs = schedule.coefficient_map()
        step = {
            "f(x-1, y+1)": (-1, 1),
            "f(x+1, y-1)": (1, -1),
            "f(x+1, y+1)": (1, 1),
        }[body]
        dot = coeffs["x"] * step[0] + coeffs["y"] * step[1]
        assert dot < 0

    def test_opposing_calls_need_skew(self):
        """f(x-1, y-2) and f(x-2, y-1) both valid under S = x + y."""
        func = checked(
            "int f(int x, int y) = if x < 2 then 0 else "
            "f(x-1, y-2) + f(x-2, y-1)"
        )
        domain = Domain.of(x=8, y=8)
        schedule = find_schedule(func, domain)
        assert brute_force_valid(schedule, func, domain)
        assert schedule.num_partitions(domain) <= 15


class TestUserScheduleWithExtents:
    def test_affine_descent_user_schedule_verified_with_domain(self):
        """Section 4.5: affine descents need the runtime range."""
        from repro.lang.parser import parse_expr
        from repro.schedule.schedule import validate_user_schedule

        func = checked(
            "int f(int x, int y) = if x == 0 then 0 else f(x - 1, x - y)"
        )
        # Valid: only x advances.
        validate_user_schedule(
            func, parse_expr("x"), Domain.of(x=10, y=10)
        )
        # Invalid once y participates.
        with pytest.raises(ScheduleError):
            validate_user_schedule(
                func, parse_expr("x + y"), Domain.of(x=10, y=10)
            )
