"""Tests for the sliding-window optimisation (Section 4.8)."""

from repro.analysis.criteria import schedule_criteria
from repro.lang.parser import parse_function
from repro.lang.typecheck import check_function
from repro.schedule.schedule import Schedule
from repro.schedule.window import window_rows, window_size

EN = {"en": "abcdefghijklmnopqrstuvwxyz"}

EDIT_DISTANCE = """
int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1
"""


def criteria_of(src, alphabets=EN):
    func = check_function(parse_function(src.strip()), alphabets)
    return schedule_criteria(func)


class TestWindowSize:
    def test_edit_distance_diagonal_window_is_two(self):
        """d(i-1, j-1) is two diagonals back under S = i + j."""
        criteria = criteria_of(EDIT_DISTANCE)
        assert window_size(Schedule.of(i=1, j=1), criteria) == 2

    def test_window_depends_on_schedule(self):
        criteria = criteria_of(
            "int f(int x, int y) = if x == 0 then 0 else "
            "f(x - 1, y) + f(x - 1, y - 1)"
        )
        assert window_size(Schedule.of(x=1, y=0), criteria) == 1
        assert window_size(Schedule.of(x=2, y=1), criteria) == 3

    def test_no_recursion_window_zero(self):
        criteria = criteria_of("int f(int n) = n + 1")
        assert window_size(Schedule.of(n=1), criteria) == 0

    def test_rows_is_window_plus_one(self):
        criteria = criteria_of(EDIT_DISTANCE)
        assert window_rows(Schedule.of(i=1, j=1), criteria) == 3

    def test_affine_descent_has_no_window(self):
        criteria = criteria_of(
            "int f(int x, int y) = if x == 0 then 0 else f(x - 1, x - y)"
        )
        assert window_size(Schedule.of(x=1, y=0), criteria) is None
        assert window_rows(Schedule.of(x=1, y=0), criteria) is None

    def test_window_bounds_lookback(self):
        """Brute check: every dependence lands within the window."""
        from repro.analysis.descent import extract_descents
        from repro.analysis.domain import Domain

        func = check_function(parse_function(EDIT_DISTANCE.strip()), EN)
        schedule = Schedule.of(i=1, j=1)
        window = window_size(schedule, schedule_criteria(func))
        domain = Domain.of(i=5, j=5)
        for point in domain.points():
            values = dict(zip(domain.dims, point))
            here = schedule.partition_of(point)
            for descent in extract_descents(func):
                target = tuple(
                    comp.affine.evaluate(values)
                    for comp in descent.components
                )
                if not domain.contains_tuple(target):
                    continue
                there = schedule.partition_of(target)
                assert here - window <= there < here
