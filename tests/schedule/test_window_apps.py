"""Sliding-window analysis (Section 4.8) across the paper's apps.

The window is what the native and CUDA backends use to decide whether
a kernel can keep its working set in a small ring buffer (the shared
memory residency of Section 4.8). These tests pin down, per case
study, what the analysis concludes for the *derived* schedule:

* Smith-Waterman — diagonal ``S = i + j``, uniform descents, window 2
  (three rows resident);
* Gotoh — a mutual group; the single-kernel window analysis does not
  apply (the dependences live in the cross descents, Section 9);
* Nussinov RNA folding — the ``max(k in ...)`` range reduce is a
  general affine descent, so no constant window exists;
* Viterbi decoding / gene finding / profile-HMM search — the CSR
  reduce over HMM transitions reads ``f(i-1, t.start)``, which is not
  a uniform descent in the state dimension: no constant window.

Every expectation is cross-checked against the window the compiled
kernel actually carries, so the analysis and the code generators can
never silently disagree.
"""

import pytest

from repro.analysis.criteria import schedule_criteria
from repro.lang.errors import AnalysisError
from repro.runtime.engine import Engine
from repro.runtime.sequences import random_dna, random_protein
from repro.runtime.values import Bindings, Sequence
from repro.schedule.schedule import Schedule
from repro.schedule.window import window_rows, window_size


def compiled_kernel(engine, func, bindings):
    bound = Bindings(dict(bindings))
    domain = engine.domain_of(func, bound)
    schedule = engine.schedule_for(func, domain)
    return engine.compile(func, schedule, domain).kernel, schedule


class TestSmithWaterman:
    def test_diagonal_window_is_two(self):
        from repro.apps.smith_waterman import SmithWaterman

        sw = SmithWaterman(engine=Engine(backend="scalar"))
        kernel, schedule = compiled_kernel(
            sw.engine,
            sw.func,
            {
                "m": sw.matrix,
                "q": random_protein(12, seed=1),
                "d": random_protein(14, seed=2),
            },
        )
        assert schedule == Schedule.of(i=1, j=1)
        assert kernel.window == 2
        criteria = schedule_criteria(sw.func)
        assert window_size(schedule, criteria) == 2
        assert window_rows(schedule, criteria) == 3

    def test_window_grows_with_skewed_schedule(self):
        """The window is a property of the schedule, not the program:
        skewing the same recurrence doubles the look-back."""
        from repro.apps.smith_waterman import smith_waterman_function

        func = smith_waterman_function()
        criteria = schedule_criteria(func)
        assert window_size(Schedule.of(i=2, j=1), criteria) == 3


class TestGotoh:
    def test_mutual_group_outside_single_kernel_analysis(self):
        """Affine-gap alignment is a three-function mutual group: its
        dependences are cross descents (Section 9), which the
        single-kernel window analysis refuses outright."""
        from repro.apps.gotoh import GotohAligner

        aligner = GotohAligner()
        for func in aligner.funcs.values():
            with pytest.raises(AnalysisError):
                schedule_criteria(func)


class TestNussinov:
    def test_range_reduce_has_no_constant_window(self):
        from repro.apps.rna_folding import RNA, nussinov_function

        engine = Engine(backend="scalar")
        func = nussinov_function()
        kernel, schedule = compiled_kernel(
            engine, func, {"x": Sequence("gcaucgaugg", RNA)}
        )
        assert kernel.window is None
        assert window_size(schedule, schedule_criteria(func)) is None
        assert window_rows(schedule, schedule_criteria(func)) is None


class TestHmmApps:
    """The transition reduce reads ``f(i-1, t.start)`` — not uniform
    in the state dimension, so no constant window exists even though
    the sequence dimension only ever steps by one."""

    def test_viterbi_decode(self):
        from repro.apps.gene_finder import build_gene_finder_hmm
        from repro.apps.viterbi_decode import ViterbiDecoder

        hmm = build_gene_finder_hmm()
        decoder = ViterbiDecoder(
            hmm, engine=Engine(backend="scalar", prob_mode="direct")
        )
        kernel, schedule = compiled_kernel(
            decoder.engine,
            decoder.func,
            {"h": hmm, "x": random_dna(12, seed=5)},
        )
        assert kernel.window is None
        assert window_size(schedule, schedule_criteria(decoder.func)) is None

    def test_gene_finder(self):
        from repro.apps.gene_finder import GeneFinder

        finder = GeneFinder(
            engine=Engine(backend="scalar", prob_mode="logspace")
        )
        kernel, _schedule = compiled_kernel(
            finder.engine,
            finder.func,
            {"h": finder.hmm, "x": random_dna(12, seed=6)},
        )
        assert kernel.window is None

    def test_profile_search(self):
        from repro.apps.profile_hmm import ProfileSearch, tk_model

        search = ProfileSearch(
            tk_model(),
            engine=Engine(backend="scalar", prob_mode="logspace"),
        )
        kernel, _schedule = compiled_kernel(
            search.engine,
            search.func,
            {"h": search.profile, "x": random_protein(10, seed=7)},
        )
        assert kernel.window is None


class TestKernelConsistency:
    def test_kernel_window_matches_analysis(self):
        """The window stored on the kernel is exactly what the
        standalone analysis computes for the same schedule."""
        from repro.apps.smith_waterman import SmithWaterman

        sw = SmithWaterman(engine=Engine(backend="scalar"))
        kernel, schedule = compiled_kernel(
            sw.engine,
            sw.func,
            {
                "m": sw.matrix,
                "q": random_protein(8, seed=8),
                "d": random_protein(9, seed=9),
            },
        )
        assert kernel.window == window_size(
            schedule, schedule_criteria(sw.func)
        )
