"""Shared fixtures for the service-layer tests."""

import pytest

from repro import check_function, parse_function
from repro.runtime import ENGLISH

EDIT_PROGRAM = '''\
alphabet en = "abcdefghijklmnopqrstuvwxyz"

int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1
'''

FORWARD_PROGRAM = '''\
alphabet dna = "acgt"

hmm h [dna] {
  state b : start
  state m emits { a: 0.4, c: 0.1, g: 0.1, t: 0.4 }
  state e : end
  trans b -> m : 1.0
  trans m -> m : 0.5
  trans m -> e : 0.5
}

prob fw(hmm h, state[h] s, seq[*] x, index[x] i) =
  if i == 0 then (if s.isstart then 1.0 else 0.0)
  else (if s.isend then 1.0 else s.emission[x[i-1]])
    * sum(t in s.transitionsto : t.prob * fw(t.start, i-1))
'''

EDIT_FUNC_SRC = """\
int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1"""


@pytest.fixture
def edit_func():
    """The checked edit-distance function (standalone form)."""
    return check_function(
        parse_function(EDIT_FUNC_SRC), {"en": ENGLISH.chars}
    )
