"""Coalescing behaviour of the batch scheduler."""

import queue as _queue
import time

from repro.service.batcher import Batch, Batcher
from repro.service.queue import JobQueue

from .test_queue import make_job


def drain(batches):
    out = []
    while True:
        try:
            out.append(batches.get_nowait())
        except _queue.Empty:
            return out


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


class TestBatcher:
    def test_same_key_jobs_coalesce(self):
        jobs, batches = JobQueue(64), _queue.Queue()
        batcher = Batcher(jobs, batches, window=0.05, max_batch=32)
        batcher.start()
        submitted = [make_job() for _ in range(5)]
        for job in submitted:
            jobs.submit(job)
        assert wait_for(lambda: not batches.empty())
        batcher.stop()
        (batch,) = drain(batches)
        assert len(batch) == 5
        assert [j.job_id for j in batch.jobs] == [
            j.job_id for j in submitted
        ]

    def test_distinct_keys_stay_separate(self):
        jobs, batches = JobQueue(64), _queue.Queue()
        batcher = Batcher(jobs, batches, window=0.02, max_batch=32)
        batcher.start()
        for _ in range(3):
            jobs.submit(make_job(function="d"))
        for _ in range(2):
            jobs.submit(make_job(function="g"))
        assert wait_for(lambda: batches.qsize() >= 2)
        batcher.stop()
        got = {b.function: len(b) for b in drain(batches)}
        assert got == {"d": 3, "g": 2}

    def test_max_batch_flushes_immediately(self):
        jobs, batches = JobQueue(64), _queue.Queue()
        batcher = Batcher(jobs, batches, window=30.0, max_batch=4)
        batcher.start()
        for _ in range(4):
            jobs.submit(make_job())
        # The window is half a minute: only the size trigger can
        # flush this quickly.
        assert wait_for(lambda: not batches.empty(), timeout=2.0)
        batcher.stop(drain_timeout=1.0)
        sizes = sorted(len(b) for b in drain(batches))
        assert sizes[-1] == 4

    def test_window_flushes_partial_batch(self):
        jobs, batches = JobQueue(64), _queue.Queue()
        batcher = Batcher(jobs, batches, window=0.02, max_batch=1000)
        batcher.start()
        jobs.submit(make_job())
        assert wait_for(lambda: not batches.empty(), timeout=2.0)
        batcher.stop()
        (batch,) = drain(batches)
        assert len(batch) == 1

    def test_stop_drains_buffered_jobs(self):
        jobs, batches = JobQueue(64), _queue.Queue()
        batcher = Batcher(jobs, batches, window=60.0, max_batch=1000)
        batcher.start()
        for _ in range(3):
            jobs.submit(make_job())
        assert batcher.stop(drain_timeout=5.0)
        total = sum(len(b) for b in drain(batches))
        assert total == 3

    def test_batch_metadata(self):
        job = make_job()
        batch = Batch(job.group_key, [job])
        assert batch.program_sha == "sha"
        assert batch.function == "d"
        assert len(batch) == 1
