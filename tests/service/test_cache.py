"""The content-addressed kernel caches: LRU tier, disk tier, keys."""

import os
import pickle

import pytest

from repro import Engine, Sequence
from repro.ir.kernel import Kernel
from repro.runtime import ENGLISH
from repro.schedule.schedule import Schedule
from repro.lang.errors import ScheduleError
from repro.service.cache import (
    LRUKernelCache,
    PersistentKernelCache,
    decode_compiled,
    encode_compiled,
    kernel_cache_key,
)

ARGS = {"s": Sequence("kitten", ENGLISH), "t": Sequence("sitting", ENGLISH)}


def record_names(directory):
    """The ``.kpkl`` records on disk (the directory also holds the
    ``.lock`` sidecar and, after quarantines, ``.quarantine/``)."""
    return [
        name
        for name in os.listdir(directory)
        if name.endswith(PersistentKernelCache.SUFFIX)
    ]


class TestScheduleSerialisation:
    def test_round_trip(self):
        schedule = Schedule(("i", "j"), (1, 2))
        assert Schedule.from_json(schedule.to_json()) == schedule

    def test_json_safe(self):
        import json

        schedule = Schedule(("i", "j"), (1, -1))
        assert json.loads(json.dumps(schedule.to_json())) == {
            "dims": ["i", "j"],
            "coefficients": [1, -1],
        }

    def test_malformed_rejected(self):
        with pytest.raises(ScheduleError):
            Schedule.from_json({"dims": ["i"]})
        with pytest.raises(ScheduleError):
            Schedule.from_json({"dims": ["i"], "coefficients": ["x"]})


class TestKernelPayload:
    def test_round_trip(self, edit_func):
        engine = Engine()
        schedule = engine.schedule_for(
            edit_func, engine.domain_of(
                edit_func,
                __import__("repro").Bindings(dict(ARGS)),
            ),
        )
        kernel = engine.compile(edit_func, schedule).kernel
        clone = Kernel.from_payload(kernel.to_payload())
        assert clone.name == kernel.name
        assert clone.schedule == kernel.schedule
        assert clone.dims == kernel.dims

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            Kernel.from_payload(b"not a payload")

    def test_wrong_format_rejected(self):
        data = pickle.dumps(
            {"format": -1, "schedule": {}, "kernel": None}
        )
        with pytest.raises(ValueError):
            Kernel.from_payload(data)


class TestCacheKey:
    def test_stable_across_objects(self, edit_func):
        schedule = Schedule(("i", "j"), (1, 1))
        a = kernel_cache_key(edit_func, schedule, "direct", "auto")
        b = kernel_cache_key(edit_func, schedule, "direct", "auto")
        assert a == b and len(a) == 64

    def test_every_component_differentiates(self, edit_func):
        schedule = Schedule(("i", "j"), (1, 1))
        base = kernel_cache_key(edit_func, schedule, "direct", "auto")
        assert base != kernel_cache_key(
            edit_func, Schedule(("i", "j"), (2, 1)), "direct", "auto"
        )
        assert base != kernel_cache_key(
            edit_func, schedule, "logspace", "auto"
        )
        assert base != kernel_cache_key(
            edit_func, schedule, "direct", "scalar"
        )

    def test_source_form_not_just_name(self, edit_func):
        """Two functions named ``d`` with different bodies get
        different keys — the key is content-addressed."""
        from repro import check_function, parse_function

        other = check_function(
            parse_function(
                "int d(seq[en] s, index[s] i) = "
                "if i == 0 then 0 else d(i-1) + 1"
            ),
            {"en": ENGLISH.chars},
        )
        schedule = Schedule(("i",), (1,))
        full = Schedule(("i", "j"), (1, 1))
        assert kernel_cache_key(
            other, schedule, "direct", "auto"
        ) != kernel_cache_key(edit_func, full, "direct", "auto")


class TestLRUKernelCache:
    def test_bounded_with_lru_eviction(self):
        cache = LRUKernelCache(capacity=2)
        cache.store("a", 1)
        cache.store("b", 2)
        assert cache.lookup("a") == 1  # refreshes a
        cache.store("c", 3)  # evicts b (the LRU)
        assert cache.lookup("b") is None
        assert cache.lookup("a") == 1
        assert cache.lookup("c") == 3
        info = cache.cache_info()
        assert info.evictions == 1
        assert info.currsize == 2
        assert info.maxsize == 2

    def test_counters(self):
        cache = LRUKernelCache(capacity=4)
        assert cache.lookup("missing") is None
        cache.store("k", "v")
        assert cache.lookup("k") == "v"
        info = cache.cache_info()
        assert (info.hits, info.misses) == (1, 1)

    def test_mapping_compatibility(self):
        cache = LRUKernelCache(capacity=4)
        cache.store("k", "v")
        assert "k" in cache
        assert cache["k"] == "v"
        assert cache.values() == ["v"]
        assert len(cache) == 1

    def test_rejects_silly_capacity(self):
        with pytest.raises(ValueError):
            LRUKernelCache(capacity=0)


class TestEngineCacheIntegration:
    def test_engine_cache_is_bounded(self, edit_func):
        engine = Engine(cache_capacity=1)
        engine.run(edit_func, ARGS)
        assert engine.cache_info().maxsize == 1
        assert engine.cache_info().currsize == 1

    def test_cache_info_counts_runs(self, edit_func):
        engine = Engine()
        engine.run(edit_func, ARGS)
        engine.run(edit_func, ARGS)
        info = engine.cache_info()
        assert info.misses == 1
        assert info.hits >= 1
        assert engine.cache_hits == info.hits
        assert engine.cache_misses == info.misses


class TestPersistentKernelCache:
    def test_round_trip_product_still_runs(self, tmp_path, edit_func):
        engine = Engine(
            kernel_cache=PersistentKernelCache(str(tmp_path))
        )
        first = engine.run(edit_func, ARGS)
        compiled = engine._cache.values()[0]
        restored = decode_compiled(encode_compiled(compiled))
        assert restored.source == compiled.source
        assert restored.kernel.schedule == compiled.kernel.schedule
        # The re-exec'd callable computes the same table.
        domain = engine.domain_of(
            edit_func, __import__("repro").Bindings(dict(ARGS))
        )
        ctx = engine.build_context(
            restored, __import__("repro").Bindings(dict(ARGS)), domain
        )
        table = engine._table_for(restored.kernel, domain)
        restored.run(table, ctx)
        assert table[6, 7] == first.value == 3

    def test_cold_process_warm_disk_compiles_nothing(
        self, tmp_path, edit_func
    ):
        """The acceptance criterion: a fresh engine + fresh cache
        instance over a warm directory performs zero compilations."""
        warm = Engine(kernel_cache=PersistentKernelCache(str(tmp_path)))
        expected = warm.run(edit_func, ARGS).value
        assert warm.cache_info().disk_stores == 1

        cold = Engine(kernel_cache=PersistentKernelCache(str(tmp_path)))
        result = cold.run(edit_func, ARGS)
        assert result.value == expected
        info = cold.cache_info()
        assert cold.cache_misses == 0
        assert info.misses == 0
        assert info.disk_hits == 1

    def test_corrupt_entry_evicted_not_fatal(self, tmp_path, edit_func):
        warm = Engine(kernel_cache=PersistentKernelCache(str(tmp_path)))
        warm.run(edit_func, ARGS)
        (path,) = [
            tmp_path / name for name in record_names(tmp_path)
        ]
        path.write_bytes(b"\x00garbage\x00")

        cold = Engine(kernel_cache=PersistentKernelCache(str(tmp_path)))
        result = cold.run(edit_func, ARGS)
        assert result.value == 3  # recompiled, no crash
        info = cold.cache_info()
        assert info.corrupt_evictions == 1
        assert info.misses == 1
        # The bad file was replaced by a fresh store.
        assert cold.cache_info().disk_stores == 1

    def test_truncated_pickle_evicted(self, tmp_path, edit_func):
        warm = Engine(kernel_cache=PersistentKernelCache(str(tmp_path)))
        warm.run(edit_func, ARGS)
        (name,) = record_names(tmp_path)
        path = tmp_path / name
        path.write_bytes(path.read_bytes()[:50])
        cold = Engine(kernel_cache=PersistentKernelCache(str(tmp_path)))
        assert cold.run(edit_func, ARGS).value == 3
        assert cold.cache_info().corrupt_evictions == 1

    def test_atomic_writes_leave_no_temp_files(
        self, tmp_path, edit_func
    ):
        engine = Engine(
            kernel_cache=PersistentKernelCache(str(tmp_path))
        )
        engine.run(edit_func, ARGS)
        names = [
            name
            for name in os.listdir(tmp_path)
            if name != ".lock"
            and name != PersistentKernelCache.QUARANTINE
        ]
        assert all(name.endswith(".kpkl") for name in names)
        assert not any(name.startswith(".tmp-") for name in names)

    def test_disk_capacity_prunes_oldest(self, tmp_path):
        cache = PersistentKernelCache(str(tmp_path), disk_capacity=2)
        from repro import check_function, parse_function

        engine = Engine(kernel_cache=cache)
        for extra in (0, 1, 2):
            func = check_function(
                parse_function(
                    f"int f(seq[en] s, index[s] i) = "
                    f"if i == 0 then {extra} else f(i-1) + 1"
                ),
                {"en": ENGLISH.chars},
            )
            engine.run(func, {"s": Sequence("abc", ENGLISH)})
        assert len(cache.disk_keys()) == 2

    def test_shared_across_engines(self, tmp_path, edit_func):
        cache = PersistentKernelCache(str(tmp_path))
        a = Engine(kernel_cache=cache)
        b = Engine(kernel_cache=cache)
        a.run(edit_func, ARGS)
        b.run(edit_func, ARGS)
        assert a.cache_misses == 1
        assert b.cache_misses == 0  # compiled by a, hit for b


class Tripwire:
    """Records whether it was ever reconstructed by ``pickle.loads``."""

    unpickled = False

    @staticmethod
    def _mark():
        Tripwire.unpickled = True
        return Tripwire()

    def __reduce__(self):
        return (Tripwire._mark, ())


class TestFormatGuard:
    """The on-disk schema guard: stale entries are rejected *before*
    their pickle payload is ever deserialised."""

    def test_records_carry_magic_header(self, edit_func):
        from repro.service.cache import MAGIC

        engine = Engine()
        engine.run(edit_func, ARGS)
        compiled = engine._cache.values()[0]
        data = encode_compiled(compiled)
        assert data.startswith(MAGIC)
        assert str(__import__("repro").service.cache.KEY_FORMAT) in (
            MAGIC.decode()
        )

    def test_empty_shared_object_refused_at_encode(
        self, edit_func, tmp_path
    ):
        """A torn build artifact (zero bytes on disk) must never be
        immortalised as a native-so record — and a store hitting one
        degrades to memory-only instead of failing the compile."""
        engine = Engine()
        engine.run(edit_func, ARGS)
        compiled = engine._cache.values()[0]
        torn = tmp_path / "torn.so"
        torn.write_bytes(b"")
        compiled = type(compiled)(
            compiled.kernel, compiled.run, compiled.source,
            compiled.compile_seconds, backend="native",
            so_path=str(torn),
        )
        with pytest.raises(ValueError, match="empty shared object"):
            encode_compiled(compiled)
        cache = PersistentKernelCache(str(tmp_path / "cache"))
        cache.store("torn-key", compiled)  # must not raise
        assert cache.lookup("torn-key") is compiled  # memory tier intact
        assert "torn-key" not in cache.disk_keys()

    def test_headerless_record_rejected_without_unpickling(self):
        """A v1-era record (bare pickle, no magic) must be refused
        before pickle.loads ever runs on it."""
        Tripwire.unpickled = False
        stale = pickle.dumps(
            {"format": 1, "payload": Tripwire(), "source": ""}
        )
        assert pickle.loads(stale) and Tripwire.unpickled  # trap armed
        Tripwire.unpickled = False
        with pytest.raises(ValueError, match="header"):
            decode_compiled(stale)
        assert Tripwire.unpickled is False

    def test_old_schema_file_evicted_on_load(self, tmp_path, edit_func):
        warm = Engine(kernel_cache=PersistentKernelCache(str(tmp_path)))
        warm.run(edit_func, ARGS)
        (name,) = record_names(tmp_path)
        path = tmp_path / name
        # Rewrite the entry as an older schema would have: same pickle
        # payload, previous version in the header.
        data = path.read_bytes()
        from repro.service.cache import MAGIC

        path.write_bytes(
            b"repro-kernel-cache:1\n" + data[len(MAGIC):]
        )
        cold = Engine(kernel_cache=PersistentKernelCache(str(tmp_path)))
        assert cold.run(edit_func, ARGS).value == 3  # recompiled
        info = cold.cache_info()
        assert info.corrupt_evictions == 1
        assert info.disk_stores == 1  # replaced with a fresh record

    def test_backend_survives_round_trip(self, edit_func):
        engine = Engine(backend="vector")
        engine.run(edit_func, ARGS)
        compiled = engine._cache.values()[0]
        restored = decode_compiled(encode_compiled(compiled))
        assert restored.backend == compiled.backend == "vector"


class TestBackendBreakdown:
    def test_cache_info_counts_entries_per_backend(self, edit_func):
        cache = LRUKernelCache(capacity=8)
        vector = Engine(backend="vector", kernel_cache=cache)
        vector.run(edit_func, ARGS)
        scalar = Engine(backend="scalar", kernel_cache=cache)
        scalar.run(edit_func, ARGS)
        info = cache.cache_info()
        assert dict(info.backends) == {"scalar": 1, "vector": 1}

    def test_empty_cache_reports_no_backends(self):
        assert LRUKernelCache().cache_info().backends == ()

    def test_breakdown_tracks_eviction(self, edit_func):
        cache = LRUKernelCache(capacity=1)
        vector = Engine(backend="vector", kernel_cache=cache)
        vector.run(edit_func, ARGS)
        scalar = Engine(backend="scalar", kernel_cache=cache)
        scalar.run(edit_func, ARGS)  # evicts the vector entry
        info = cache.cache_info()
        assert dict(info.backends) == {"scalar": 1}


class TestAutotuneRecords:
    """The v4 record kind: persisted autotune winners."""

    def _record(self):
        from repro.service.cache import ScheduleRecord

        return ScheduleRecord(
            Schedule(("i", "j"), (1, 2)),
            meta={"default": [1, 1], "predicted_cycles": 123.0},
        )

    def test_encode_decode_round_trip(self):
        from repro.service.cache import ScheduleRecord

        record = self._record()
        restored = decode_compiled(encode_compiled(record))
        assert isinstance(restored, ScheduleRecord)
        assert restored.schedule == record.schedule
        assert restored.meta == record.meta
        assert restored.record_kind == "autotune-schedule"
        assert restored.backend == "autotune"

    def test_persists_through_disk_tier(self, tmp_path):
        from repro.service.cache import ScheduleRecord

        warm = PersistentKernelCache(str(tmp_path))
        warm.store("autotune-key", self._record())
        assert "autotune-key" in warm.disk_keys()
        cold = PersistentKernelCache(str(tmp_path))
        restored = cold.lookup("autotune-key")
        assert isinstance(restored, ScheduleRecord)
        assert restored.schedule == Schedule(("i", "j"), (1, 2))

    def test_corrupt_schedule_payload_quarantined(self, tmp_path):
        cache = PersistentKernelCache(str(tmp_path))
        cache.store("autotune-key", self._record())
        (name,) = record_names(tmp_path)
        path = tmp_path / name
        from repro.service.cache import MAGIC

        body = {
            "format": __import__("repro").service.cache.KEY_FORMAT,
            "kind": "autotune-schedule",
            "schedule": {"dims": ["i"]},  # missing coefficients
            "meta": {},
        }
        path.write_bytes(MAGIC + pickle.dumps(body))
        cold = PersistentKernelCache(str(tmp_path))
        assert cold.lookup("autotune-key") is None
        assert cold.cache_info().corrupt_evictions == 1

    def test_domain_bucket_powers_of_two(self):
        from repro.service.cache import domain_bucket

        assert domain_bucket((1, 1)) == (1, 1)
        assert domain_bucket((2, 3)) == (2, 4)
        assert domain_bucket((64, 65)) == (64, 128)
        assert domain_bucket((2305,)) == (4096,)
        assert domain_bucket(()) == ()

    def test_autotune_key_components_differentiate(self, edit_func):
        from repro.service.cache import autotune_cache_key

        base = autotune_cache_key(
            edit_func, "direct", 10, "gpu", (64, 64)
        )
        assert base == autotune_cache_key(
            edit_func, "direct", 10, "gpu", (64, 64)
        )
        assert len(base) == 64
        assert base != autotune_cache_key(
            edit_func, "logspace", 10, "gpu", (64, 64)
        )
        assert base != autotune_cache_key(
            edit_func, "direct", 4, "gpu", (64, 64)
        )
        assert base != autotune_cache_key(
            edit_func, "direct", 10, "other", (64, 64)
        )
        assert base != autotune_cache_key(
            edit_func, "direct", 10, "gpu", (64, 128)
        )

    def test_key_is_content_addressed(self, edit_func):
        """Re-parsing the same source yields the same key; a
        different body under the same name yields a different one."""
        from repro import check_function, parse_function
        from repro.service.cache import autotune_cache_key
        from tests.service.conftest import EDIT_FUNC_SRC

        twin = check_function(
            parse_function(EDIT_FUNC_SRC), {"en": ENGLISH.chars}
        )
        other = check_function(
            parse_function(
                "int d(seq[en] s, index[s] i) = "
                "if i == 0 then 0 else d(i-1) + 1"
            ),
            {"en": ENGLISH.chars},
        )
        key = autotune_cache_key(edit_func, "direct", 10, "gpu", (64,))
        assert key == autotune_cache_key(
            twin, "direct", 10, "gpu", (64,)
        )
        assert key != autotune_cache_key(
            other, "direct", 10, "gpu", (64,)
        )

    def test_engine_reuses_persisted_winner(self, tmp_path, edit_func):
        """Warm directory, cold process: the search runs exactly
        once across engine lifetimes."""
        cold = Engine(
            schedule="autotune",
            kernel_cache=PersistentKernelCache(str(tmp_path)),
        )
        expected = cold.run(edit_func, ARGS).value
        assert expected == 3
        assert cold.autotune_searches == 1
        info = cold.cache_info()
        assert info.autotune_searches == 1
        assert info.autotune_hits == 0

        warm = Engine(
            schedule="autotune",
            kernel_cache=PersistentKernelCache(str(tmp_path)),
        )
        assert warm.run(edit_func, ARGS).value == expected
        assert warm.autotune_searches == 0
        assert warm.cache_info().autotune_hits == 1

    def test_in_process_memo(self, edit_func):
        engine = Engine(schedule="autotune")
        engine.run(edit_func, ARGS)
        engine.run(edit_func, ARGS)
        assert engine.autotune_searches == 1
        assert engine.autotune_hits >= 1

    def test_min_partition_engine_never_searches(self, edit_func):
        engine = Engine()
        engine.run(edit_func, ARGS)
        info = engine.cache_info()
        assert engine.autotune_searches == 0
        assert info.autotune_searches == 0
        assert info.autotune_hits == 0

    def test_unknown_schedule_mode_rejected(self):
        with pytest.raises(ValueError, match="schedule mode"):
            Engine(schedule="fastest")
