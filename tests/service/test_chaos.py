"""Chaos suite: the service under seeded fault injection.

The ISSUE's acceptance scenario: with 5% launch failures and 1% cell
corruption injected, a seeded run of single and map submissions
completes with results bitwise-identical to fault-free execution,
replaying only failed partition ranges; deterministic DSL errors are
never retried.
"""

import queue as _queue
import threading

import pytest

from repro.lang.errors import DslError, RuntimeDslError
from repro.resilience import (
    ExecutionSupervisor,
    FaultPlan,
    LaunchFault,
    SupervisionPolicy,
)
from repro.runtime.engine import Engine
from repro.service.batcher import Batch
from repro.service.programs import ProgramRegistry
from repro.service.queue import Job, JobState
from repro.service.server import ComputeService, chaos_plan_from_env
from repro.service.stats import StatsRegistry
from repro.service.workers import WorkerPool, classify_failure

from .conftest import EDIT_PROGRAM

CHAOS_PLAN = FaultPlan(
    seed=20120611,  # PLDI'12
    launch_fail_rate=0.05,
    corrupt_rate=0.01,
    corrupt_mode="bitflip",
)

WORDS = ["kitten", "mitten", "sitting", "bitten", "written", "kit"]


class TestClassifyFailure:
    def test_dsl_errors_are_permanent(self):
        from repro.gpu.executor import RaceError
        from repro.lang.errors import BackendDivergenceError

        assert classify_failure(RuntimeDslError("bad")) == "permanent"
        assert classify_failure(RaceError("race")) == "permanent"
        assert (
            classify_failure(BackendDivergenceError("diverged"))
            == "permanent"
        )

    def test_device_faults_are_device(self):
        from repro.resilience.faults import (
            CellCorruption,
            FaultEscalation,
            KernelHang,
            TransferFault,
        )

        for cls in (LaunchFault, TransferFault, KernelHang,
                    CellCorruption, FaultEscalation):
            assert classify_failure(cls("boom")) == "device"

    def test_environment_errors_are_transient(self):
        assert classify_failure(OSError("io")) == "transient"
        assert classify_failure(MemoryError()) == "transient"
        assert classify_failure(TimeoutError()) == "transient"

    def test_unknown_errors_fail_fast(self):
        assert classify_failure(ValueError("?")) == "permanent"
        assert classify_failure(KeyError("?")) == "permanent"


def make_pool(stats, registry, **overrides):
    options = dict(workers=1, backoff_seconds=0.001)
    options.update(overrides)
    return WorkerPool(
        _queue.Queue(), Engine, registry, stats, **options
    )


def edit_batch(registry, words, **job_overrides):
    program = registry.register(EDIT_PROGRAM)
    jobs = []
    for word in words:
        bindings, at, initial = program.bind(
            "d", {"s": word, "t": "sitting"}
        )
        jobs.append(
            Job(
                program_sha=program.sha,
                function="d",
                bindings=bindings,
                at=at,
                initial=initial,
                **job_overrides,
            )
        )
    return Batch(jobs[0].group_key, jobs)


class BrokenDeviceEngine(Engine):
    """An engine whose device never completes a map_run."""

    def __init__(self):
        super().__init__()
        self.attempts = 0

    def map_run(self, *args, **kwargs):
        self.attempts += 1
        raise LaunchFault("device on fire")


class TestDemotion:
    def test_repeated_device_faults_demote_to_reference(self):
        stats, registry = StatsRegistry(), ProgramRegistry()
        pool = make_pool(stats, registry, demote_after=3)
        engine = BrokenDeviceEngine()
        batch = edit_batch(
            registry, ["kitten", "mitten"], retries_left=10
        )
        pool.execute_batch(engine, batch)
        values = [j.handle.result(timeout=5) for j in batch.jobs]
        assert values == [3, 3]  # correct despite a dead device
        assert engine.attempts == 3  # demote_after rounds, then stop
        snapshot = stats.snapshot()
        assert snapshot.demotions == 2
        assert snapshot.device_faults == 3
        assert snapshot.completed == 2
        assert snapshot.failed == 0

    def test_budget_exhaustion_demotes_instead_of_failing(self):
        stats, registry = StatsRegistry(), ProgramRegistry()
        pool = make_pool(stats, registry, demote_after=100)
        engine = BrokenDeviceEngine()
        batch = edit_batch(registry, ["kitten"], retries_left=0)
        pool.execute_batch(engine, batch)
        assert batch.jobs[0].handle.result(timeout=5) == 3
        assert stats.snapshot().demotions == 1
        assert stats.snapshot().failed == 0

    def test_dsl_error_still_fails_fast(self):
        """A RaceError-style DslError from a chaotic engine is never
        retried and never demoted: the input/compiler is at fault."""
        stats, registry = StatsRegistry(), ProgramRegistry()
        pool = make_pool(stats, registry)

        class BuggyEngine(Engine):
            attempts = 0

            def map_run(self, *args, **kwargs):
                BuggyEngine.attempts += 1
                raise RuntimeDslError("deterministic bug")

        batch = edit_batch(registry, ["kitten"], retries_left=10)
        pool.execute_batch(BuggyEngine(), batch)
        assert BuggyEngine.attempts == 1
        assert batch.jobs[0].handle.state is JobState.FAILED
        assert stats.snapshot().retries == 0
        assert stats.snapshot().demotions == 0


class TestChaosService:
    def test_seeded_chaos_matches_fault_free(self):
        """Single and map-style submissions under 5% launch failure +
        1% corruption complete identical to fault-free execution."""
        fault_free = {}
        with ComputeService(
            workers=2, batch_window=0.01
        ) as service:
            for word in WORDS:
                fault_free[word] = service.submit(
                    EDIT_PROGRAM, "d", {"s": word, "t": "sitting"}
                ).result(timeout=30)

        with ComputeService(
            workers=2,
            batch_window=0.05,  # wide window => coalesced map runs
            fault_plan=CHAOS_PLAN,
            supervision=SupervisionPolicy(checkpoint_interval=4),
        ) as service:
            handles = {}
            barrier = threading.Barrier(len(WORDS) + 1)

            def submit(word):
                barrier.wait()
                handles[word] = service.submit(
                    EDIT_PROGRAM, "d", {"s": word, "t": "sitting"}
                )

            threads = [
                threading.Thread(target=submit, args=(w,))
                for w in WORDS
            ]
            for thread in threads:
                thread.start()
            barrier.wait()
            for thread in threads:
                thread.join()
            chaotic = {
                word: handle.result(timeout=60)
                for word, handle in handles.items()
            }
            stats = service.stats()
        assert chaotic == fault_free
        assert stats.failed == 0
        assert stats.batches >= 1

    def test_chaos_is_deterministic_across_services(self):
        values = []
        for _ in range(2):
            with ComputeService(
                workers=1, batch_window=0.001, fault_plan=CHAOS_PLAN
            ) as service:
                values.append([
                    service.submit(
                        EDIT_PROGRAM, "d",
                        {"s": w, "t": "sitting"},
                    ).result(timeout=30)
                    for w in WORDS
                ])
        assert values[0] == values[1]

    def test_dsl_errors_fail_fast_under_chaos(self):
        with ComputeService(
            workers=1, batch_window=0.001, fault_plan=CHAOS_PLAN
        ) as service:
            with pytest.raises(DslError):
                service.submit("int f( = broken", "f")
            stats = service.stats()
        assert stats.retries == 0


class TestChaosEnv:
    def test_plan_from_env(self):
        plan = chaos_plan_from_env({
            "REPRO_CHAOS_RATE": "0.05",
            "REPRO_CHAOS_CORRUPT": "0.01",
            "REPRO_CHAOS_SEED": "99",
        })
        assert plan is not None
        assert plan.launch_fail_rate == 0.05
        assert plan.truncate_rate == 0.05
        assert plan.corrupt_rate == 0.01
        assert plan.seed == 99
        assert plan.corrupt_mode == "bitflip"

    def test_no_env_means_no_plan(self):
        assert chaos_plan_from_env({}) is None
        assert chaos_plan_from_env({"REPRO_CHAOS_RATE": "0"}) is None

    def test_service_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_RATE", "0.05")
        monkeypatch.setenv("REPRO_CHAOS_SEED", "7")
        with ComputeService(workers=1, batch_window=0.001) as service:
            assert service.fault_plan is not None
            assert service.fault_plan.seed == 7
            engine = service.pool.engine_factory()
            assert isinstance(engine, ExecutionSupervisor)
            handle = service.submit(
                EDIT_PROGRAM, "d", {"s": "kitten", "t": "sitting"}
            )
            assert handle.result(timeout=30) == 3
