"""Service-tier fault tolerance: deadlines, shedding, drain, backoff.

Request deadlines propagate from the HTTP layer (JSON field or
``X-Repro-Timeout`` header) through queue wait into execution; jobs
whose budget is eaten before any launch are *shed* (504 with
``shed: true``, counted separately from timeouts); a full queue sheds
load with 503 + ``Retry-After``; ``/healthz`` and ``/readyz`` split
liveness from readiness; SIGTERM drains gracefully.
"""

import http.client
import json
import os
import signal
import subprocess
import sys
import textwrap
import threading
import time

import pytest

from repro.service.queue import DeadlineError, JobTimeoutError
from repro.service.server import (
    ComputeService,
    make_http_server,
    serve_in_thread,
    submit_remote,
)
from repro.service.workers import backoff_delay

from .conftest import EDIT_PROGRAM


def http_get(host, port, path):
    connection = http.client.HTTPConnection(host, port, timeout=10)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        payload = json.loads(response.read().decode("utf-8"))
        return response.status, dict(response.headers), payload
    finally:
        connection.close()


def http_post(host, port, path, payload, headers=None):
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        body = json.dumps(payload).encode("utf-8")
        connection.request(
            "POST", path, body=body,
            headers={"Content-Type": "application/json",
                     **(headers or {})},
        )
        response = connection.getresponse()
        reply = json.loads(response.read().decode("utf-8"))
        return response.status, dict(response.headers), reply
    finally:
        connection.close()


@pytest.fixture
def http_service():
    service = ComputeService(workers=1, batch_window=0.005)
    server = make_http_server(service, "127.0.0.1", 0)
    serve_in_thread(server)
    host, port = server.server_address[:2]
    yield host, port, service
    server.shutdown()
    server.server_close()
    service.shutdown()


class TestHealthEndpoints:
    def test_healthz_always_ok(self, http_service):
        host, port, _ = http_service
        status, _, payload = http_get(host, port, "/healthz")
        assert status == 200 and payload["ok"] is True

    def test_readyz_ok_then_503_when_draining(self, http_service):
        host, port, service = http_service
        status, _, payload = http_get(host, port, "/readyz")
        assert status == 200 and payload["ok"] is True
        service.begin_drain()
        status, headers, payload = http_get(host, port, "/readyz")
        assert status == 503
        assert payload["ok"] is False
        assert headers["Retry-After"] == "1"
        # Liveness stays green while draining: kill -9 now would lose
        # in-flight work.
        status, _, _ = http_get(host, port, "/healthz")
        assert status == 200

    def test_draining_service_rejects_submissions(self, http_service):
        host, port, service = http_service
        service.begin_drain()
        status, headers, reply = http_post(
            host, port, "/submit",
            {"program": EDIT_PROGRAM, "function": "d",
             "args": {"s": "kitten", "t": "sitting"}},
        )
        assert status == 503
        assert reply["rejected"] is True
        assert headers["Retry-After"] == "1"


class TestDeadlinePropagation:
    def test_header_timeout_used_when_body_has_none(
        self, http_service
    ):
        host, port, _ = http_service
        status, _, reply = http_post(
            host, port, "/submit",
            {"program": EDIT_PROGRAM, "function": "d",
             "args": {"s": "kitten", "t": "sitting"}},
            headers={"X-Repro-Timeout": "30"},
        )
        assert status == 200
        assert reply["value"] == 3

    def test_bad_header_timeout_is_400(self, http_service):
        host, port, _ = http_service
        status, _, reply = http_post(
            host, port, "/submit",
            {"program": EDIT_PROGRAM, "function": "d",
             "args": {"s": "kitten", "t": "sitting"}},
            headers={"X-Repro-Timeout": "soon"},
        )
        assert status == 400
        assert "X-Repro-Timeout" in reply["error"]

    def test_expired_deadline_is_504_shed(self, http_service):
        host, port, service = http_service
        # A microscopic budget: queue + batch window alone eat it, so
        # the job is shed at dequeue — never launched.
        status, _, reply = http_post(
            host, port, "/submit",
            {"program": EDIT_PROGRAM, "function": "d",
             "args": {"s": "kitten", "t": "sitting"},
             "timeout": 0.0005},
        )
        assert status == 504
        assert reply["timed_out"] is True
        assert reply["shed"] is True
        stats = service.stats()
        assert stats.shed >= 1
        assert stats.failed == 0  # declined work is not failed work

    def test_deadline_error_is_a_job_timeout(self):
        assert issubclass(DeadlineError, JobTimeoutError)


class TestQueueFullShedding:
    def test_admission_rejection_carries_retry_after(self):
        service = ComputeService(
            workers=1, queue_capacity=1, batch_window=5.0,
        )
        server = make_http_server(service, "127.0.0.1", 0)
        serve_in_thread(server)
        host, port = server.server_address[:2]
        try:
            # Saturate: the batcher waits out a 5 s window, so the
            # single queue slot stays occupied.
            statuses = []
            threads = []

            def submit():
                status, headers, reply = http_post(
                    host, port, "/submit",
                    {"program": EDIT_PROGRAM, "function": "d",
                     "args": {"s": "kitten", "t": "sitting"},
                     "timeout": 1.0},
                )
                statuses.append((status, headers, reply))

            for _ in range(6):
                thread = threading.Thread(target=submit)
                thread.start()
                threads.append(thread)
            for thread in threads:
                thread.join(timeout=30)
            rejected = [s for s in statuses if s[0] == 503]
            assert rejected, [s[0] for s in statuses]
            status, headers, reply = rejected[0]
            assert headers["Retry-After"] == "1"
            assert reply["rejected"] is True
        finally:
            server.shutdown()
            server.server_close()
            service.shutdown(drain=False)


class TestGracefulSigterm:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        """A real OS-level SIGTERM: the serve process stops accepting,
        finishes in-flight work, prints final stats, exits cleanly."""
        script = textwrap.dedent(
            """
            import sys, threading
            from repro.service.server import (
                ComputeService, install_signal_handlers,
                make_http_server,
            )
            service = ComputeService(workers=1)
            server = make_http_server(service, "127.0.0.1", 0)
            install_signal_handlers(server, service)
            print(server.server_address[1], flush=True)
            server.serve_forever()
            print("drained", flush=True)
            """
        )
        env = dict(os.environ)
        src_root = os.path.join(
            os.path.dirname(
                os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
            ),
            "src",
        )
        env["PYTHONPATH"] = (
            src_root + os.pathsep + env.get("PYTHONPATH", "")
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
        )
        try:
            port = int(proc.stdout.readline())
            reply = submit_remote(
                "127.0.0.1", port, EDIT_PROGRAM, "d",
                args={"s": "kitten", "t": "sitting"},
            )
            assert reply["value"] == 3
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=30)
            assert proc.returncode == 0
            assert b"drained" in out
            assert b"service stats" in err  # final snapshot flushed
            assert b"completed=1" in err
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()


class TestBackoffDelay:
    def test_deterministic_for_token_and_round(self):
        a = backoff_delay(0.05, 2, 1.0, "sha:func")
        b = backoff_delay(0.05, 2, 1.0, "sha:func")
        assert a == b

    def test_jitter_separates_tokens(self):
        delays = {
            backoff_delay(0.05, 1, 10.0, f"batch-{i}")
            for i in range(16)
        }
        assert len(delays) == 16  # no thundering herd

    def test_exponential_growth_with_cap(self):
        base = backoff_delay(0.05, 0, 100.0, "t")
        doubled = backoff_delay(0.05, 1, 100.0, "t")
        assert 0.025 <= base < 0.075  # 0.05 * [0.5, 1.5)
        assert doubled > base
        assert backoff_delay(0.05, 30, 1.0, "t") == 1.0  # capped

    def test_jitter_window_is_half_to_three_halves(self):
        for round_index in range(6):
            delay = backoff_delay(1.0, round_index, 1e9, "w")
            assert 0.5 * 2**round_index <= delay < 1.5 * 2**round_index
