"""Multi-process kernel cache: locking, quarantine, crash recovery.

The acceptance scenario: two concurrent OS processes sharing one
cache directory both complete a warm-start round trip with zero
corrupt-eviction races — plus the crash-recovery sweep that makes a
shared directory safe to reopen after a writer died mid-store.
"""

import os
import subprocess
import sys
import time

import pytest

from repro import Engine, Sequence, check_function, parse_function
from repro.runtime import ENGLISH
from repro.service.cache import MAGIC, PersistentKernelCache
from repro.service.locking import FileLock, LockTimeout

SRC_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(Engine.__init__.__code__.co_filename)))
)

EDIT_FUNC_SRC = """
int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1
""".strip()

#: What each racing child runs: same function, same shared cache
#: directory, so both processes compile + store the same digest.
CHILD_SCRIPT = """
import sys
from repro import Engine, Sequence, check_function, parse_function
from repro.runtime import ENGLISH
from repro.service.cache import PersistentKernelCache

func = check_function(
    parse_function({src!r}), {{"en": ENGLISH.chars}}
)
cache = PersistentKernelCache(sys.argv[1])
engine = Engine(kernel_cache=cache)
for _ in range(3):
    result = engine.run(
        func,
        {{"s": Sequence("kitten", ENGLISH),
          "t": Sequence("sitting", ENGLISH)}},
    )
    assert result.value == 3, result.value
info = cache.cache_info()
assert info.corrupt_evictions == 0, info
print(result.value)
"""


def edit_func():
    return check_function(
        parse_function(EDIT_FUNC_SRC), {"en": ENGLISH.chars}
    )


def run_children(cache_dir, count=2):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_ROOT + os.pathsep + env.get("PYTHONPATH", "")
    script = CHILD_SCRIPT.format(src=EDIT_FUNC_SRC)
    children = [
        subprocess.Popen(
            [sys.executable, "-c", script, str(cache_dir)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
        )
        for _ in range(count)
    ]
    outcomes = []
    for child in children:
        out, err = child.communicate(timeout=120)
        outcomes.append((child.returncode, out, err))
    return outcomes


class TestTwoProcessRace:
    def test_concurrent_writers_share_one_directory(self, tmp_path):
        """Two processes compile-and-store the same kernel into the
        same directory simultaneously: both succeed, and a cold
        reader afterwards warm-starts with zero corrupt evictions."""
        outcomes = run_children(tmp_path, count=2)
        for code, out, err in outcomes:
            assert code == 0, err.decode()
            assert out.strip() == b"3"
        # The directory holds exactly one record per digest — the
        # concurrent stores serialised on the file lock instead of
        # colliding.
        cold = PersistentKernelCache(str(tmp_path))
        assert len(cold.disk_keys()) >= 1
        engine = Engine(kernel_cache=cold)
        result = engine.run(
            edit_func(),
            {"s": Sequence("kitten", ENGLISH),
             "t": Sequence("sitting", ENGLISH)},
        )
        assert result.value == 3
        info = cold.cache_info()
        assert info.corrupt_evictions == 0
        assert info.disk_hits >= 1  # warm start, no recompilation


class TestRecoverySweep:
    def warm_cache(self, tmp_path):
        warm = Engine(
            kernel_cache=PersistentKernelCache(str(tmp_path))
        )
        warm.run(
            edit_func(),
            {"s": Sequence("kitten", ENGLISH),
             "t": Sequence("sitting", ENGLISH)},
        )

    def test_torn_record_quarantined_not_deleted(self, tmp_path):
        self.warm_cache(tmp_path)
        (key,) = PersistentKernelCache(str(tmp_path)).disk_keys()
        record = tmp_path / (key + PersistentKernelCache.SUFFIX)
        record.write_bytes(b"\x00torn write, no magic")
        cache = PersistentKernelCache(str(tmp_path))
        # Swept at construction: quarantined for post-mortem, counted.
        assert cache.cache_info().corrupt_evictions == 1
        assert cache.disk_keys() == ()
        quarantine = tmp_path / PersistentKernelCache.QUARANTINE
        (moved,) = os.listdir(quarantine)
        assert moved.startswith(key + PersistentKernelCache.SUFFIX)
        # And the next run recompiles cleanly into the same directory.
        engine = Engine(kernel_cache=cache)
        assert engine.run(
            edit_func(),
            {"s": Sequence("kitten", ENGLISH),
             "t": Sequence("sitting", ENGLISH)},
        ).value == 3

    def test_stale_tmp_files_swept_young_ones_kept(self, tmp_path):
        stale = tmp_path / ".tmp-dead-writer.kpkl"
        stale.write_bytes(b"partial")
        old = time.time() - 2 * PersistentKernelCache.STALE_TMP_SECONDS
        os.utime(stale, (old, old))
        young = tmp_path / ".tmp-live-writer.kpkl"
        young.write_bytes(b"in flight")
        PersistentKernelCache(str(tmp_path))
        assert not stale.exists()  # crashed writer's leftover
        assert young.exists()  # may be a live sibling's write

    def test_valid_records_survive_the_sweep(self, tmp_path):
        self.warm_cache(tmp_path)
        cache = PersistentKernelCache(str(tmp_path))
        assert cache.cache_info().corrupt_evictions == 0
        assert len(cache.disk_keys()) == 1


class TestFileLock:
    def test_exclusive_across_check(self, tmp_path):
        path = str(tmp_path / "x.lock")
        with FileLock(path):
            other = FileLock(path, timeout=0.1)
            if other.supported:
                with pytest.raises(LockTimeout):
                    with other:
                        pass

    def test_reentrant_use_after_release(self, tmp_path):
        lock = FileLock(str(tmp_path / "x.lock"))
        for _ in range(3):
            with lock:
                pass

    def test_magic_header_is_versioned(self):
        assert MAGIC.startswith(b"repro-kernel-cache:")
