"""The persistent cache's native tier: embedded .so round trips.

Cold start compiles with ``cc`` and stores the shared object's bytes
(sha256-stamped) inside the cache record; a warm process re-verifies
the digest, materialises the artifact and ``dlopen``s it — without
ever invoking a compiler. A record whose digest disagrees with its
bytes is refused before ``dlopen`` and counted as a corrupt eviction.
"""

import hashlib
import os
import pickle

import numpy as np
import pytest

from repro import Engine, Sequence
from repro.runtime import ENGLISH
from repro.runtime import native
from repro.runtime.values import Bindings
from repro.service.cache import (
    MAGIC,
    PersistentKernelCache,
    decode_compiled,
    encode_compiled,
)
from repro.service.server import ComputeService

from .conftest import EDIT_PROGRAM

pytestmark = pytest.mark.skipif(
    not native.available().ok,
    reason="no working C compiler in this environment",
)

ARGS = {"s": Sequence("kitten", ENGLISH), "t": Sequence("sitting", ENGLISH)}


def native_compiled(edit_func, cache=None):
    engine = Engine(backend="native", kernel_cache=cache)
    bound = Bindings(dict(ARGS))
    domain = engine.domain_of(edit_func, bound)
    schedule = engine.schedule_for(edit_func, domain)
    compiled = engine.compile(edit_func, schedule, domain)
    return engine, compiled, bound, domain, schedule


class TestRecordFormat:
    def test_native_record_embeds_so(self, edit_func):
        _engine, compiled, *_ = native_compiled(edit_func)
        assert compiled.backend == "native"
        data = encode_compiled(compiled)
        record = pickle.loads(data[len(MAGIC):])
        assert record["kind"] == "native-so"
        with open(compiled.so_path, "rb") as handle:
            so_bytes = handle.read()
        assert record["so"] == so_bytes
        assert (
            record["so_sha256"] == hashlib.sha256(so_bytes).hexdigest()
        )

    def test_decode_materialises_and_runs(self, edit_func, tmp_path):
        engine, compiled, bound, domain, schedule = native_compiled(
            edit_func
        )
        data = encode_compiled(compiled)
        clone = decode_compiled(data, so_dir=str(tmp_path))
        assert clone.backend == "native"
        assert os.path.dirname(clone.so_path) == str(tmp_path)
        ctx = engine.build_context(compiled, bound, domain)
        expected = engine._table_for(compiled.kernel, domain)
        actual = expected.copy()
        lo = schedule.min_partition(domain)
        hi = schedule.max_partition(domain)
        compiled.run(expected, ctx, part_lo=lo, part_hi=hi)
        clone.run(actual, ctx, part_lo=lo, part_hi=hi)
        assert actual.tobytes() == expected.tobytes()

    def test_digest_mismatch_refused_before_dlopen(
        self, edit_func, tmp_path
    ):
        _engine, compiled, *_ = native_compiled(edit_func)
        data = encode_compiled(compiled)
        record = pickle.loads(data[len(MAGIC):])
        so = bytearray(record["so"])
        so[100] ^= 0xFF  # one flipped bit in the machine code
        record["so"] = bytes(so)
        tampered = MAGIC + pickle.dumps(record)
        with pytest.raises(ValueError) as err:
            decode_compiled(tampered, so_dir=str(tmp_path))
        assert "digest mismatch" in str(err.value)
        # Nothing was written for dlopen to find.
        assert not any(
            name.endswith(".so") for name in os.listdir(tmp_path)
        )


class TestPersistentTier:
    def test_cold_then_warm(self, edit_func, tmp_path):
        cold_cache = PersistentKernelCache(str(tmp_path))
        native_compiled(edit_func, cache=cold_cache)
        info = cold_cache.cache_info()
        assert info.misses == 1
        assert info.disk_stores == 1

        warm_cache = PersistentKernelCache(str(tmp_path))
        _engine, compiled, *_ = native_compiled(
            edit_func, cache=warm_cache
        )
        info = warm_cache.cache_info()
        assert info.misses == 0
        assert info.disk_hits == 1
        assert info.backends == (("native", 1),)
        assert compiled.backend == "native"

    def test_warm_start_needs_no_compiler(self, edit_func, tmp_path,
                                          monkeypatch):
        """The whole point of embedding the .so: a warm process on the
        same platform runs natively even if cc has vanished."""
        cold_cache = PersistentKernelCache(str(tmp_path))
        engine, compiled, bound, domain, schedule = native_compiled(
            edit_func, cache=cold_cache
        )
        value_ctx = engine.build_context(compiled, bound, domain)
        expected = engine._table_for(compiled.kernel, domain)
        compiled.run(
            expected, value_ctx,
            part_lo=schedule.min_partition(domain),
            part_hi=schedule.max_partition(domain),
        )

        monkeypatch.setenv("REPRO_CC", "/nonexistent/cc-missing")
        native.reset_toolchain_cache()
        try:
            assert not native.available().ok
            warm_cache = PersistentKernelCache(str(tmp_path))
            key = warm_cache.disk_keys()[0]
            clone = warm_cache.lookup(key)
            assert clone is not None and clone.backend == "native"
            actual = expected.copy()
            actual[:] = 0
            actual[0, :] = expected[0, :]
            actual[:, 0] = expected[:, 0]
            clone.run(
                actual, value_ctx,
                part_lo=schedule.min_partition(domain),
                part_hi=schedule.max_partition(domain),
            )
            assert actual.tobytes() == expected.tobytes()
        finally:
            native.reset_toolchain_cache()

    def test_corrupt_record_evicted_and_recompiled(
        self, edit_func, tmp_path
    ):
        cold_cache = PersistentKernelCache(str(tmp_path))
        native_compiled(edit_func, cache=cold_cache)
        (path,) = [
            os.path.join(str(tmp_path), name)
            for name in os.listdir(tmp_path)
            if name.endswith(cold_cache.SUFFIX)
        ]
        with open(path, "r+b") as handle:
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            handle.truncate(size // 2)

        damaged = PersistentKernelCache(str(tmp_path))
        _engine, compiled, *_ = native_compiled(
            edit_func, cache=damaged
        )
        info = damaged.cache_info()
        assert info.corrupt_evictions == 1
        assert info.misses == 1
        assert compiled.backend == "native"  # recompiled, not crashed


class TestServiceRoundTrip:
    def test_native_service_warm_start(self, tmp_path):
        cache_dir = str(tmp_path / "kernels")
        with ComputeService(
            workers=1, batch_window=0.001,
            cache_dir=cache_dir, backend="native",
        ) as service:
            handle = service.submit(
                EDIT_PROGRAM, "d", {"s": "kitten", "t": "sitting"}
            )
            assert handle.result(timeout=30) == 3
            cold = service.kernel_cache.cache_info()
            assert cold.disk_stores >= 1
            assert ("native", 1) in cold.backends

        with ComputeService(
            workers=1, batch_window=0.001,
            cache_dir=cache_dir, backend="native",
        ) as service:
            handle = service.submit(
                EDIT_PROGRAM, "d", {"s": "sunday", "t": "saturday"}
            )
            assert handle.result(timeout=30) == 3
            warm = service.kernel_cache.cache_info()
            assert warm.disk_hits >= 1
            assert warm.misses == 0
