"""Service-side program registry and argument binding."""

import pytest

from repro.lang.errors import DslError, RuntimeDslError
from repro.runtime.values import Sequence
from repro.service.programs import ProgramRegistry, ServiceProgram

from .conftest import EDIT_PROGRAM, FORWARD_PROGRAM


class TestServiceProgram:
    def test_checks_and_exposes_functions(self):
        program = ServiceProgram(EDIT_PROGRAM)
        assert program.function("d").name == "d"
        assert len(program.sha) == 64

    def test_rejects_imperative_statements(self):
        with pytest.raises(RuntimeDslError, match="declaration-only"):
            ServiceProgram(EDIT_PROGRAM + '\nprint d("ab", 2, "b", 1)\n')

    def test_rejects_bad_programs(self):
        with pytest.raises(DslError):
            ServiceProgram("int f(seq[nope] s, index[s] i) = 0")

    def test_let_constants_available(self):
        program = ServiceProgram(
            EDIT_PROGRAM + "\nlet target = \"sitting\"\n"
        )
        bindings, _, _ = program.bind(
            "d", {"s": "kitten", "t": {"ref": "target"}}
        )
        assert str(bindings["t"].text) == "sitting"


class TestBinding:
    def test_strings_coerce_to_sequences(self):
        program = ServiceProgram(EDIT_PROGRAM)
        bindings, at, initial = program.bind(
            "d", {"s": "kitten", "t": "sitting"}
        )
        assert isinstance(bindings["s"], Sequence)
        assert at == {} and initial == {}

    def test_recursive_args_become_coordinates(self):
        program = ServiceProgram(EDIT_PROGRAM)
        _, at, _ = program.bind(
            "d", {"s": "kitten", "t": "sitting", "i": 3, "j": 4}
        )
        assert at == {"i": 3, "j": 4}

    def test_hmm_param_autobinds_by_name(self):
        program = ServiceProgram(FORWARD_PROGRAM)
        bindings, _, _ = program.bind("fw", {"x": "acgt"})
        assert "h" in bindings  # the declared model, bound implicitly

    def test_unknown_parameter_rejected(self):
        program = ServiceProgram(EDIT_PROGRAM)
        with pytest.raises(RuntimeDslError, match="no parameter"):
            program.bind("d", {"s": "a", "t": "b", "zz": 1})

    def test_missing_calling_parameter_rejected(self):
        program = ServiceProgram(EDIT_PROGRAM)
        with pytest.raises(RuntimeDslError, match="missing value"):
            program.bind("d", {"s": "kitten"})

    def test_bad_ref_rejected(self):
        program = ServiceProgram(EDIT_PROGRAM)
        with pytest.raises(RuntimeDslError, match="no declared global"):
            program.bind(
                "d", {"s": "a", "t": {"ref": "nothing"}}
            )

    def test_uncovered_string_rejected(self):
        program = ServiceProgram(EDIT_PROGRAM)
        with pytest.raises(RuntimeDslError, match="alphabet"):
            program.bind("d", {"s": "kitten", "t": "UPPER!"})


class TestProgramRegistry:
    def test_checks_once_per_distinct_text(self):
        registry = ProgramRegistry()
        first = registry.register(EDIT_PROGRAM)
        second = registry.register(EDIT_PROGRAM)
        assert first is second
        assert len(registry) == 1

    def test_get_by_sha(self):
        registry = ProgramRegistry()
        program = registry.register(EDIT_PROGRAM)
        assert registry.get(program.sha) is program
        with pytest.raises(KeyError):
            registry.get("deadbeef")

    def test_distinct_texts_distinct_programs(self):
        registry = ProgramRegistry()
        a = registry.register(EDIT_PROGRAM)
        b = registry.register(FORWARD_PROGRAM)
        assert a is not b and len(registry) == 2
