"""Jobs, handles and the bounded admission queue."""

import threading

import pytest

from repro.service.queue import (
    AdmissionError,
    Job,
    JobQueue,
    JobState,
    JobTimeoutError,
)


def make_job(**overrides):
    fields = dict(
        program_sha="sha",
        function="d",
        bindings={},
        at={},
        initial={},
    )
    fields.update(overrides)
    return Job(**fields)


class TestJob:
    def test_ids_unique(self):
        assert make_job().job_id != make_job().job_id

    def test_group_key_groups_compatible_jobs(self):
        a = make_job(bindings={"s": "x"})
        b = make_job(bindings={"s": "y"})
        assert a.group_key == b.group_key

    def test_group_key_separates_functions_and_coords(self):
        base = make_job()
        assert make_job(function="g").group_key != base.group_key
        assert make_job(at={"i": 3}).group_key != base.group_key
        assert make_job(reduce="max").group_key != base.group_key
        assert (
            make_job(program_sha="other").group_key != base.group_key
        )

    def test_no_timeout_never_expires(self):
        assert not make_job().expired()

    def test_expired_after_deadline(self):
        job = make_job(timeout=0.0001)
        assert job.expired(now=job.submitted_at + 1.0)
        assert not job.expired(now=job.submitted_at)


class TestJobHandle:
    def test_resolve(self):
        job = make_job()
        job.handle.resolve(42, latency=0.5)
        assert job.handle.result() == 42
        assert job.handle.state is JobState.COMPLETED
        assert job.handle.latency_seconds == 0.5

    def test_reject_raises_on_result(self):
        job = make_job()
        job.handle.reject(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            job.handle.result()
        assert job.handle.state is JobState.FAILED

    def test_result_timeout(self):
        job = make_job()
        with pytest.raises(JobTimeoutError):
            job.handle.result(timeout=0.01)

    def test_wait_from_other_thread(self):
        job = make_job()
        threading.Timer(
            0.02, job.handle.resolve, args=(7, 0.02)
        ).start()
        assert job.handle.result(timeout=5.0) == 7


class TestJobQueue:
    def test_fifo(self):
        queue = JobQueue(capacity=4)
        first, second = make_job(), make_job()
        queue.submit(first)
        queue.submit(second)
        assert queue.pop() is first
        assert queue.pop() is second

    def test_admission_control_rejects_with_reason(self):
        queue = JobQueue(capacity=2)
        queue.submit(make_job())
        queue.submit(make_job())
        with pytest.raises(AdmissionError) as excinfo:
            queue.submit(make_job())
        assert "queue full" in excinfo.value.reason
        assert queue.depth() == 2

    def test_closed_queue_rejects(self):
        queue = JobQueue(capacity=2)
        queue.close()
        with pytest.raises(AdmissionError) as excinfo:
            queue.submit(make_job())
        assert "shutting down" in excinfo.value.reason

    def test_close_still_drains(self):
        queue = JobQueue(capacity=2)
        job = make_job()
        queue.submit(job)
        queue.close()
        assert queue.pop() is job

    def test_pop_times_out_empty(self):
        queue = JobQueue(capacity=2)
        assert queue.pop(timeout=0.01) is None

    def test_rejects_capacity_below_one(self):
        with pytest.raises(ValueError):
            JobQueue(capacity=0)
