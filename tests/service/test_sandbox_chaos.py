"""Sandbox chaos: the service survives real worker SIGKILLs.

The acceptance scenario of the crash-isolation tentpole: a forced
worker death (or hang) mid-launch never terminates the service
process — the worker is restarted, the kernel circuit-broken after
repeated crashes, and the recovered result is **bitwise-identical**
to the fault-free run via the demoted backend.
"""

import pytest

from repro import Engine, Sequence
from repro.resilience import ExecutionSupervisor, FaultPlan
from repro.runtime import ENGLISH, native, sandbox
from repro.service.server import (
    ComputeService,
    fetch_remote_stats,
    make_http_server,
    serve_in_thread,
    submit_remote,
)

from .conftest import EDIT_PROGRAM

needs_cc = pytest.mark.skipif(
    not native.available().ok,
    reason="no working C compiler in this environment",
)

WORDS = ["kitten", "mitten", "sitting", "bitten", "written", "kit"]

KILL_PLAN = FaultPlan(
    seed=20120611,
    worker_kill_rate=0.25,
    sandbox_hang_rate=0.05,
    hang_seconds=0.2,
)


@pytest.fixture
def sandboxed():
    sandbox.configure(True)
    sandbox.reset()
    yield
    sandbox.configure(None)
    sandbox.reset()


def expected_values(edit_func):
    engine = Engine(backend="scalar")
    return [
        engine.run(
            edit_func,
            {"s": Sequence(w, ENGLISH), "t": Sequence("sitting", ENGLISH)},
        ).value
        for w in WORDS
    ]


@needs_cc
class TestSupervisedSandboxChaos:
    def test_sigkill_mid_launch_recovers_bitwise(
        self, sandboxed, edit_func
    ):
        """Real SIGKILLs at a 25% launch rate: every answer matches
        fault-free scalar execution exactly."""
        expected = expected_values(edit_func)
        supervisor = ExecutionSupervisor(
            Engine(backend="native"), plan=KILL_PLAN
        )
        values = [
            supervisor.run(
                edit_func,
                {"s": Sequence(w, ENGLISH),
                 "t": Sequence("sitting", ENGLISH)},
            ).value
            for w in WORDS
        ]
        assert values == expected
        counts = sandbox.counters()
        assert counts["crashes"] + counts["hangs"] >= 1
        assert counts["restarts"] >= 1
        # The pool healed: every slot has a live worker again.
        assert counts["workers"] == sandbox.get_sandbox().size

    def test_breaker_opens_and_engine_demotes(
        self, sandboxed, edit_func
    ):
        """Every launch killed: after K crashes the breaker opens and
        the engine re-routes the kernel down the ladder — still
        producing the right answer."""
        expected = expected_values(edit_func)
        original = sandbox.SandboxedNativeRun.__call__

        def always_kill(self, T, ctx, **kwargs):
            kwargs["fault"] = {"kind": "kill"}
            return original(self, T, ctx, **kwargs)

        engine = Engine(backend="native")
        sandbox.SandboxedNativeRun.__call__ = always_kill
        try:
            values = [
                engine.run(
                    edit_func,
                    {"s": Sequence(w, ENGLISH),
                     "t": Sequence("sitting", ENGLISH)},
                ).value
                for w in WORDS
            ]
        finally:
            sandbox.SandboxedNativeRun.__call__ = original
        assert values == expected
        assert engine.native_demotions >= 1
        # The kernel was circuit-broken, so later runs skip native
        # entirely (no further crashes needed).
        assert sandbox.counters()["open_breakers"] >= 1
        crashes_before = sandbox.counters()["crashes"]
        assert engine.run(
            edit_func,
            {"s": Sequence("kitten", ENGLISH),
             "t": Sequence("sitting", ENGLISH)},
        ).value == expected[0]
        assert sandbox.counters()["crashes"] == crashes_before


@needs_cc
class TestServiceSandboxChaos:
    def test_http_service_survives_worker_kills(
        self, sandboxed, edit_func
    ):
        """End to end over HTTP: sandbox workers are SIGKILLed under
        the service yet every reply is 200 with the exact value, the
        process stays up, and the stats report the crashes."""
        expected = expected_values(edit_func)
        service = ComputeService(
            workers=1,
            backend="native",
            fault_plan=KILL_PLAN,
            sandbox_native=True,
        )
        server = make_http_server(service, "127.0.0.1", 0)
        serve_in_thread(server)
        host, port = server.server_address[:2]
        try:
            for word, want in zip(WORDS, expected):
                reply = submit_remote(
                    host, port, EDIT_PROGRAM, "d",
                    args={"s": word, "t": "sitting"},
                )
                assert reply["_status"] == 200, reply
                assert reply["value"] == want
            stats = fetch_remote_stats(host, port)
            assert stats["completed"] == len(WORDS)
            assert stats["failed"] == 0
            assert stats["worker_crashes"] >= 1
        finally:
            server.shutdown()
            server.server_close()
            service.shutdown(drain=True)
