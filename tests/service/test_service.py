"""End-to-end compute service: batching, determinism, HTTP, overload."""

import threading

import pytest

from repro import Engine, Sequence
from repro.lang.errors import DslError
from repro.runtime import ENGLISH
from repro.service.queue import AdmissionError
from repro.service.server import (
    ComputeService,
    fetch_remote_stats,
    make_http_server,
    serve_in_thread,
    submit_remote,
)

from .conftest import EDIT_PROGRAM, FORWARD_PROGRAM

WORDS = [
    "kitten", "mitten", "sitting", "sitten", "bitten", "written",
    "smitten", "knitting", "siting", "kit",
]


class TestComputeService:
    def test_single_submission(self):
        with ComputeService(workers=1, batch_window=0.001) as service:
            handle = service.submit(
                EDIT_PROGRAM, "d", {"s": "kitten", "t": "sitting"}
            )
            assert handle.result(timeout=30) == 3

    def test_hundred_concurrent_submissions_batch_and_match_serial(
        self, edit_func
    ):
        """The acceptance demo: >= 100 concurrent submissions complete
        with batched execution (mean batch size > 1) and results
        identical to serial ``Engine.run``."""
        problems = [(w, WORDS[(i + 1) % len(WORDS)])
                    for i, w in enumerate(WORDS * 10)]
        assert len(problems) >= 100

        engine = Engine()
        serial = [
            engine.run(
                edit_func,
                {"s": Sequence(s, ENGLISH), "t": Sequence(t, ENGLISH)},
            ).value
            for s, t in problems
        ]

        with ComputeService(
            workers=4, batch_window=0.05, max_batch=64
        ) as service:
            handles = [None] * len(problems)

            def submit(index, s, t):
                handles[index] = service.submit(
                    EDIT_PROGRAM, "d", {"s": s, "t": t}
                )

            threads = [
                threading.Thread(target=submit, args=(i, s, t))
                for i, (s, t) in enumerate(problems)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            values = [h.result(timeout=60) for h in handles]
            stats = service.stats()

        assert values == serial  # bitwise-identical results
        assert stats.completed == len(problems)
        assert stats.mean_batch_size > 1
        assert stats.batches < len(problems)
        assert stats.p95_latency_seconds >= stats.p50_latency_seconds

    def test_distinct_functions_share_service(self):
        from repro import run_script

        expected = run_script(
            FORWARD_PROGRAM + '\nprint fw(h, h.end, "acgt", 4)\n'
        ).last
        with ComputeService(workers=2, batch_window=0.01) as service:
            edit = service.submit(
                EDIT_PROGRAM, "d", {"s": "kitten", "t": "sitting"}
            )
            forward = service.submit(
                FORWARD_PROGRAM, "fw", {"x": "acgt"}
            )
            assert edit.result(timeout=30) == 3
            # Bitwise-identical to the script-runner's serial result.
            assert forward.result(timeout=30) == expected

    def test_bad_program_rejected_synchronously(self):
        with ComputeService(workers=1) as service:
            with pytest.raises(DslError):
                service.submit("int f(=", "f", {})
            assert service.stats().submitted == 0

    def test_overload_rejected_with_reason(self):
        service = ComputeService(
            workers=1, queue_capacity=1, batch_window=5.0
        )
        try:
            # Stall admission by never letting the batcher drain:
            # the window is 5 s, so submissions pile into the queue.
            service.submit(
                EDIT_PROGRAM, "d", {"s": "kitten", "t": "sitting"}
            )
            rejections = 0
            for _ in range(50):
                try:
                    service.submit(
                        EDIT_PROGRAM, "d",
                        {"s": "kitten", "t": "sitting"},
                    )
                except AdmissionError as err:
                    rejections += 1
                    assert "queue full" in err.reason
            assert rejections > 0
            assert service.stats().rejected == rejections
        finally:
            service.shutdown(drain=True, timeout=30)

    def test_shutdown_drains_admitted_jobs(self):
        service = ComputeService(workers=2, batch_window=0.2)
        handles = [
            service.submit(
                EDIT_PROGRAM, "d", {"s": w, "t": "sitting"}
            )
            for w in WORDS
        ]
        service.shutdown(drain=True, timeout=30)
        assert all(h.done() for h in handles)
        assert [h.result(timeout=1) for h in handles[:2]] == [3, 3]

    def test_submissions_after_shutdown_rejected(self):
        service = ComputeService(workers=1)
        service.shutdown()
        with pytest.raises(AdmissionError, match="shutting down"):
            service.submit(
                EDIT_PROGRAM, "d", {"s": "a", "t": "b"}
            )

    def test_persistent_cache_warm_across_services(self, tmp_path):
        with ComputeService(
            workers=1, cache_dir=str(tmp_path), batch_window=0.001
        ) as warm:
            warm.submit(
                EDIT_PROGRAM, "d", {"s": "kitten", "t": "sitting"}
            ).result(timeout=30)
            assert warm.stats().cache_misses == 1

        with ComputeService(
            workers=1, cache_dir=str(tmp_path), batch_window=0.001
        ) as cold:
            value = cold.submit(
                EDIT_PROGRAM, "d", {"s": "kitten", "t": "sitting"}
            ).result(timeout=30)
            stats = cold.stats()
        assert value == 3
        assert stats.cache_misses == 0
        assert stats.cache_disk_hits == 1


@pytest.fixture
def http_service():
    service = ComputeService(workers=2, batch_window=0.01)
    server = make_http_server(service, "127.0.0.1", 0)
    serve_in_thread(server)
    host, port = server.server_address[:2]
    yield host, port, service
    server.shutdown()
    service.shutdown()


class TestHttpFrontEnd:
    def test_submit_round_trip(self, http_service):
        host, port, _ = http_service
        reply = submit_remote(
            host, port, EDIT_PROGRAM, "d",
            args={"s": "kitten", "t": "sitting"},
        )
        assert reply["ok"] is True
        assert reply["value"] == 3
        assert reply["latency_seconds"] > 0
        assert reply["_status"] == 200

    def test_stats_endpoint(self, http_service):
        host, port, _ = http_service
        submit_remote(
            host, port, EDIT_PROGRAM, "d",
            args={"s": "kitten", "t": "sitting"},
        )
        stats = fetch_remote_stats(host, port)
        assert stats["_status"] == 200
        assert stats["completed"] >= 1
        assert 0.0 <= stats["cache_hit_rate"] <= 1.0

    def test_bad_program_is_400(self, http_service):
        host, port, _ = http_service
        reply = submit_remote(host, port, "int f(=", "f")
        assert reply["_status"] == 400
        assert reply["ok"] is False

    def test_bad_program_error_carries_caret_diagnostic(
        self, http_service
    ):
        """The error body is the rendered diagnostic (source line +
        caret), not just the bare message."""
        host, port, _ = http_service
        program = (
            'alphabet en = "ab"\n\n'
            "int f(seq[en] s, index[s] i) = if i == 0 then 0 "
            "else f(i-1) + notdefined\n"
        )
        reply = submit_remote(host, port, program, "f")
        assert reply["_status"] == 400
        error = reply["error"]
        assert "^" in error  # the caret line
        assert "<submit>:" in error  # file:line:column prefix
        assert "notdefined" in error  # the offending source line
        assert reply["message"] in error  # bare message still present

    def test_unknown_path_is_404(self, http_service):
        host, port, _ = http_service
        from repro.service.server import _http_json

        assert _http_json(host, port, "GET", "/nope")["_status"] == 404

    def test_concurrent_http_clients_batch(self, http_service):
        host, port, service = http_service
        replies = [None] * 24

        def call(index):
            replies[index] = submit_remote(
                host, port, EDIT_PROGRAM, "d",
                args={"s": WORDS[index % len(WORDS)], "t": "sitting"},
            )

        threads = [
            threading.Thread(target=call, args=(i,))
            for i in range(len(replies))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(r["ok"] for r in replies)
        assert service.stats().mean_batch_size > 1


class TestServiceCli:
    def test_submit_stats_against_live_server(
        self, http_service, capsys
    ):
        host, port, _ = http_service
        from repro.__main__ import main

        submit_remote(
            host, port, EDIT_PROGRAM, "d",
            args={"s": "kitten", "t": "sitting"},
        )
        assert main(
            ["submit", "--host", host, "--port", str(port), "--stats"]
        ) == 0
        out = capsys.readouterr().out
        assert "service stats" in out
        assert "mean_size" in out

    def test_submit_program_file(self, http_service, tmp_path, capsys):
        host, port, _ = http_service
        from repro.__main__ import main

        program = tmp_path / "edit.dsl"
        program.write_text(EDIT_PROGRAM)
        code = main(
            ["submit", "--host", host, "--port", str(port),
             "--program", str(program), "--function", "d",
             "--args", '{"s": "kitten", "t": "sitting"}',
             "--count", "3"]
        )
        assert code == 0
        assert capsys.readouterr().out.split() == ["3", "3", "3"]
