"""Worker-pool semantics: timeout, retry with backoff, failure kinds."""

import queue as _queue
import time

import pytest

from repro.lang.errors import RuntimeDslError
from repro.runtime.engine import Engine
from repro.service.batcher import Batch
from repro.service.programs import ProgramRegistry
from repro.service.queue import (
    DeadlineError,
    Job,
    JobState,
    JobTimeoutError,
)
from repro.service.stats import StatsRegistry
from repro.service.workers import WorkerPool

from .conftest import EDIT_PROGRAM


def make_pool(stats=None, registry=None, **overrides):
    if registry is None:
        registry = ProgramRegistry()
    options = dict(workers=1, backoff_seconds=0.001)
    options.update(overrides)
    return WorkerPool(
        _queue.Queue(),
        Engine,
        registry,
        stats or StatsRegistry(),
        **options,
    )


def edit_batch(registry, words, **job_overrides):
    program = registry.register(EDIT_PROGRAM)
    jobs = []
    for word in words:
        bindings, at, initial = program.bind(
            "d", {"s": word, "t": "sitting"}
        )
        jobs.append(
            Job(
                program_sha=program.sha,
                function="d",
                bindings=bindings,
                at=at,
                initial=initial,
                **job_overrides,
            )
        )
    return Batch(jobs[0].group_key, jobs)


class TestExecution:
    def test_batch_resolves_every_job(self):
        stats, registry = StatsRegistry(), ProgramRegistry()
        pool = make_pool(stats, registry)
        batch = edit_batch(registry, ["kitten", "sitting", "mitten"])
        pool.execute_batch(Engine(), batch)
        values = [j.handle.result(timeout=1) for j in batch.jobs]
        assert values == [3, 0, 3]
        snapshot = stats.snapshot()
        assert snapshot.completed == 3
        assert snapshot.batches == 1
        assert snapshot.max_batch_size == 3

    def test_matches_serial_engine_runs(self, edit_func):
        """Determinism: a batched run is bitwise-identical to
        independent Engine.run calls."""
        from repro import Sequence
        from repro.runtime import ENGLISH

        words = ["kitten", "mitten", "witty", "sit", "knitting"]
        serial = [
            Engine().run(
                edit_func,
                {"s": Sequence(w, ENGLISH),
                 "t": Sequence("sitting", ENGLISH)},
            ).value
            for w in words
        ]
        registry = ProgramRegistry()
        pool = make_pool(registry=registry)
        batch = edit_batch(registry, words)
        pool.execute_batch(Engine(), batch)
        batched = [j.handle.result(timeout=1) for j in batch.jobs]
        assert batched == serial

    def test_unknown_program_fails_jobs(self):
        stats = StatsRegistry()
        pool = make_pool(stats)
        job = Job(
            program_sha="missing", function="d",
            bindings={}, at={}, initial={},
        )
        pool.execute_batch(Engine(), Batch(job.group_key, [job]))
        assert job.handle.state is JobState.FAILED
        assert stats.snapshot().failed == 1


class TestTimeout:
    def test_expired_job_shed_without_running(self):
        # A deadline that expires before *any* launch attempt is a
        # shed (the service declined the work), not a timeout.
        stats, registry = StatsRegistry(), ProgramRegistry()
        pool = make_pool(stats, registry)
        batch = edit_batch(registry, ["kitten"], timeout=0.001)
        time.sleep(0.01)  # let the deadline pass while "queued"
        pool.execute_batch(Engine(), batch)
        job = batch.jobs[0]
        assert job.handle.state is JobState.TIMED_OUT
        with pytest.raises(DeadlineError):
            job.handle.result(timeout=1)
        snapshot = stats.snapshot()
        assert snapshot.shed == 1
        assert snapshot.timed_out == 0
        assert snapshot.batches == 0  # nothing was executed

    def test_live_jobs_survive_expired_neighbours(self):
        stats, registry = StatsRegistry(), ProgramRegistry()
        pool = make_pool(stats, registry)
        expired = edit_batch(registry, ["kitten"], timeout=0.001)
        healthy = edit_batch(registry, ["mitten"])
        batch = Batch(
            healthy.key, [expired.jobs[0], healthy.jobs[0]]
        )
        time.sleep(0.01)
        pool.execute_batch(Engine(), batch)
        assert expired.jobs[0].handle.state is JobState.TIMED_OUT
        assert healthy.jobs[0].handle.result(timeout=1) == 3


class FlakyEngine(Engine):
    """Fails ``map_run`` a fixed number of times, then delegates."""

    def __init__(self, failures: int, error=None) -> None:
        super().__init__()
        self.failures = failures
        self.error = error or OSError("transient backend glitch")
        self.attempts = 0

    def map_run(self, *args, **kwargs):
        self.attempts += 1
        if self.attempts <= self.failures:
            raise self.error
        return super().map_run(*args, **kwargs)


class TestRetry:
    def test_transient_failures_retry_with_backoff(self):
        stats, registry = StatsRegistry(), ProgramRegistry()
        pool = make_pool(stats, registry)
        engine = FlakyEngine(failures=2)
        batch = edit_batch(registry, ["kitten"], retries_left=3)
        pool.execute_batch(engine, batch)
        assert batch.jobs[0].handle.result(timeout=1) == 3
        assert engine.attempts == 3
        assert stats.snapshot().retries == 2

    def test_retry_budget_bounds_attempts(self):
        stats, registry = StatsRegistry(), ProgramRegistry()
        pool = make_pool(stats, registry)
        engine = FlakyEngine(failures=100)
        batch = edit_batch(registry, ["kitten"], retries_left=2)
        pool.execute_batch(engine, batch)
        job = batch.jobs[0]
        assert job.handle.state is JobState.FAILED
        with pytest.raises(OSError):
            job.handle.result(timeout=1)
        assert engine.attempts == 3  # initial + 2 retries
        assert stats.snapshot().failed == 1

    def test_dsl_errors_never_retry(self):
        stats, registry = StatsRegistry(), ProgramRegistry()
        pool = make_pool(stats, registry)
        engine = FlakyEngine(
            failures=100, error=RuntimeDslError("bad input")
        )
        batch = edit_batch(registry, ["kitten"], retries_left=5)
        pool.execute_batch(engine, batch)
        assert engine.attempts == 1  # permanent: no second attempt
        assert batch.jobs[0].handle.state is JobState.FAILED
        assert stats.snapshot().retries == 0


class TestLifecycle:
    def test_pool_drains_queue_then_stops(self):
        stats, registry = StatsRegistry(), ProgramRegistry()
        batches = _queue.Queue()
        pool = WorkerPool(
            batches, Engine, registry, stats, workers=2
        )
        pool.start()
        submitted = [
            edit_batch(registry, ["kitten", "mitten"])
            for _ in range(4)
        ]
        for batch in submitted:
            batches.put(batch)
        batches.join()
        pool.shutdown(timeout=5.0)
        assert stats.snapshot().completed == 8
        assert all(
            j.handle.done() for b in submitted for j in b.jobs
        )

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            make_pool(workers=0)
