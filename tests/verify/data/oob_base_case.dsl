alphabet en = "abcdefghijklmnopqrstuvwxyz"

int f(seq[en] s, index[s] i) =
  if i == 0 then f(i - 1)
  else f(i - 1) + 1
