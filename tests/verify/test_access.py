"""IR access/initialization analysis tests."""

import pytest

from repro.analysis.domain import Domain
from repro.lang.parser import parse_function
from repro.lang.typecheck import check_function
from repro.schedule.schedule import Schedule
from repro.verify import analyze_access

EN = {"en": "abcdefghijklmnopqrstuvwxyz"}


def func_of(src, alphabets=EN):
    return check_function(parse_function(src.strip()), alphabets)


def rules(diagnostics):
    return sorted(d.rule for d in diagnostics)


class TestOutOfBoundsTable:
    def test_unguarded_base_case_read(self):
        func = func_of("""
int f(seq[en] s, index[s] i) =
  if i == 0 then f(i - 1)
  else f(i - 1) + 1
""")
        domain = Domain(func.dim_names, (13,))
        found = analyze_access(func, domain)
        assert "A-OOB-TABLE" in rules(found)
        oob = [d for d in found if d.rule == "A-OOB-TABLE"][0]
        assert oob.severity == "error"
        assert oob.span is not None  # caret-renderable

    def test_guarded_read_is_clean(self):
        func = func_of("""
int f(seq[en] s, index[s] i) =
  if i == 0 then 0
  else f(i - 1) + 1
""")
        domain = Domain(func.dim_names, (13,))
        assert "A-OOB-TABLE" not in rules(analyze_access(func, domain))

    def test_two_dimensional_guards(self):
        func = func_of("""
int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1
""")
        domain = Domain(func.dim_names, (13, 13))
        errors = [
            d for d in analyze_access(func, domain)
            if d.severity == "error"
        ]
        assert errors == []

    def test_high_side_overflow(self):
        func = func_of("""
int f(seq[en] s, index[s] i) =
  if i == 0 then 0
  else f(i + 1)
""")
        domain = Domain(func.dim_names, (13,))
        assert "A-OOB-TABLE" in rules(analyze_access(func, domain))


class TestSequenceBounds:
    def test_unguarded_seq_read(self):
        # s[i] at i == |s| leaves the sequence (extent is |s| + 1).
        func = func_of("""
int f(seq[en] s, index[s] i) =
  if i == 0 then 0
  else if s[i] == 'a' then f(i - 1)
  else f(i - 1) + 1
""")
        domain = Domain(func.dim_names, (13,))
        assert "A-OOB-SEQ" in rules(analyze_access(func, domain))

    def test_shifted_seq_read_is_clean(self):
        func = func_of("""
int f(seq[en] s, index[s] i) =
  if i == 0 then 0
  else if s[i - 1] == 'a' then f(i - 1)
  else f(i - 1) + 1
""")
        domain = Domain(func.dim_names, (13,))
        assert "A-OOB-SEQ" not in rules(analyze_access(func, domain))


class TestReadBeforeWrite:
    def test_schedule_ordered_read_is_clean(self):
        func = func_of("""
int f(seq[en] s, index[s] i) =
  if i == 0 then 0
  else f(i - 1) + 1
""")
        domain = Domain(func.dim_names, (13,))
        good = Schedule(func.dim_names, (1,))
        found = analyze_access(func, domain, schedule=good)
        assert "A-RBW" not in rules(found)

    def test_backwards_schedule_read_is_flagged(self):
        func = func_of("""
int f(seq[en] s, index[s] i) =
  if i == 0 then 0
  else f(i - 1) + 1
""")
        domain = Domain(func.dim_names, (13,))
        bad = Schedule(func.dim_names, (-1,))
        found = analyze_access(func, domain, schedule=bad)
        assert "A-RBW" in rules(found)


class TestDeadArms:
    def test_unreachable_guard(self):
        # i > 20 can never hold in a box of extent 13.
        func = func_of("""
int f(seq[en] s, index[s] i) =
  if i == 0 then 0
  else if i > 20 then 999
  else f(i - 1) + 1
""")
        domain = Domain(func.dim_names, (13,))
        found = analyze_access(func, domain)
        dead = [d for d in found if d.rule == "A-DEAD-ARM"]
        assert dead and all(d.severity == "warning" for d in dead)

    def test_live_arms_not_flagged(self):
        func = func_of("""
int f(seq[en] s, index[s] i) =
  if i == 0 then 0
  else f(i - 1) + 1
""")
        domain = Domain(func.dim_names, (13,))
        assert "A-DEAD-ARM" not in rules(analyze_access(func, domain))


class TestUnusedParams:
    def test_unused_sequence_param(self):
        func = func_of("""
int f(seq[en] s, index[s] i, seq[en] unused) =
  if i == 0 then 0
  else f(i - 1) + 1
""")
        domain = Domain(func.dim_names, (13,))
        found = analyze_access(func, domain)
        unused = [d for d in found if d.rule == "A-UNUSED-PARAM"]
        assert len(unused) == 1
        assert "unused" in unused[0].message

    def test_structurally_used_seq_not_flagged(self):
        # `s` is only used through `index[s] i`, which is a use.
        func = func_of("""
int f(seq[en] s, index[s] i) =
  if i == 0 then 0
  else f(i - 1) + 1
""")
        domain = Domain(func.dim_names, (13,))
        assert "A-UNUSED-PARAM" not in rules(
            analyze_access(func, domain)
        )


class TestAppsAreClean:
    def test_paper_apps_have_no_errors(self):
        from repro.apps.hmm_algorithms import (
            backward_function,
            forward_function,
            viterbi_function,
        )
        from repro.apps.rna_folding import nussinov_function
        from repro.apps.smith_waterman import smith_waterman_function

        cases = [
            (forward_function(), (4, 13)),
            (viterbi_function(), (4, 13)),
            (backward_function(), (4, 13, 13)),
            (nussinov_function(), (13, 13)),
            (smith_waterman_function(), (13, 13)),
        ]
        for func, extents in cases:
            domain = Domain(func.dim_names, extents)
            errors = [
                d for d in analyze_access(func, domain)
                if d.severity == "error"
            ]
            assert errors == [], (
                f"{func.name}: "
                + "; ".join(d.message for d in errors)
            )
