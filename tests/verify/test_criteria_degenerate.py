"""Degenerate-box minimisation + non-uniform criterion tests (satellite).

``min_affine_over_box`` underpins both the solver's validity check and
the independent verifier; its behaviour on empty and single-point
boxes is load-bearing (an empty box means a vacuous criterion, which
must read as "satisfied", not as a crash or a spurious failure).
"""

import math

import pytest

from repro.analysis.affine import Affine
from repro.analysis.criteria import min_affine_over_box, schedule_criteria
from repro.analysis.domain import Domain
from repro.lang.errors import ScheduleError
from repro.lang.parser import parse_function
from repro.lang.typecheck import check_function

EN = {"en": "abcdefghijklmnopqrstuvwxyz"}
DNA = {"dna": "acgt"}

FORWARD = """
prob forward(hmm h, state[h] s, seq[*] x, index[x] i) =
  if i == 0 then (if s.isstart then 1.0 else 0.0)
  else (if s.isend then 1.0 else s.emission[x[i-1]])
    * sum(t in s.transitionsto : t.prob * forward(t.start, i - 1))
"""


class TestMinAffineOverBox:
    def test_corner_formula(self):
        affine = Affine.of({"i": 1, "j": -1})
        assert min_affine_over_box(affine, {"i": 5, "j": 5}) == -4.0

    def test_zero_extent_dimension_is_empty_box(self):
        affine = Affine.of({"i": 1})
        assert min_affine_over_box(affine, {"i": 0}) is None

    def test_zero_extent_only_matters_if_mentioned(self):
        # j has extent 0 but the function never mentions it.
        affine = Affine.of({"i": 1})
        assert min_affine_over_box(affine, {"i": 3, "j": 0}) == 0.0

    def test_single_point_dimension_pins_at_zero(self):
        affine = Affine.of({"i": 2}, const=3)
        assert min_affine_over_box(affine, {"i": 1}) == 3.0

    def test_constraint_mentioning_empty_dim_is_empty(self):
        affine = Affine.constant(7)
        constraint = Affine.of({"k": 1})  # k >= 0, extent 0
        assert (
            min_affine_over_box(affine, {"k": 0}, [constraint]) is None
        )

    def test_constrained_minimum(self):
        # min i subject to i - 3 >= 0 over i in 0..9.
        affine = Affine.of({"i": 1})
        constraint = Affine.of({"i": 1}, const=-3)
        assert (
            min_affine_over_box(affine, {"i": 10}, [constraint]) == 3.0
        )

    def test_infeasible_constraints_return_none(self):
        affine = Affine.of({"i": 1})
        constraint = Affine.of({"i": 1}, const=-100)
        assert (
            min_affine_over_box(affine, {"i": 10}, [constraint]) is None
        )

    def test_constant_function_with_constant_constraints(self):
        affine = Affine.constant(5)
        ok = Affine.constant(0)
        bad = Affine.constant(-1)
        assert min_affine_over_box(affine, {}, [ok]) == 5.0
        assert min_affine_over_box(affine, {}, [bad]) is None


class TestNonUniformCriteria:
    def nussinov_criteria(self):
        from repro.apps.rna_folding import nussinov_function

        func = nussinov_function()
        return func, schedule_criteria(func)

    def test_ranged_criterion_requires_extents(self):
        func, criteria = self.nussinov_criteria()
        ranged = [c for c in criteria if c.descent.binders]
        assert ranged
        with pytest.raises(ScheduleError):
            ranged[0].is_satisfied({"i": -1, "j": 1})

    def test_ranged_criterion_with_extents(self):
        func, criteria = self.nussinov_criteria()
        extents = {"i": 13, "j": 13}
        assert all(
            c.is_satisfied({"i": -1, "j": 1}, extents)
            for c in criteria
        )
        assert not all(
            c.is_satisfied({"i": 1, "j": 1}, extents)
            for c in criteria
        )

    def test_empty_box_makes_ranged_criterion_vacuous(self):
        func, criteria = self.nussinov_criteria()
        ranged = [c for c in criteria if c.descent.binders][0]
        assert ranged.min_delta(
            {"i": -1, "j": 1}, {"i": 0, "j": 0}
        ) == math.inf

    def test_single_point_box_empties_the_binder_range(self):
        # At i == j == 0 the range i+1 .. j-1 is 1 .. -1: empty, so
        # the split dependence never fires.
        func, criteria = self.nussinov_criteria()
        ranged = [c for c in criteria if c.descent.binders][0]
        assert ranged.min_delta(
            {"i": -1, "j": 1}, {"i": 1, "j": 1}
        ) == math.inf

    def test_free_descent_needs_extents_only_when_weighted(self):
        func = check_function(
            parse_function(FORWARD.strip()), DNA
        )
        criteria = schedule_criteria(func)
        free = [
            c for c in criteria
            if any(comp.is_free for comp in c.descent.components)
        ]
        assert free
        crit = free[0]
        # a_s = 0 silences the free component: no extents needed.
        assert crit.is_satisfied({"s": 0, "i": 1})
        # a_s != 0 needs the box...
        with pytest.raises(ScheduleError):
            crit.is_satisfied({"s": 1, "i": 1})
        # ...and the worst case -|a_s|*(N_s - 1) then loses.
        assert not crit.is_satisfied(
            {"s": 1, "i": 1}, {"s": 4, "i": 13}
        )
        # A single-state model has no free slack at all.
        assert crit.is_satisfied({"s": 1, "i": 1}, {"s": 1, "i": 13})
