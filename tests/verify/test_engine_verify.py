"""Engine verify hook + service admission control tests."""

import pytest

from repro.analysis.domain import Domain
from repro.lang.errors import VerificationError
from repro.lang.parser import parse_function
from repro.lang.typecheck import check_function
from repro.runtime.engine import Engine
from repro.runtime.values import Alphabet, Sequence
from repro.schedule.schedule import Schedule

EN = {"en": "abcdefghijklmnopqrstuvwxyz"}
ALPHA = Alphabet("en", "abcdefghijklmnopqrstuvwxyz")

EDIT = """
int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1
"""

OOB_PROGRAM = """
alphabet en = "abcdefghijklmnopqrstuvwxyz"

int f(seq[en] s, index[s] i) =
  if i == 0 then f(i - 1)
  else f(i - 1) + 1
"""


@pytest.fixture(scope="module")
def edit_func():
    return check_function(parse_function(EDIT.strip()), EN)


def edit_args():
    return {
        "s": Sequence("kitten", ALPHA),
        "t": Sequence("sitting", ALPHA),
    }


class TestEngineVerifyHook:
    def test_default_mode_is_schedule(self):
        assert Engine().verify == "schedule"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            Engine(verify="everything")

    def test_good_run_increments_verified_counter(self, edit_func):
        engine = Engine()
        assert engine.run(edit_func, edit_args()).value == 3
        info = engine.cache_info()
        assert info.verified == 1
        assert info.verify_failures == 0

    def test_bad_schedule_raises_verification_error(self, edit_func):
        engine = Engine()
        domain = Domain(edit_func.dim_names, (7, 8))
        bad = Schedule(edit_func.dim_names, (1, -1))
        with pytest.raises(VerificationError) as exc:
            engine.verify_compiled(edit_func, bad, domain)
        assert "V-SCHED-DELTA" in str(exc.value)
        assert engine.cache_info().verify_failures == 1

    def test_bad_schedule_reaching_run_is_blocked(
        self, edit_func, monkeypatch
    ):
        """If a (hypothetically buggy) solver returned an invalid
        schedule, the verify hook stops it before execution."""
        engine = Engine()
        bad = Schedule(edit_func.dim_names, (1, -1))
        monkeypatch.setattr(
            engine, "schedule_for", lambda *a, **k: bad
        )
        with pytest.raises(VerificationError):
            engine.run(edit_func, edit_args())

    def test_verify_off_trusts_the_solver(self, edit_func, monkeypatch):
        engine = Engine(verify="off", backend="scalar")
        info = engine.cache_info()
        engine.run(edit_func, edit_args())
        assert engine.cache_info().verified == info.verified == 0

    def test_verdicts_are_memoised(self, edit_func):
        engine = Engine()
        for _ in range(3):
            engine.run(edit_func, edit_args())
        assert engine.cache_info().verified == 1

    def test_full_mode_catches_access_errors(self):
        func = check_function(
            parse_function(
                "int f(seq[en] s, index[s] i) =\n"
                "  if i == 0 then f(i - 1)\n"
                "  else f(i - 1) + 1"
            ),
            EN,
        )
        engine = Engine(verify="full")
        with pytest.raises(VerificationError) as exc:
            engine.run(func, {"s": Sequence("abc", ALPHA)})
        assert "A-OOB-TABLE" in str(exc.value)

    def test_schedule_mode_allows_access_bugs(self):
        """verify='schedule' proves ordering only — the OOB base case
        executes (the table read clamps nothing; scalar kernels guard
        it), matching the pre-verifier behaviour."""
        func = check_function(
            parse_function(
                "int f(seq[en] s, index[s] i) =\n"
                "  if i == 0 then 0\n"
                "  else f(i - 1) + 1"
            ),
            EN,
        )
        engine = Engine(verify="schedule")
        assert engine.run(func, {"s": Sequence("abc", ALPHA)}).value == 3

    def test_map_run_verifies_once_per_schedule(self, edit_func):
        engine = Engine()
        base = {"s": Sequence("kitten", ALPHA)}
        problems = [
            {"t": Sequence(text, ALPHA)}
            for text in ("sitting", "mitten", "kitty")
        ]
        result = engine.map_run(edit_func, base, problems)
        assert result.values == [3, 1, 2]
        assert engine.cache_info().verified >= 1


class TestServiceAdmission:
    def test_oob_program_rejected_at_submit(self):
        from repro.service.server import ComputeService

        service = ComputeService(workers=1)
        try:
            with pytest.raises(VerificationError) as exc:
                service.submit(OOB_PROGRAM, "f", args={"s": "abc"})
            assert "A-OOB-TABLE" in str(exc.value)
            assert "admission control" in str(exc.value)
        finally:
            service.shutdown()

    def test_good_program_still_served(self):
        from repro.service.server import ComputeService

        program = (
            'alphabet en = "abcdefghijklmnopqrstuvwxyz"\n' + EDIT
        )
        service = ComputeService(workers=1)
        try:
            handle = service.submit(
                program, "d", args={"s": "kitten", "t": "sitting"}
            )
            assert handle.result(timeout=30) == 3
        finally:
            service.shutdown()

    def test_http_rejection_is_400_with_diagnostics(self):
        import threading

        from repro.service.server import (
            ComputeService,
            make_http_server,
            submit_remote,
        )

        service = ComputeService(workers=1)
        server = make_http_server(service, "127.0.0.1", 0)
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        host, port = server.server_address[:2]
        try:
            reply = submit_remote(
                host, port, OOB_PROGRAM, "f", args={"s": "abc"}
            )
            assert reply["_status"] == 400
            assert reply["ok"] is False
            assert "A-OOB-TABLE" in reply["error"]
        finally:
            server.shutdown()
            service.shutdown()
