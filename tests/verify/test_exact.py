"""Tests for the verifier's independent exact-minimisation core."""

import pytest

from repro.analysis.affine import Affine
from repro.verify.exact import (
    ENUMERATION_CAP,
    constrained_min,
    feasible,
    vertex_max,
    vertex_min,
)


def aff(const=0, **coeffs):
    return Affine.of(coeffs, const)


class TestVertexMinMax:
    def test_constant(self):
        assert vertex_min(aff(5), {}) == 5
        assert vertex_max(aff(5), {}) == 5

    def test_positive_coefficient(self):
        a = aff(0, i=2)
        assert vertex_min(a, {"i": 10}) == 0
        assert vertex_max(a, {"i": 10}) == 18

    def test_mixed_signs(self):
        a = aff(1, i=1, j=-1)
        assert vertex_min(a, {"i": 4, "j": 4}) == 1 - 3
        assert vertex_max(a, {"i": 4, "j": 4}) == 1 + 3

    def test_empty_box_is_none(self):
        assert vertex_min(aff(0, i=1), {"i": 0}) is None
        assert vertex_max(aff(0, i=1), {"i": 0}) is None

    def test_single_point_domain(self):
        a = aff(7, i=3)
        assert vertex_min(a, {"i": 1}) == 7
        assert vertex_max(a, {"i": 1}) == 7


class TestConstrainedMin:
    def test_unconstrained_matches_corner_formula(self):
        a = aff(2, i=-3, j=1)
        result = constrained_min(a, {"i": 5, "j": 5})
        assert result.exact
        assert result.value == a.min_over_box({"i": 5, "j": 5})

    def test_witness_attains_minimum(self):
        a = aff(0, i=1, j=-2)
        result = constrained_min(a, {"i": 6, "j": 6})
        assert result.witness is not None
        assert a.evaluate(result.witness) == result.value

    def test_simple_constraint(self):
        # min i subject to i - 3 >= 0 is 3.
        result = constrained_min(
            aff(0, i=1), {"i": 10}, [aff(-3, i=1)]
        )
        assert result.value == 3
        assert result.exact

    def test_infeasible_is_empty(self):
        # i >= 100 has no point in a box of extent 10.
        result = constrained_min(
            aff(0, i=1), {"i": 10}, [aff(-100, i=1)]
        )
        assert result.empty
        assert result.value is None

    def test_empty_box_is_empty(self):
        result = constrained_min(aff(0, i=1), {"i": 0})
        assert result.empty

    def test_coupled_constraint(self):
        # min i + j subject to i + j >= 5.
        result = constrained_min(
            aff(0, i=1, j=1), {"i": 10, "j": 10}, [aff(-5, i=1, j=1)]
        )
        assert result.value == 5

    def test_binder_with_var_bounds(self):
        # min k subject to k >= i + 1, over i in 0..4, k in 1..9.
        result = constrained_min(
            aff(0, k=1),
            {"i": 5},
            [aff(-1, k=1, i=-1)],
            var_bounds={"k": (1, 9)},
        )
        assert result.value == 1

    def test_lp_fallback_is_sound_lower_bound(self):
        # A domain too large to enumerate: the LP result must still
        # lower-bound the true integer minimum (here: min i, i >= 7).
        result = constrained_min(
            aff(0, i=1, j=0),
            {"i": 1000, "j": 1000},
            [aff(-7, i=1)],
            cap=10,
        )
        assert not result.exact
        assert result.value is not None
        assert result.value <= 7
        assert result.value >= 6  # highs is tight here

    def test_cap_boundary_stays_exact(self):
        extents = {"i": 10, "j": 10}
        result = constrained_min(
            aff(0, i=1, j=1), extents, [aff(-1, i=1)], cap=100
        )
        assert result.exact
        assert result.value == 1


class TestFeasible:
    def test_feasible_region_has_witness(self):
        result = feasible([aff(-2, i=1)], {"i": 10})
        assert not result.empty
        assert result.witness is not None
        assert result.witness["i"] >= 2

    def test_infeasible_region(self):
        assert feasible([aff(-20, i=1)], {"i": 10}).empty

    def test_zero_width_dim_in_constraint(self):
        # The constraint mentions a dimension with no points at all.
        assert feasible([aff(0, i=1)], {"i": 0}).empty
