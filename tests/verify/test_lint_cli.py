"""Lint pass + ``python -m repro lint`` CLI tests."""

from pathlib import Path

import pytest

from repro.__main__ import main
from repro.verify import lint_text

FIXTURES = Path(__file__).parent / "data"

GOOD = """
alphabet en = "abcdefghijklmnopqrstuvwxyz"

int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1
"""

OOB = (FIXTURES / "oob_base_case.dsl").read_text()


class TestLintText:
    def test_good_program_verifies(self):
        result = lint_text(GOOD, "good.dsl")
        assert not result.has_errors
        assert "d" in result.certificates
        assert result.certificates["d"].ok
        rules = [d.rule for d in result.report]
        assert "V-SCHED-CERT" in rules

    def test_oob_program_fails_with_caret(self):
        result = lint_text(OOB, "oob.dsl")
        assert result.has_errors
        rendered = result.render()
        assert "A-OOB-TABLE" in rendered
        assert "^" in rendered  # caret line against the source

    def test_parse_error_is_frontend_diagnostic(self):
        result = lint_text("int f(=", "broken.dsl")
        assert result.has_errors
        assert [d.rule for d in result.report] == ["V-FRONTEND"]

    def test_user_schedule_is_honoured(self):
        # An explicitly declared (valid) schedule becomes the
        # certificate's schedule.
        src = GOOD + "\nschedule d : i + j\n"
        result = lint_text(src, "sched.dsl")
        assert not result.has_errors
        assert str(result.certificates["d"].schedule) == "S = i + j"

    def test_invalid_user_schedule_is_error(self):
        src = GOOD + "\nschedule d : i - j\n"
        result = lint_text(src, "sched.dsl")
        assert result.has_errors
        assert any(
            d.rule == "V-NO-SCHEDULE" for d in result.report
        )

    def test_mutual_group_gets_info_not_error(self):
        from repro.apps.gotoh import ENGLISH, gotoh_source

        result = lint_text(gotoh_source(ENGLISH), "gotoh.dsl")
        assert not result.has_errors
        mutual = [d for d in result.report if d.rule == "V-MUTUAL"]
        assert len(mutual) == 3  # m, x and y
        assert all(d.severity == "info" for d in mutual)

    def test_nominal_extent_is_coupled(self):
        """`s[i-1]` under `i >= 1` must not warn: the sequence length
        and the index extent share the same nominal L."""
        result = lint_text(GOOD, "good.dsl", nominal_extent=5)
        assert not result.has_errors


class TestLintCli:
    def test_clean_script_exits_zero(self, tmp_path, capsys):
        script = tmp_path / "good.dsl"
        script.write_text(GOOD)
        assert main(["lint", str(script)]) == 0
        err = capsys.readouterr().err
        assert "0 error(s)" in err

    def test_oob_script_exits_nonzero_with_caret(self, capsys):
        code = main(["lint", str(FIXTURES / "oob_base_case.dsl")])
        assert code == 1
        captured = capsys.readouterr()
        assert "A-OOB-TABLE" in captured.err
        assert "^" in captured.err

    def test_strict_fails_on_warnings(self, tmp_path):
        script = tmp_path / "warn.dsl"
        script.write_text("""
alphabet en = "ab"

int f(seq[en] s, index[s] i, seq[en] unused) =
  if i == 0 then 0
  else f(i - 1) + 1
""")
        assert main(["lint", str(script)]) == 0
        assert main(["lint", "--strict", str(script)]) == 2

    def test_quiet_suppresses_info(self, tmp_path, capsys):
        script = tmp_path / "good.dsl"
        script.write_text(GOOD)
        main(["lint", "--quiet", str(script)])
        out = capsys.readouterr().out
        assert "V-SCHED-CERT" not in out

    def test_example_scripts_all_pass(self, capsys):
        root = Path(__file__).resolve().parents[2]
        scripts = sorted(
            (root / "examples" / "scripts").glob("*.dsl")
        )
        assert scripts
        for script in scripts:
            assert main(["lint", "--quiet", str(script)]) == 0, (
                f"{script.name} failed lint"
            )

    def test_list_rules_prints_registry(self, capsys):
        from repro.verify.diagnostics import RULES

        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("A-OOB-TABLE", "R-SPACE-RW", "R-PAR-CERT",
                     "V-SCHED-CERT"):
            assert rule in out
        # every registered rule appears, each on its own line
        lines = [line for line in out.splitlines() if line.strip()]
        assert len(lines) >= len(RULES)

    def test_list_rules_needs_no_script(self, capsys):
        # without the flag, a missing script is still an error
        with pytest.raises(SystemExit):
            main(["lint"])

    def test_lint_reports_parallel_certificate(self, tmp_path):
        script = tmp_path / "good.dsl"
        script.write_text(GOOD)
        from repro.verify import lint_text

        result = lint_text(GOOD, "good.dsl")
        assert "d" in result.parallelism
        cert = result.parallelism["d"]
        assert cert.ok
        assert "R-PAR-CERT" in [d.rule for d in result.report]


class TestExplainShowsVerification:
    def test_explain_prints_certificate(self, tmp_path, capsys):
        script = tmp_path / "good.dsl"
        script.write_text(GOOD)
        assert main(["explain", str(script)]) == 0
        out = capsys.readouterr().out
        assert "verification: schedule verified" in out
