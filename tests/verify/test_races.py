"""Static parallel-safety analyzer tests (races.py).

Covers the three proof obligations (space partition, batched problem
loop, §4.8 ring buffer), the mutation knobs that turn a proved-safe
kernel racy, and the end-to-end gate: ``emit_native_source`` must
refuse a pragma on any axis whose obligation the analyzer could not
discharge.
"""

import glob
import os
import subprocess
import tempfile

import pytest

from repro.ir import cbackend
from repro.ir.kernel import build_kernel
from repro.lang.parser import parse_function
from repro.lang.typecheck import check_function
from repro.runtime import native
from repro.schedule.schedule import Schedule
from repro.verify.races import (
    AxisVerdict,
    ParallelismCertificate,
    analyze_parallelism,
    parallelism_certificate,
)

EN = {"en": "abcdefghijklmnopqrstuvwxyz"}

EDIT = """
int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1
"""

have_cc = native.available().ok
needs_cc = pytest.mark.skipif(
    not have_cc, reason="no working C compiler in this environment"
)


def edit_kernel(coeffs=(1, 1)):
    func = check_function(parse_function(EDIT.strip()), EN)
    return build_kernel(
        func, Schedule(("i", "j"), coeffs),
        prob_mode="direct", compute_window=True,
    )


class TestConfirmed:
    def test_edit_distance_all_axes_confirmed(self):
        cert = parallelism_certificate(edit_kernel())
        assert cert.ok
        assert cert.space.status == "confirmed"
        assert cert.batch.status == "confirmed"
        assert cert.ring.status == "confirmed"
        assert cert.space.exact  # proved, not LP-bounded

    def test_certificate_is_memoised_per_extents(self):
        kernel = edit_kernel()
        assert parallelism_certificate(kernel) is (
            parallelism_certificate(kernel)
        )
        other = parallelism_certificate(kernel, (5, 7))
        assert other is not parallelism_certificate(kernel)
        assert other is parallelism_certificate(kernel, (5, 7))

    def test_clean_certificate_reports_single_info(self):
        cert = parallelism_certificate(edit_kernel())
        findings = cert.diagnostics()
        assert [d.rule for d in findings] == ["R-PAR-CERT"]
        assert findings[0].severity == "info"

    def test_to_dict_shape(self):
        record = parallelism_certificate(edit_kernel()).to_dict()
        assert record["ok"] is True
        assert set(record) == {
            "function", "schedule", "ok", "space", "batched", "ring",
        }
        assert record["space"]["status"] == "confirmed"


class TestPaperApps:
    """Acceptance: every example app's kernel earns a clean
    certificate on its parallelised axes."""

    @pytest.mark.parametrize(
        "path", sorted(glob.glob("examples/scripts/*.dsl"))
    )
    def test_app_axes_confirmed(self, path):
        import repro
        from repro.verify.lint import _nominal_domain

        checked = repro.check_program(
            repro.parse_program(open(path).read())
        )
        assert checked.functions
        for name, func in checked.functions.items():
            domain = _nominal_domain(func, 12)
            schedule = repro.find_schedule(func, domain)
            assert schedule is not None, name
            kernel = build_kernel(
                func, schedule, prob_mode="direct", compute_window=True,
            )
            cert = parallelism_certificate(kernel)
            assert cert.ok, f"{path}:{name}: {cert.summary}"
            assert cert.space.status == "confirmed"
            # the ring axis is allowed to be not-applicable (no
            # window geometry), never refused
            assert cert.ring.status != "refused"


class TestRegressionCorpus:
    """Every corpus kernel's parallelised axes stay CONFIRMED."""

    @pytest.mark.parametrize(
        "path", sorted(glob.glob("tests/corpus/*.dsl"))
    )
    def test_corpus_axes_confirmed(self, path):
        import repro
        from repro.lang.errors import DslError
        from repro.verify.lint import _nominal_domain

        checked = repro.check_program(
            repro.parse_program(open(path).read())
        )
        for name, func in checked.functions.items():
            try:
                domain = _nominal_domain(func, 12)
                schedule = repro.find_schedule(func, domain)
            except DslError:
                continue  # mutual group / no solver model: no pragma
            if schedule is None:
                continue
            kernel = build_kernel(
                func, schedule, prob_mode="direct", compute_window=True,
            )
            cert = parallelism_certificate(kernel)
            assert cert.ok, f"{path}:{name}: {cert.summary}"
            assert cert.space.status == "confirmed"


class TestMutations:
    """Each knob breaks exactly one obligation and names its rule."""

    def test_same_partition_collision_refused(self):
        # S = i puts (i, j) and (i, j') in one partition while the
        # body reads d(i, j-1): an intra-partition read of a cell
        # another thread may be writing.
        cert = parallelism_certificate(edit_kernel((1, 0)))
        assert not cert.ok
        assert cert.space.status == "refused"
        assert cert.space.rule == "R-SPACE-RW"
        assert cert.space.witness  # a concrete racing point
        assert "R-SPACE-RW" in [
            d.rule for d in cert.diagnostics()
        ]
        assert all(
            d.severity == "warning" for d in cert.diagnostics()
        )

    def test_overlapping_pad_extents_refused(self):
        cert = analyze_parallelism(
            edit_kernel(), pad_extents=(5, 13)
        )
        assert cert.batch.status == "refused"
        assert cert.batch.rule == "R-BATCH-OVERLAP"
        assert cert.batch.witness == {"i": 5}

    def test_shrunk_ring_refused(self):
        # Two rows for a look-back of two: antidiagonal t and t-2
        # alias the same ring row.
        cert = analyze_parallelism(edit_kernel(), ring_rows=2)
        assert cert.ring.status == "refused"
        assert cert.ring.rule == "R-RING-COLLIDE"
        assert cert.ring.witness == {"delta": 2}

    def test_non_injective_ring_column_refused(self):
        # window_col=0 leaves dim 1 unmapped under S = i: distinct
        # cells of one ring row would collide.
        cert = analyze_parallelism(
            edit_kernel((1, 0)), window_col=0
        )
        assert cert.ring.status == "refused"
        assert cert.ring.rule == "R-SPACE-WW"


class TestPragmaGating:
    def test_confirmed_certificate_admits_pragmas(self):
        src = cbackend.emit_native_source(edit_kernel(), openmp=True)
        assert src.count("#pragma omp") == 3
        assert "/* parallel-safety: space=confirmed" in src

    def test_serial_emission_is_unannotated(self):
        # openmp=False must stay byte-stable: no certificate is
        # computed, no comment or pragma appears.
        src = cbackend.emit_native_source(edit_kernel(), openmp=False)
        assert "#pragma omp" not in src
        assert "parallel-safety" not in src

    def test_refused_space_axis_strips_space_pragmas(self):
        racy = edit_kernel((1, 0))
        src = cbackend.emit_native_source(racy, openmp=True)
        # only the (still-confirmed) batched problem loop keeps its
        # pragma; both space loops degrade to serial
        assert src.count("#pragma omp") == 1
        assert "refused[R-SPACE-RW]" in src

    def test_refused_ring_axis_suppresses_windowed_entry(self):
        kernel = edit_kernel()
        cert = parallelism_certificate(kernel)
        doctored = ParallelismCertificate(
            function=cert.function,
            schedule=cert.schedule,
            extents=cert.extents,
            space=cert.space,
            batch=cert.batch,
            ring=AxisVerdict(
                "ring", "refused", "doctored", rule="R-RING-COLLIDE",
            ),
        )
        src = cbackend.emit_native_source(
            kernel, openmp=True, certificate=doctored
        )
        assert cbackend.entry_symbol(kernel, windowed=True) not in src

    @needs_cc
    def test_racy_kernel_still_builds_and_runs(self):
        # The gate degrades, never rejects: a racy schedule compiles
        # to a correct serial-space TU.
        racy = edit_kernel((1, 0))
        src = cbackend.emit_native_source(racy, openmp=True)
        with tempfile.TemporaryDirectory() as tmp:
            cpath = os.path.join(tmp, "racy.c")
            with open(cpath, "w") as f:
                f.write(src)
            out = os.path.join(tmp, "racy.so")
            subprocess.run(
                ["gcc", "-std=c99", "-O2", "-fPIC", "-shared",
                 "-fopenmp", "-o", out, cpath],
                check=True, capture_output=True,
            )


class TestWarningClean:
    """Emitted C compiles under ``-Wall -Wextra -Werror``."""

    @needs_cc
    @pytest.mark.parametrize(
        "path", sorted(glob.glob("examples/scripts/*.dsl"))
    )
    @pytest.mark.parametrize("openmp", [False, True])
    def test_app_translation_units_warning_free(self, path, openmp):
        import repro
        from repro.verify.lint import _nominal_domain

        checked = repro.check_program(
            repro.parse_program(open(path).read())
        )
        for name, func in checked.functions.items():
            domain = _nominal_domain(func, 12)
            schedule = repro.find_schedule(func, domain)
            kernel = build_kernel(
                func, schedule, prob_mode="direct", compute_window=True,
            )
            src = cbackend.emit_native_source(kernel, openmp=openmp)
            with tempfile.TemporaryDirectory() as tmp:
                cpath = os.path.join(tmp, "tu.c")
                with open(cpath, "w") as f:
                    f.write(src)
                cmd = [
                    "gcc", "-std=c99", "-O2", "-fPIC", "-shared",
                    "-Wall", "-Wextra", "-Werror",
                    "-o", os.devnull, cpath,
                ]
                if openmp:
                    cmd.insert(1, "-fopenmp")
                result = subprocess.run(
                    cmd, capture_output=True, text=True
                )
                assert result.returncode == 0, (
                    f"{path}:{name}\n{result.stderr}"
                )
