"""Runtime table-sanitizer tests (scalar twin + vector partition scan)."""

import numpy as np
import pytest

from repro.analysis.domain import Domain
from repro.ir.kernel import build_kernel
from repro.ir.pybackend import compile_kernel
from repro.lang.errors import SanitizerError
from repro.lang.parser import parse_function
from repro.lang.typecheck import check_function
from repro.resilience.faults import CellCorruption, FaultInjector, FaultPlan, FaultSite
from repro.runtime.engine import CompiledKernel, Engine
from repro.runtime.values import Bindings, Sequence, PROTEIN
from repro.schedule.schedule import Schedule
from repro.verify.sanitizer import (
    POISON_INT,
    partition_mesh,
    poison_fill,
    poison_mask,
    run_sanitized,
)

EN = {"en": "abcdefghijklmnopqrstuvwxyz"}

EDIT = """
int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1
"""


@pytest.fixture(scope="module")
def edit_func():
    return check_function(parse_function(EDIT.strip()), EN)


def compiled_for(func, schedule, backend="scalar"):
    engine = Engine(backend=backend, verify="off")
    return engine, engine.compile(func, schedule)


def context_for(engine, compiled, func, domain, s, t):
    en = engine  # noqa: F841 - explicit
    from repro.runtime.values import Alphabet

    alpha = Alphabet("en", "abcdefghijklmnopqrstuvwxyz")
    bound = Bindings({
        "s": Sequence(s, alpha), "t": Sequence(t, alpha)
    })
    return engine.build_context(compiled, bound, domain)


class TestPoisonHelpers:
    def test_float_poison_is_nan(self):
        table = np.zeros((3, 3))
        poison_fill(table)
        assert poison_mask(table).all()

    def test_int_poison_is_sentinel(self):
        table = np.zeros((3, 3), dtype=np.int64)
        poison_fill(table)
        assert (table == POISON_INT).all()
        assert poison_mask(table).all()

    def test_partition_mesh_matches_schedule(self):
        schedule = Schedule(("i", "j"), (1, 2))
        domain = Domain(("i", "j"), (3, 4))
        mesh = partition_mesh(schedule, domain)
        for i in range(3):
            for j in range(4):
                assert mesh[i, j] == schedule.partition_of((i, j))


class TestScalarSanitizer:
    def test_clean_kernel_matches_plain_run(self, edit_func):
        engine, compiled = compiled_for(
            edit_func, Schedule.of(i=1, j=1), backend="scalar"
        )
        domain = Domain(edit_func.dim_names, (7, 8))
        ctx = context_for(
            engine, compiled, edit_func, domain, "kitten", "sitting"
        )
        plain = np.zeros(domain.extents, dtype=np.int64)
        compiled.run(plain, dict(ctx))
        sanitized = np.zeros(domain.extents, dtype=np.int64)
        run_sanitized(compiled, sanitized, dict(ctx), domain)
        assert (plain == sanitized).all()

    def test_invalid_schedule_raises_poison_read(self, edit_func):
        # S = i - j runs the anti-diagonal backwards: d(i, j-1) reads
        # a cell of a *later* partition, still poison.
        engine, compiled = compiled_for(
            edit_func, Schedule.of(i=1, j=-1), backend="scalar"
        )
        domain = Domain(edit_func.dim_names, (7, 8))
        ctx = context_for(
            engine, compiled, edit_func, domain, "kitten", "sitting"
        )
        table = np.zeros(domain.extents, dtype=np.int64)
        with pytest.raises(SanitizerError) as exc:
            run_sanitized(compiled, table, dict(ctx), domain)
        assert "S-POISON-READ" in str(exc.value)

    def test_injector_reclassifies_as_device_fault(self, edit_func):
        engine, compiled = compiled_for(
            edit_func, Schedule.of(i=1, j=-1), backend="scalar"
        )
        domain = Domain(edit_func.dim_names, (7, 8))
        ctx = context_for(
            engine, compiled, edit_func, domain, "kitten", "sitting"
        )
        table = np.zeros(domain.extents, dtype=np.int64)
        injector = FaultInjector(FaultPlan(seed=1))
        site = FaultSite(problem=0, partition=0, sm=0, attempt=0,
                         stage="kernel")
        with pytest.raises(CellCorruption):
            run_sanitized(
                compiled, table, dict(ctx), domain,
                injector=injector, site=site,
            )


class TestVectorSanitizer:
    def test_clean_kernel_matches_plain_run(self, edit_func):
        engine, compiled = compiled_for(
            edit_func, Schedule.of(i=1, j=1), backend="vector"
        )
        assert compiled.backend == "vector"
        domain = Domain(edit_func.dim_names, (7, 8))
        ctx = context_for(
            engine, compiled, edit_func, domain, "kitten", "sitting"
        )
        plain = np.zeros(domain.extents, dtype=np.int64)
        compiled.run(plain, dict(ctx))
        sanitized = np.zeros(domain.extents, dtype=np.int64)
        run_sanitized(compiled, sanitized, dict(ctx), domain)
        assert (plain == sanitized).all()
        assert sanitized[6, 7] == 3

    def test_unwritten_cells_fail_write_miss(self, edit_func):
        """A partition range that skips cells leaves them poison; the
        scan after their partition flags the miss."""
        engine, compiled = compiled_for(
            edit_func, Schedule.of(i=1, j=-1), backend="vector"
        )
        domain = Domain(edit_func.dim_names, (7, 8))
        ctx = context_for(
            engine, compiled, edit_func, domain, "kitten", "sitting"
        )
        table = np.zeros(domain.extents, dtype=np.int64)
        with pytest.raises(SanitizerError):
            run_sanitized(compiled, table, dict(ctx), domain)


class TestEngineIntegration:
    def test_engine_sanitize_flag_end_to_end(self, edit_func):
        from repro.runtime.values import Alphabet

        alpha = Alphabet("en", "abcdefghijklmnopqrstuvwxyz")
        args = {
            "s": Sequence("kitten", alpha),
            "t": Sequence("sitting", alpha),
        }
        plain = Engine().run(edit_func, args).value
        for backend in ("scalar", "vector"):
            sanitized = Engine(
                backend=backend, sanitize=True
            ).run(edit_func, args).value
            assert sanitized == plain == 3

    def test_sanitized_map_run_disables_lane_batching(self, edit_func):
        from repro.runtime.values import Alphabet

        alpha = Alphabet("en", "abcdefghijklmnopqrstuvwxyz")
        base = {"s": Sequence("kitten", alpha)}
        problems = [
            {"t": Sequence(text, alpha)}
            for text in ("sitting", "mitten", "kitty")
        ]
        plain = Engine(backend="auto").map_run(
            edit_func, base, problems
        )
        sanitized = Engine(backend="auto", sanitize=True).map_run(
            edit_func, base, problems
        )
        assert sanitized.values == plain.values
        assert sanitized.lane_batches == 0
