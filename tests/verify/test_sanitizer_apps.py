"""The full app corpus under sanitized execution.

This is the CI evidence for the sanitizer: every paper application
runs with poison-filled tables and partition-barrier checks enabled,
produces the same results as a plain run, and reports zero
poison-read / overlap findings (a finding raises, so passing *is* the
zero-findings report).
"""

import pytest

from repro.runtime.engine import Engine
from repro.runtime.values import Sequence, PROTEIN


class TestAppsSanitized:
    def test_smith_waterman(self):
        from repro.apps.smith_waterman import SmithWaterman

        q = Sequence("HEAGAWGHEE", PROTEIN)
        d = Sequence("PAWHEAE", PROTEIN)
        plain = SmithWaterman(engine=Engine()).align(q, d).value
        for backend in ("scalar", "vector"):
            value = SmithWaterman(
                engine=Engine(backend=backend, sanitize=True)
            ).align(q, d).value
            assert value == plain == 20

    def test_nussinov(self):
        from repro.apps.rna_folding import RNA, RnaFolding

        seq = Sequence("gggaaaucccaugg", RNA)
        plain = RnaFolding(engine=Engine()).fold(seq).score
        sanitized = RnaFolding(
            engine=Engine(sanitize=True)
        ).fold(seq).score
        assert sanitized == plain

    def test_forward_and_viterbi(self):
        from repro.apps.hmm_algorithms import (
            forward_function,
            viterbi_function,
        )
        from repro.apps.profile_hmm import tk_model
        from repro.runtime.sequences import random_protein

        hmm = tk_model()
        x = random_protein(8, seed=3)
        for func in (forward_function(), viterbi_function()):
            plain = Engine().run(func, {"h": hmm, "x": x}).value
            sanitized = Engine(sanitize=True).run(
                func, {"h": hmm, "x": x}
            ).value
            assert sanitized == pytest.approx(plain)

    def test_backward(self):
        from repro.apps.hmm_algorithms import backward_function
        from repro.apps.profile_hmm import tk_model
        from repro.runtime.sequences import random_protein

        hmm = tk_model()
        x = random_protein(7, seed=5)
        func = backward_function()
        plain = Engine().run(
            func, {"h": hmm, "x": x}, at={"i": 0},
            initial={"n": len(x)},
        ).value
        sanitized = Engine(sanitize=True).run(
            func, {"h": hmm, "x": x}, at={"i": 0},
            initial={"n": len(x)},
        ).value
        assert sanitized == pytest.approx(plain)

    def test_logspace_forward_sanitized(self):
        """Log-space tables are floats full of legitimate -inf; the
        sanitizer must not confuse them with poison (NaN)."""
        from repro.apps.hmm_algorithms import forward_function
        from repro.apps.profile_hmm import tk_model
        from repro.runtime.sequences import random_protein

        hmm = tk_model()
        x = random_protein(6, seed=11)
        func = forward_function()
        plain = Engine(prob_mode="logspace").run(
            func, {"h": hmm, "x": x}
        ).value
        sanitized = Engine(
            prob_mode="logspace", sanitize=True
        ).run(func, {"h": hmm, "x": x}).value
        assert sanitized == pytest.approx(plain)

    def test_smith_waterman_map_search_sanitized(self):
        from repro.apps.smith_waterman import SmithWaterman

        q = Sequence("HEAGAWGHEE", PROTEIN)
        db = [
            Sequence("PAWHEAE", PROTEIN),
            Sequence("GAWGHEE", PROTEIN),
            Sequence("HEAE", PROTEIN),
        ]
        plain = SmithWaterman(engine=Engine()).search(q, db)
        sanitized = SmithWaterman(
            engine=Engine(sanitize=True)
        ).search(q, db)
        assert sanitized.values == plain.values
