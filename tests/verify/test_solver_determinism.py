"""Solver determinism (satellite): both solvers break ties identically.

The paper only asks for "the first set of solution coefficients"; we
make the preference total via :func:`tie_break_key` (smaller absolute
values, then positive signs, lexicographically over dimensions) and
require ``EnumerativeSolver`` and ``OrthantSolver`` to agree exactly —
the kernel cache keys on the schedule, so a non-deterministic tie
would silently double compilation work.
"""

import pytest

from repro.analysis.criteria import schedule_criteria
from repro.analysis.domain import Domain
from repro.lang.parser import parse_function
from repro.lang.typecheck import check_function
from repro.schedule.schedule import Schedule
from repro.schedule.solver import (
    EnumerativeSolver,
    OrthantSolver,
    tie_break_key,
)

EN = {"en": "abcdefghijklmnopqrstuvwxyz"}


def checked(src, alphabets=EN):
    return check_function(parse_function(src.strip()), alphabets)


def both_solve(func, extents):
    criteria = schedule_criteria(func)
    domain = Domain(func.dim_names, extents)
    enum = EnumerativeSolver().solve(func.dim_names, criteria, domain)
    orthant = OrthantSolver().solve(func.dim_names, criteria, domain)
    return enum, orthant


class TestTieBreakKey:
    def test_prefers_small_magnitudes(self):
        assert tie_break_key((1, 0)) < tie_break_key((2, 0))

    def test_prefers_positive_at_equal_magnitude(self):
        assert tie_break_key((1, 1)) < tie_break_key((1, -1))

    def test_lexicographic_over_dimensions(self):
        # First dimension dominates: (0, 3) beats (1, 0).
        assert tie_break_key((0, 3)) < tie_break_key((1, 0))

    def test_total_order_on_distinct_vectors(self):
        vectors = [(1, 0), (0, 1), (1, -1), (-1, 1), (0, -1)]
        keys = [tie_break_key(v) for v in vectors]
        assert len(set(keys)) == len(keys)


class TestCraftedTies:
    def test_diagonal_dependence_square_box(self):
        """f(i-1, j-1) on a square box: (1,0) and (0,1) have equal
        goal; the tie-break picks (0,1) (zero first coefficient)."""
        func = checked("""
int f(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then 0
  else if j == 0 then 0
  else f(i - 1, j - 1) + 1
""")
        enum, orthant = both_solve(func, (9, 9))
        assert enum == orthant == Schedule.of(i=0, j=1)

    def test_cross_orthant_tie(self):
        """f(i-1, j+1) on a square box: (1,0) and (0,-1) are both
        minimal but live in different orthants; the shared key picks
        (0,-1), whatever order the orthants are visited in."""
        func = checked("""
int f(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then 0
  else if j > 7 then 0
  else f(i - 1, j + 1) + 1
""")
        enum, orthant = both_solve(func, (9, 9))
        assert enum == orthant == Schedule.of(i=0, j=-1)

    def test_asymmetric_box_breaks_the_tie_by_goal(self):
        """On a non-square box the goal itself decides: the shorter
        axis carries the schedule (Section 4.7)."""
        func = checked("""
int f(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then 0
  else if j == 0 then 0
  else f(i - 1, j - 1) + 1
""")
        enum, orthant = both_solve(func, (5, 9))
        assert enum == orthant == Schedule.of(i=1, j=0)

    def test_solving_twice_is_stable(self):
        func = checked("""
int f(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then 0
  else if j == 0 then 0
  else f(i - 1, j - 1) + 1
""")
        criteria = schedule_criteria(func)
        domain = Domain(func.dim_names, (9, 9))
        solver = OrthantSolver()
        first = solver.solve(func.dim_names, criteria, domain)
        second = solver.solve(func.dim_names, criteria, domain)
        assert first == second


class TestAppCorpusAgreement:
    def cases(self):
        from repro.apps.hmm_algorithms import (
            backward_function,
            forward_function,
            viterbi_function,
        )
        from repro.apps.rna_folding import nussinov_function
        from repro.apps.smith_waterman import smith_waterman_function

        return [
            (forward_function(), (4, 13)),
            (viterbi_function(), (4, 13)),
            (backward_function(), (4, 13, 13)),
            (nussinov_function(), (13, 13)),
            (smith_waterman_function(), (13, 13)),
        ]

    def test_solvers_agree_on_every_app(self):
        for func, extents in self.cases():
            enum, orthant = both_solve(func, extents)
            assert enum == orthant, func.name

    def test_agreement_on_a_range_of_boxes(self):
        func = checked("""
int d(seq[en] s, index[s] i, seq[en] t, index[t] j) =
  if i == 0 then j
  else if j == 0 then i
  else if s[i-1] == t[j-1] then d(i-1, j-1)
  else (d(i-1, j) min d(i, j-1) min d(i-1, j-1)) + 1
""")
        for extents in [(2, 2), (2, 9), (9, 2), (7, 8), (13, 13)]:
            enum, orthant = both_solve(func, extents)
            assert enum == orthant, extents
