"""Independent schedule-soundness verification (positive + mutated)."""

import pytest

from repro.analysis.domain import Domain
from repro.schedule.schedule import Schedule
from repro.schedule.solver import find_schedule
from repro.verify import verify_schedule
from repro.verify.soundness import verify_call_site
from repro.analysis.descent import extract_descents


def five_apps():
    """(name, func, domain) for the paper's single-function apps."""
    from repro.apps.hmm_algorithms import (
        backward_function,
        forward_function,
        viterbi_function,
    )
    from repro.apps.rna_folding import nussinov_function
    from repro.apps.smith_waterman import smith_waterman_function

    fwd = forward_function()
    vit = viterbi_function()
    bwd = backward_function()
    nus = nussinov_function()
    sw = smith_waterman_function()
    return [
        ("forward", fwd, Domain(fwd.dim_names, (4, 13))),
        ("viterbi", vit, Domain(vit.dim_names, (4, 13))),
        ("backward", bwd, Domain(bwd.dim_names, (4, 13, 13))),
        ("nussinov", nus, Domain(nus.dim_names, (13, 13))),
        ("smith_waterman", sw, Domain(sw.dim_names, (13, 13))),
    ]


class TestSolverSchedulesVerify:
    """Property: what the solver derives, the verifier confirms."""

    @pytest.mark.parametrize(
        "name,func,domain",
        five_apps(),
        ids=[n for n, _, _ in five_apps()],
    )
    def test_app_schedule_verifies(self, name, func, domain):
        schedule = find_schedule(func, domain)
        certificate, diagnostics = verify_schedule(
            func, schedule, domain
        )
        assert certificate.ok, certificate.summary
        assert certificate.partitions >= 1
        rules = [d.rule for d in diagnostics]
        assert rules == ["V-SCHED-CERT"]
        assert "schedule verified" in certificate.summary

    @pytest.mark.parametrize(
        "name,func,domain",
        five_apps(),
        ids=[n for n, _, _ in five_apps()],
    )
    def test_partition_count_matches_schedule(self, name, func, domain):
        schedule = find_schedule(func, domain)
        certificate, _ = verify_schedule(func, schedule, domain)
        assert certificate.partitions == schedule.num_partitions(domain)


class TestMutatedSchedulesFail:
    """Property: negating any non-zero coefficient breaks validity."""

    @pytest.mark.parametrize(
        "name,func,domain",
        five_apps(),
        ids=[n for n, _, _ in five_apps()],
    )
    def test_each_mutation_is_rejected(self, name, func, domain):
        schedule = find_schedule(func, domain)
        mutated_any = False
        for k, coeff in enumerate(schedule.coefficients):
            if coeff == 0:
                continue
            mutated_any = True
            coeffs = list(schedule.coefficients)
            coeffs[k] = -coeff
            mutant = Schedule(schedule.dims, tuple(coeffs))
            certificate, diagnostics = verify_schedule(
                func, mutant, domain
            )
            assert not certificate.ok, (
                f"{name}: mutated {mutant} wrongly verified"
            )
            assert any(
                d.rule == "V-SCHED-DELTA" and d.severity == "error"
                for d in diagnostics
            )
        assert mutated_any

    def test_zero_schedule_is_rejected(self):
        from repro.apps.smith_waterman import smith_waterman_function

        func = smith_waterman_function()
        domain = Domain(func.dim_names, (8, 8))
        zero = Schedule(func.dim_names, (0, 0))
        certificate, _ = verify_schedule(func, zero, domain)
        assert not certificate.ok


class TestCallSiteDetails:
    def test_forward_free_descent_worst_case(self):
        """forward(t.start, i-1): the state dim is free; with S = i
        the free dimension contributes nothing and delta is 1."""
        from repro.apps.hmm_algorithms import forward_function

        func = forward_function()
        domain = Domain(func.dim_names, (4, 13))
        schedule = Schedule(func.dim_names, (0, 1))
        for descent in extract_descents(func):
            verdict = verify_call_site(descent, schedule, domain)
            assert verdict.ok
            assert verdict.min_delta == 1

    def test_free_descent_penalty_can_break_schedule(self):
        """With S = s + i the free state coordinate can jump anywhere,
        sinking the delta below 1 — the Section 5.2 worst case."""
        from repro.apps.hmm_algorithms import forward_function

        func = forward_function()
        domain = Domain(func.dim_names, (4, 13))
        schedule = Schedule(func.dim_names, (1, 1))
        verdicts = [
            verify_call_site(d, schedule, domain)
            for d in extract_descents(func)
        ]
        assert any(not v.ok for v in verdicts)

    def test_ranged_descent_uses_binder_bounds(self):
        """nussinov's split term nuss(i, k), k in i+1..j-1: S = -i + j
        gives delta j - k >= 1 exactly at k = j - 1."""
        from repro.apps.rna_folding import nussinov_function

        func = nussinov_function()
        domain = Domain(func.dim_names, (13, 13))
        schedule = Schedule(func.dim_names, (-1, 1))
        verdicts = [
            verify_call_site(d, schedule, domain)
            for d in extract_descents(func)
        ]
        assert all(v.ok for v in verdicts)
        assert any(v.min_delta == 1 for v in verdicts)

    def test_vacuous_binder_range_passes(self):
        """A reduction whose range is empty over the whole box has no
        dependence to order (min_delta is None, site ok)."""
        from repro.lang.parser import parse_function
        from repro.lang.typecheck import check_function

        src = """
int g(seq[en] s, index[s] i) =
  if i == 0 then 0
  else max(k in i + 20 .. i + 10 : g(k)) min g(i - 1)
"""
        func = check_function(
            parse_function(src.strip()),
            {"en": "abcdefghijklmnopqrstuvwxyz"},
        )
        domain = Domain(func.dim_names, (8,))
        schedule = Schedule(func.dim_names, (1,))
        verdicts = [
            verify_call_site(d, schedule, domain)
            for d in extract_descents(func)
        ]
        vacuous = [v for v in verdicts if v.min_delta is None]
        assert vacuous and all(v.ok for v in vacuous)


class TestBruteForceCrossCheck:
    def test_small_domain_gets_concrete_proof(self):
        """On tiny domains the verifier walks every edge; a schedule
        that happens to satisfy the algebra but not the edges would be
        caught (here both agree, so it just verifies)."""
        from repro.apps.smith_waterman import smith_waterman_function

        func = smith_waterman_function()
        domain = Domain(func.dim_names, (5, 5))
        schedule = Schedule(func.dim_names, (1, 1))
        certificate, _ = verify_schedule(
            func, schedule, domain, brute_force_cap=100
        )
        assert certificate.ok

    def test_uniform_descent_schedule_cross_validates(self):
        """verify_schedule and Schedule.brute_force_valid agree on a
        grid of candidate schedules (the property-style cross-check)."""
        from repro.apps.smith_waterman import smith_waterman_function
        from repro.schedule.schedule import brute_force_valid

        func = smith_waterman_function()
        domain = Domain(func.dim_names, (5, 5))
        for a in (-2, -1, 0, 1, 2):
            for b in (-2, -1, 0, 1, 2):
                schedule = Schedule(func.dim_names, (a, b))
                certificate, _ = verify_schedule(
                    func, schedule, domain
                )
                assert certificate.ok == brute_force_valid(
                    schedule, func, domain
                ), f"disagreement at {schedule}"
